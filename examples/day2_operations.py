#!/usr/bin/env python
"""Day-2 operations: running the mechanism when reality misbehaves.

The paper's evaluation is a single clean round.  This example plays a
week of operations on the Table 1 system and exercises the machinery a
deployment needs:

1. **drifting speeds** — machine true values wander 5%/epoch; the
   operator re-bids every 5 epochs and pays a measured staleness cost;
2. **a mid-round slowdown** — machine C6 silently halves its speed
   partway through a round; the online CUSUM detector flags it within
   tens of completions, long before the end-of-round estimate;
3. **a crash** — machine C11 stops answering; the timeout coordinator
   excludes it, re-spreads the full load, and withholds payment from an
   unverifiable reporter.

Run with::

    python examples/day2_operations.py
"""

from __future__ import annotations

import numpy as np

from repro import VerificationMechanism, paper_cluster
from repro.agents import TruthfulAgent
from repro.dynamic import GeometricRandomWalkDrift, RepeatedMechanismSimulation
from repro.experiments import render_table
from repro.protocol import (
    CrashingNode,
    CusumSlowdownDetector,
    FaultTolerantCoordinator,
    ProtocolPhase,
    SimulatedNetwork,
)
from repro.protocol.coordinator import COORDINATOR_NAME, MachineNode
from repro.system import LinearLatencyMachine, Simulator


def drifting_week() -> None:
    cluster = paper_cluster()
    drift = GeometricRandomWalkDrift(0.05, np.random.default_rng(1))
    rows = []
    for period in (1, 5, 20):
        sim = RepeatedMechanismSimulation(
            cluster.true_values, 20.0, drift, rebid_period=period
        )
        records = sim.run(168)  # a week of hourly epochs
        rows.append(
            [
                period,
                RepeatedMechanismSimulation.mean_staleness(records),
                RepeatedMechanismSimulation.total_messages(records),
            ]
        )
    print(
        render_table(
            ["re-bid every (h)", "mean staleness", "control messages"],
            rows,
            precision=4,
            title="1. A week under 5%/h speed drift: how often to re-bid?",
        )
    )


def midround_slowdown() -> None:
    rng = np.random.default_rng(7)
    bid, load = 5.0, 0.8  # machine C6's declaration and allocation
    detector = CusumSlowdownDetector(bid, load)

    honest = rng.exponential(bid * load, size=300)
    slowed = rng.exponential(2 * bid * load, size=2_000)  # halves its speed
    alert = detector.observe_many(np.concatenate([honest, slowed]))

    print("\n2. Mid-round slowdown on C6 (honest for 300 jobs, then 2x slower)")
    assert alert is not None
    print(f"   detector fired after job #{alert.jobs_observed}")
    print(f"   i.e. {alert.jobs_observed - 300} completions into the slowdown")
    print(f"   running mean sojourn at alarm: {alert.mean_sojourn:.2f} "
          f"(declared {bid * load:.2f})")


def crash_round() -> None:
    sim = Simulator()
    rng = np.random.default_rng(3)
    network = SimulatedNetwork(sim)
    cluster = paper_cluster()
    names = list(cluster.names)
    nodes = []
    for i, (name, t) in enumerate(zip(names, cluster.true_values)):
        node = MachineNode(
            name=name,
            agent=TruthfulAgent(t),
            machine=LinearLatencyMachine(name, t, rng),
            network=network,
        )
        if name == "C11":
            node = CrashingNode(node, "immediately")
        network.register(name, node.handle)
        nodes.append(node)
    coordinator = FaultTolerantCoordinator(
        mechanism=VerificationMechanism(),
        machine_names=names,
        arrival_rate=20.0,
        network=network,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)

    coordinator.start()
    sim.run()
    coordinator.close_bidding()  # the bid deadline passes
    sim.run()
    for node in nodes:
        if isinstance(node, CrashingNode):
            continue
        node.machine.sojourn_times.append(0.4)
        node.report_completion()
    sim.run()
    coordinator.close_reporting()
    sim.run()

    print("\n3. Crash handling (C11 dead at round start)")
    print(f"   protocol finished      : {coordinator.phase is ProtocolPhase.DONE}")
    print(f"   excluded machines      : {coordinator.excluded}")
    print(f"   load still allocated   : {coordinator.outcome.loads.sum():.2f} / 20.00")
    print(f"   payments withheld from : {coordinator.withheld or 'nobody'}")


def main() -> None:
    drifting_week()
    midround_slowdown()
    crash_round()


if __name__ == "__main__":
    main()
