#!/usr/bin/env python
"""Strategic manipulation study: why the payment rule matters.

Sweeps computer C1's bid across a wide range under three payment rules
and prints its utility curve:

* the paper's verification mechanism (Definition 3.3) — the curve peaks
  exactly at the true value;
* the declared-compensation variant — the peak moves *above* the true
  value (overbidding pays), demonstrating why the formal definition
  compensates at observed cost;
* no payments at all (a naive allocator) — underbidding to grab jobs or
  dodging load by overbidding is rampant.

Also runs iterated best-response dynamics under both mechanism variants
to show where bidding competition actually converges.

Run with::

    python examples/strategic_manipulation.py
"""

from __future__ import annotations

import numpy as np

from repro import BiddingGame, VerificationMechanism, paper_cluster
from repro.experiments import render_table


def utility_curve(mechanism, true_values, arrival_rate, factors):
    """C1's utility for each bid factor (everyone else truthful)."""
    utilities = []
    for factor in factors:
        bids = true_values.copy()
        bids[0] *= factor
        outcome = mechanism.run(bids, arrival_rate, true_values)
        utilities.append(float(outcome.payments.utility[0]))
    return utilities


def main() -> None:
    cluster = paper_cluster()
    t = cluster.true_values
    rate = 20.0
    factors = np.array([0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 3.0, 5.0])

    observed = VerificationMechanism("observed")
    declared = VerificationMechanism("declared")

    curve_obs = utility_curve(observed, t, rate, factors)
    curve_dec = utility_curve(declared, t, rate, factors)

    rows = [
        [f"{f:g} * t1", uo, ud, "<-- truth" if f == 1.0 else ""]
        for f, uo, ud in zip(factors, curve_obs, curve_dec)
    ]
    print(
        render_table(
            ["C1 bid", "utility (Def 3.3)", "utility (declared)", ""],
            rows,
            title="C1's utility as a function of its bid (others truthful)",
        )
    )

    best_obs = factors[int(np.argmax(curve_obs))]
    best_dec = factors[int(np.argmax(curve_dec))]
    print(f"\nutility-maximising bid under Def 3.3    : {best_obs:g} * t1")
    print(f"utility-maximising bid under declared   : {best_dec:g} * t1  (lying pays!)")

    # --- Where does bidding competition converge? -------------------------
    small = t[:6]  # keep the best-response dynamics quick
    for label, mech in (("Def 3.3", observed), ("declared", declared)):
        game = BiddingGame(mech, small, 10.0)
        trace = game.run(max_rounds=6)
        drift = trace.max_drift_from(small)
        print(
            f"\niterated best response under {label:9s}: "
            f"{trace.rounds} rounds, converged={trace.converged}, "
            f"max drift from truth = {100 * drift:.1f}%"
        )
        print(f"  final bids: {np.round(trace.final_bids, 3)}")
        print(f"  true values: {small}")


if __name__ == "__main__":
    main()
