#!/usr/bin/env python
"""End-to-end protocol simulation over the discrete-event substrate.

The paper sketches the centralised protocol in prose; this example runs
it for real: bids travel over a simulated network, a Poisson job stream
is routed by the PR allocation, machines execute jobs at their chosen
(possibly dishonest) speeds, the mechanism *estimates* each machine's
execution value from observed completions — the verification step — and
pays accordingly.

The run mixes truthful machines with one slow executor and one
underbidder, then compares the simulated round against the closed-form
mechanism.

Run with::

    python examples/protocol_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import ManipulativeAgent, TruthfulAgent, VerificationMechanism, paper_cluster
from repro.experiments import render_table
from repro.protocol import run_protocol


def main() -> None:
    cluster = paper_cluster()
    rate = 20.0
    rng = np.random.default_rng(2003)

    agents = [TruthfulAgent(t) for t in cluster.true_values]
    # C1 underbids 2x and executes 2x slower (the Low2 manipulation);
    # C6 bids honestly but secretly executes 50% slower.
    agents[0] = ManipulativeAgent(1.0, bid_factor=0.5, execution_factor=2.0)
    agents[5] = ManipulativeAgent(5.0, bid_factor=1.0, execution_factor=1.5)

    result = run_protocol(agents, rate, duration=800.0, rng=rng)

    print("== Protocol round on the Table 1 system ==")
    print(f"jobs routed            : {result.jobs_routed}")
    print(f"simulated time         : {result.simulated_time:.1f} s")
    print(
        f"control messages       : {result.network.total_messages} "
        f"(= 5n for n={cluster.n_machines}; the paper's O(n) claim)"
    )

    # --- Verification: estimated vs actual execution values ---------------
    rows = []
    for i in (0, 1, 5, 6):
        rows.append(
            [
                cluster.names[i],
                agents[i].bid(),
                result.true_execution_values[i],
                result.estimated_execution_values[i],
                100.0 * result.estimation_relative_error[i],
            ]
        )
    print()
    print(
        render_table(
            ["computer", "bid", "actual t̃", "estimated t̂", "error %"],
            rows,
            title="Verification: estimated execution values (selected machines)",
        )
    )

    # --- Economics: simulated vs closed form ------------------------------
    closed = VerificationMechanism().run(
        np.array([a.bid() for a in agents]),
        rate,
        np.array([a.execution_value() for a in agents]),
    )
    rows = [
        ["realised latency", closed.realised_latency, result.outcome.realised_latency],
        ["C1 utility (liar)", float(closed.payments.utility[0]),
         float(result.outcome.payments.utility[0])],
        ["C6 utility (slow)", float(closed.payments.utility[5]),
         float(result.outcome.payments.utility[5])],
        ["C2 utility (honest)", float(closed.payments.utility[1]),
         float(result.outcome.payments.utility[1])],
    ]
    print()
    print(
        render_table(
            ["quantity", "closed form", "simulated"],
            rows,
            title="Simulated round vs closed-form mechanism",
        )
    )
    print(
        "\nBoth manipulators end up with lower utility than honesty would"
        " have given them (truth-telling is dominant, Theorem 3.1)."
        "\nNote the honest machines' utilities are negative here too: the"
        " voluntary participation guarantee (Theorem 3.2) quantifies over"
        " the other agents' *bids* but assumes they execute as declared —"
        " hidden slowdowns by others inflate the realised latency and"
        " depress every bonus.  See EXPERIMENTS.md, 'Limitations observed'."
    )


if __name__ == "__main__":
    main()
