#!/usr/bin/env python
"""Quickstart: run the load balancing mechanism with verification.

Reproduces the paper's headline numbers on the Table 1 system in a few
lines of the public API:

* the PR allocation and the optimal total latency (Theorem 2.1),
* the compensation-and-bonus payments (Definition 3.3),
* what happens when one computer lies (the Low2 experiment).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ManipulativeAgent,
    TruthfulAgent,
    VerificationMechanism,
    paper_cluster,
)
from repro.agents import profile_bids, profile_execution_values


def main() -> None:
    cluster = paper_cluster()
    mechanism = VerificationMechanism()
    arrival_rate = 20.0  # jobs per second, the paper's R

    # --- Everyone truthful: the optimum of Theorem 2.1 -------------------
    agents = [TruthfulAgent(t) for t in cluster.true_values]
    outcome = mechanism.run(
        profile_bids(agents),
        arrival_rate,
        profile_execution_values(agents),
        true_values=cluster.true_values,
    )
    print("== All computers truthful (experiment True1) ==")
    print(f"total latency L*        : {outcome.realised_latency:8.2f}   (paper: 78.43)")
    print(f"frugality ratio         : {outcome.frugality_ratio:8.2f}   (paper: <= 2.5)")
    print(f"min utility (VP floor)  : {outcome.payments.utility.min():8.2f}   (>= 0 by Theorem 3.2)")
    print(f"fastest machine's load  : {outcome.loads[0]:8.2f} jobs/s")
    print(f"slowest machine's load  : {outcome.loads[-1]:8.2f} jobs/s")

    # --- C1 lies: underbids 2x and executes 2x slower (Low2) -------------
    agents[0] = ManipulativeAgent(
        cluster.true_values[0], bid_factor=0.5, execution_factor=2.0
    )
    lied = mechanism.run(
        profile_bids(agents),
        arrival_rate,
        profile_execution_values(agents),
        true_values=cluster.true_values,
    )
    increase = 100.0 * (lied.realised_latency / outcome.realised_latency - 1.0)
    print("\n== C1 underbids 2x and executes 2x slower (experiment Low2) ==")
    print(f"total latency           : {lied.realised_latency:8.2f}   (+{increase:.1f}%, paper: ~66%)")
    print(f"C1 utility              : {lied.payments.utility[0]:8.2f}   (negative: lying is punished)")
    print(f"C1 utility when truthful: {outcome.payments.utility[0]:8.2f}")

    # --- Truthfulness, checked numerically --------------------------------
    from repro import best_response

    br = best_response(mechanism, cluster.true_values, arrival_rate, agent=0)
    print("\n== Best response of C1 under the mechanism (Theorem 3.1) ==")
    print(f"best bid                : {br.bid:.4f}  (true value {cluster.true_values[0]:g})")
    print(f"best execution value    : {br.execution_value:.4f}")
    print(f"gain over truth-telling : {br.gain:.2e}  (zero: truth is dominant)")


if __name__ == "__main__":
    main()
