#!/usr/bin/env python
"""Distributed payment handling with privacy — the paper's future work.

"Future work will address the problem of distributed handling of
payments and the agents privacy."  This example runs that future work:

1. the machines compute the whole mechanism themselves over a spanning
   tree — two global-sum rounds (`S = sum 1/b_j`, then the realised
   latency `L`) are all anyone needs, and every machine derives its own
   allocation and payment locally;
2. the same run with additive secret sharing across three independent
   aggregators, so no single party — the tree root included — ever sees
   an individual machine's bid or observed cost;
3. a comparison of overlay shapes: message count is invariant (4 per
   machine), only the hop latency changes.

Run with::

    python examples/distributed_payments.py
"""

from __future__ import annotations

import numpy as np

from repro import VerificationMechanism, paper_cluster
from repro.distributed import (
    DistributedVerificationMechanism,
    SecureSumAggregation,
    star_overlay,
    tree_overlay,
)
from repro.experiments import render_table


def main() -> None:
    cluster = paper_cluster()
    rate = 20.0
    t = cluster.true_values
    # The Low2 manipulation, to show payments (not just happy paths).
    bids = t.copy()
    bids[0] = 0.5
    executions = t.copy()
    executions[0] = 2.0

    central = VerificationMechanism().run(bids, rate, executions)

    # --- 1. Fully distributed, plain sums ---------------------------------
    rows = []
    for label, overlay in (
        ("star", star_overlay(16)),
        ("binary tree", tree_overlay(16, arity=2)),
        ("chain", tree_overlay(16, arity=1)),
    ):
        run = DistributedVerificationMechanism(overlay).run(bids, rate, executions)
        err = float(np.abs(run.outcome.payments.payment - central.payments.payment).max())
        rows.append([label, run.total_messages, run.rounds_of_latency, f"{err:.1e}"])
    print(
        render_table(
            ["overlay", "messages", "hop latency", "max diff vs centralised"],
            rows,
            title="Distributed mechanism: identical payments, 4 messages/machine",
        )
    )

    # --- 2. With the privacy layer ----------------------------------------
    rng = np.random.default_rng(23)
    private = DistributedVerificationMechanism(
        tree_overlay(16), n_aggregators=3, rng=rng
    ).run(bids, rate, executions)
    err = float(
        np.abs(private.outcome.payments.payment - central.payments.payment).max()
    )
    print("\n== Privacy via additive secret sharing (k = 3 aggregators) ==")
    print(f"secret shares sent      : {private.privacy_shares_sent}")
    print(f"max payment difference  : {err:.2e}  (float masking noise only)")

    # What a single curious aggregator actually sees:
    demo = SecureSumAggregation(3, np.random.default_rng(5))
    secret_bid_term = 1.0 / bids[0]
    demo.contribute(secret_bid_term)
    print(f"machine C1's private 1/b: {secret_bid_term:.4f}")
    print(f"aggregator 0's view     : {demo.aggregator_view(0):+.1f}  (uniform noise)")
    print(f"all three combined      : {demo.result():.4f}  (the exact contribution)")

    # --- 3. The punchline ---------------------------------------------------
    print(
        "\nEvery machine computed its own payment from two public sums;"
        "\nno central payment computer, no bid ever revealed in the clear,"
        "\nand the liar C1 still ends up with utility "
        f"{float(private.outcome.payments.utility[0]):.2f} (< 0)."
    )


if __name__ == "__main__":
    main()
