#!/usr/bin/env python
"""Validating the latency models against queue simulation.

Section 2 of the paper justifies the linear model ``l(x) = t x`` as the
M/G/1 expected waiting time under light load.  This example checks the
whole chain empirically with the vectorised Lindley-recursion simulator:

1. M/M/1 sojourn times match ``1/(mu - x)`` across utilisations;
2. M/G/1 waiting times match Pollaczek–Khinchine for exponential and
   deterministic service;
3. at light load, the M/G/1 waiting time collapses onto the linear
   model with slope ``t = E[S^2]/2`` — the paper's claim — and the
   linearisation error grows as the load rises (quantifying where the
   paper's model stops being a good description).

Run with::

    python examples/queueing_validation.py
"""

from __future__ import annotations

import numpy as np

from repro import MG1LatencyModel, MM1LatencyModel
from repro.experiments import render_table
from repro.system import simulate_mg1, simulate_mm1


def main() -> None:
    rng = np.random.default_rng(11)
    n_jobs = 400_000

    # --- 1. M/M/1 ----------------------------------------------------------
    mu = 2.0
    rows = []
    for rho in (0.2, 0.4, 0.6, 0.8):
        x = rho * mu
        stats = simulate_mm1(x, mu, n_jobs, rng)
        predicted = MM1LatencyModel([mu]).per_job([x])[0]
        rows.append([rho, predicted, stats.mean_sojourn,
                     100 * abs(stats.mean_sojourn / predicted - 1)])
    print(
        render_table(
            ["utilisation", "theory 1/(mu-x)", "simulated sojourn", "error %"],
            rows,
            precision=3,
            title="M/M/1 sojourn time vs theory (mu = 2)",
        )
    )

    # --- 2. M/G/1 (Pollaczek-Khinchine) ------------------------------------
    rows = []
    for label, service in (
        ("exponential", rng.exponential(0.5, n_jobs)),
        ("deterministic", np.full(n_jobs, 0.5)),
        ("uniform", rng.uniform(0.0, 1.0, n_jobs)),
    ):
        x = 1.2
        stats = simulate_mg1(x, service, rng)
        es = float(service.mean())
        es2 = float((service**2).mean())
        predicted = MG1LatencyModel([es], [es2]).per_job([x])[0]
        rows.append([label, predicted, stats.mean_wait,
                     100 * abs(stats.mean_wait / predicted - 1)])
    print()
    print(
        render_table(
            ["service dist", "P-K waiting", "simulated waiting", "error %"],
            rows,
            precision=4,
            title="M/G/1 waiting time vs Pollaczek-Khinchine (x = 1.2)",
        )
    )

    # --- 3. The paper's light-load linearisation ---------------------------
    mu = 2.0
    model = MG1LatencyModel.exponential([mu])
    linear = model.light_load_linearization()
    rows = []
    for x in (0.02, 0.1, 0.5, 1.0, 1.5):
        service = rng.exponential(1.0 / mu, n_jobs)
        stats = simulate_mg1(x, service, rng)
        lin = linear.per_job([x])[0]
        exact = model.per_job([x])[0]
        rows.append([
            x / mu, lin, exact, stats.mean_wait,
            100 * abs(lin / exact - 1),
        ])
    print()
    print(
        render_table(
            ["utilisation", "linear t*x", "exact M/G/1", "simulated", "linearisation error %"],
            rows,
            precision=4,
            title="The paper's linear model vs M/G/1 (t = E[S^2]/2; good at light load)",
        )
    )
    print(
        "\nThe linear latency model is an accurate description below ~10%"
        " utilisation and optimistic beyond — exactly the regime the"
        " paper's Section 2 claims."
    )


if __name__ == "__main__":
    main()
