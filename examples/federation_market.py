#!/usr/bin/env python
"""Compute-federation market: the paper's motivation at larger scale.

The introduction motivates the mechanism with "distributed systems
where computational resources belong to self-interested parties (e.g.
organizations, people)".  This example models such a federation: a
broker splits an incoming job stream across many independently owned
clusters, sizes the payments with the verification mechanism, and
studies:

* how much damage unpunished misreporting causes as the federation
  grows more heterogeneous,
* how the broker's payment premium (frugality ratio) behaves as the
  federation scales, and
* the M/M/1 substrate: the same market where members are modelled with
  queueing delays instead of linear latencies, solved by the general
  water-filling allocator.

Run with::

    python examples/federation_market.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MM1LatencyModel,
    VerificationMechanism,
    optimal_total_latency,
    random_cluster,
    water_filling_allocation,
)
from repro.analysis import multi_liar_degradation, sweep_heterogeneity, sweep_system_size
from repro.experiments import render_table


def main() -> None:
    rng = np.random.default_rng(7)
    mechanism = VerificationMechanism()

    # --- A 64-member federation -------------------------------------------
    federation = random_cluster(64, rng, t_range=(0.5, 50.0))
    rate = 80.0
    t = federation.true_values
    outcome = mechanism.run(t, rate, t, true_values=t)
    print("== 64-member federation, R = 80 jobs/s ==")
    print(f"optimal total latency : {outcome.realised_latency:10.2f}")
    print(f"broker pays           : {outcome.payments.total_payment:10.2f}")
    print(f"members' total cost   : {outcome.payments.total_valuation_magnitude:10.2f}")
    print(f"frugality ratio       : {outcome.frugality_ratio:10.3f}")

    # --- Damage from colluding misreporters --------------------------------
    damage = multi_liar_degradation(
        t, rate, bid_factor=0.5, execution_factor=2.0, max_liars=8
    )
    rows = [[k, damage[k]] for k in range(len(damage))]
    print()
    print(
        render_table(
            ["misreporting members", "latency degradation %"],
            rows,
            title="Damage if members lied without the mechanism's incentives",
        )
    )

    # --- Scaling the federation -------------------------------------------
    size_sweep = sweep_system_size([8, 32, 128, 512], rng)
    rows = [
        [int(r.parameter), r.frugality_ratio, r.canonical_degradation_percent]
        for r in size_sweep
    ]
    print()
    print(
        render_table(
            ["members", "frugality ratio", "1-liar degradation %"],
            rows,
            precision=3,
            title="Scaling: the broker's premium settles at 2x members' cost",
        )
    )

    # --- Heterogeneity ------------------------------------------------------
    het_sweep = sweep_heterogeneity(32, [1.0, 4.0, 16.0, 64.0], rng, arrival_rate=40.0)
    rows = [
        [r.parameter, r.frugality_ratio, r.canonical_degradation_percent]
        for r in het_sweep
    ]
    print()
    print(
        render_table(
            ["max/min speed ratio", "frugality ratio", "1-liar degradation %"],
            rows,
            precision=3,
            title="Heterogeneity: fast-member lies hurt mixed federations more",
        )
    )

    # --- The M/M/1 substrate ------------------------------------------------
    # Members modelled as M/M/1 queues (the companion paper's model);
    # the water-filling allocator handles the non-linear latencies.
    mu = rng.uniform(2.0, 12.0, size=16)
    model = MM1LatencyModel(mu)
    mm1_rate = 0.6 * float(mu.sum())
    allocation = water_filling_allocation(model, mm1_rate)
    linear_equiv = optimal_total_latency(1.0 / mu, mm1_rate)  # naive linear read
    print("\n== M/M/1 substrate (16 queueing members) ==")
    print(f"offered load          : {mm1_rate:.1f} jobs/s ({100 * 0.6:.0f}% of capacity)")
    print(f"expected jobs in flight (optimal split): {allocation.total_latency:.2f}")
    print(f"busiest member utilisation             : {np.max(allocation.loads / mu):.2%}")
    print(f"members left idle by the optimiser     : {int(np.sum(allocation.loads < 1e-9))}")
    print(f"(naive linear-model latency at same R  : {linear_equiv:.2f} — wrong model, for contrast)")


if __name__ == "__main__":
    main()
