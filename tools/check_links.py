#!/usr/bin/env python
"""Fail on broken intra-repo links in the repository's Markdown files.

Scans every ``*.md`` under the repo root (skipping ``.git`` and other
dot-directories), extracts inline Markdown links and images, and checks
that every *relative* target resolves to an existing file or directory.
External links (``http://``, ``https://``, ``mailto:``) and pure
anchors (``#section``) are ignored — this tool guards the links we can
verify offline, not the internet.

Usage::

    python tools/check_links.py [ROOT]

Exits 0 when every intra-repo link resolves, 1 otherwise (printing one
``file:line: target`` diagnostic per broken link).  CI runs this as
part of the docs job; ``tests/test_docs.py`` runs the same check under
pytest so a broken link also fails the local suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions are rare in this repo and intentionally out of scope.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping dot-directories."""
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part.startswith(".") for part in path.relative_to(root).parts[:-1])
    )


def broken_links(root: Path) -> list[tuple[Path, int, str]]:
    """All unresolvable relative link targets as (file, line, target)."""
    failures: list[tuple[Path, int, str]] = []
    for markdown in iter_markdown_files(root):
        for lineno, line in enumerate(
            markdown.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (markdown.parent / path_part).resolve()
                if not resolved.exists():
                    failures.append((markdown, lineno, target))
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = broken_links(root)
    for markdown, lineno, target in failures:
        print(f"{markdown.relative_to(root)}:{lineno}: broken link -> {target}")
    if failures:
        print(f"{len(failures)} broken intra-repo link(s).")
        return 1
    print(f"All intra-repo links resolve ({len(iter_markdown_files(root))} files checked).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
