#!/usr/bin/env python
"""Fail on broken intra-repo links in the repository's Markdown files.

Scans every ``*.md`` under the repo root (skipping ``.git`` and other
dot-directories), extracts inline Markdown links and images, and checks

* that every *relative* target resolves to an existing file or
  directory, and
* that every anchor fragment (``file.md#section`` or a same-file
  ``#section``) names a heading that actually exists in the target
  file, using GitHub's slug rules (lowercase, punctuation stripped,
  spaces to hyphens, ``-1``/``-2`` suffixes for duplicates; headings
  inside fenced code blocks don't count).

External links (``http://``, ``https://``, ``mailto:``) are ignored —
this tool guards the links we can verify offline, not the internet.

Usage::

    python tools/check_links.py [ROOT]

Exits 0 when every intra-repo link resolves, 1 otherwise (printing one
``file:line: target`` diagnostic per broken link).  CI runs this as
part of the docs job; ``tests/test_docs.py`` runs the same check under
pytest so a broken link also fails the local suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions are rare in this repo and intentionally out of scope.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(\s*)(```|~~~)")
_MD_INLINE_LINK = re.compile(r"!?\[([^\]]*)\]\([^)]*\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str, seen: dict[str, int] | None = None) -> str:
    """The anchor GitHub generates for a heading's text.

    Inline code ticks and link syntax are stripped, the text is
    lowercased, everything but word characters, hyphens, and spaces is
    removed, and spaces become hyphens.  Pass the same ``seen`` dict
    for every heading of one document to get GitHub's ``-1``/``-2``
    deduplication.
    """
    text = _MD_INLINE_LINK.sub(r"\1", heading)  # keep link text only
    text = text.replace("`", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    if seen is None:
        return slug
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def markdown_anchors(path: Path) -> set[str]:
    """Every heading anchor a Markdown file exposes (GitHub slugs)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    fence_marker = ""
    for line in path.read_text(encoding="utf-8").splitlines():
        fence = _FENCE.match(line)
        if fence:
            if not in_fence:
                in_fence = True
                fence_marker = fence.group(2)
            elif fence.group(2) == fence_marker:
                in_fence = False
            continue
        if in_fence:
            continue
        heading = _HEADING.match(line)
        if heading:
            anchors.add(github_slug(heading.group(2), seen))
    return anchors


def iter_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping dot-directories."""
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part.startswith(".") for part in path.relative_to(root).parts[:-1])
    )


def broken_links(root: Path) -> list[tuple[Path, int, str]]:
    """All unresolvable relative link targets as (file, line, target).

    A target is broken when its path does not exist *or* when its
    ``#fragment`` names no heading in the (Markdown) file it points to.
    """
    failures: list[tuple[Path, int, str]] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = markdown_anchors(path)
        return anchor_cache[path]

    for markdown in iter_markdown_files(root):
        for lineno, line in enumerate(
            markdown.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_PREFIXES):
                    continue
                path_part, _, fragment = target.partition("#")
                resolved = (
                    (markdown.parent / path_part).resolve()
                    if path_part
                    else markdown.resolve()
                )
                if not resolved.exists():
                    failures.append((markdown, lineno, target))
                    continue
                if fragment and resolved.suffix == ".md":
                    if fragment.lower() not in anchors_of(resolved):
                        failures.append((markdown, lineno, target))
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = broken_links(root)
    for markdown, lineno, target in failures:
        print(f"{markdown.relative_to(root)}:{lineno}: broken link -> {target}")
    if failures:
        print(f"{len(failures)} broken intra-repo link(s).")
        return 1
    print(f"All intra-repo links resolve ({len(iter_markdown_files(root))} files checked).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
