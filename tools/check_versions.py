#!/usr/bin/env python3
"""Check that the repo's three version declarations agree.

The release version is stated in three places that drift easily:

* ``src/repro/__init__.py`` — ``__version__`` (the runtime truth, and
  the value baked into every campaign cache key);
* ``pyproject.toml`` — ``version = "..."`` under ``[project]``;
* ``CHANGELOG.md`` — the topmost ``## <version> — <date>`` heading.

Run from the repo root (CI runs it in the docs job)::

    python tools/check_versions.py

Exits non-zero with one line per mismatch.  No third-party imports:
the files are parsed textually so the check works before any install.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def init_version() -> str:
    """``__version__`` as literally assigned in src/repro/__init__.py."""
    text = (ROOT / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise SystemExit("src/repro/__init__.py: no __version__ assignment")
    return match.group(1)


def pyproject_version() -> str:
    """The ``version = "..."`` entry of pyproject.toml's [project] table."""
    text = (ROOT / "pyproject.toml").read_text()
    match = re.search(r'^version = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise SystemExit("pyproject.toml: no version entry")
    return match.group(1)


def changelog_version() -> str:
    """The version of the topmost ``## <version> — <date>`` heading."""
    text = (ROOT / "CHANGELOG.md").read_text()
    match = re.search(r"^## ([0-9][^\s]*)", text, re.MULTILINE)
    if match is None:
        raise SystemExit("CHANGELOG.md: no '## <version>' heading")
    return match.group(1)


def check() -> list[str]:
    """One message per disagreement; empty = consistent."""
    versions = {
        "src/repro/__init__.py": init_version(),
        "pyproject.toml": pyproject_version(),
        "CHANGELOG.md (latest entry)": changelog_version(),
    }
    reference_source, reference = next(iter(versions.items()))
    return [
        f"{source} says {found!r} but {reference_source} says {reference!r}"
        for source, found in versions.items()
        if found != reference
    ]


def main() -> int:
    failures = check()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"versions consistent: {init_version()}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
