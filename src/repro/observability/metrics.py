"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is the passive half of the observability layer: code on
the hot path records *numbers* (how many retries, how long an
allocation took) and the registry stores them cheaply enough that the
instrumentation can stay enabled in production.  Three metric kinds,
modelled on the Prometheus vocabulary but with no wire format or
external dependency:

* :class:`Counter` — a monotonically increasing total (retries issued,
  rounds voided, checkpoints written);
* :class:`Gauge` — a value that goes both ways (machines currently
  quarantined);
* :class:`Histogram` — a distribution sketch with exact count / total /
  min / max and a **bounded reservoir** for quantiles: Vitter's
  Algorithm R keeps a uniform sample of fixed size however many values
  stream through, so memory stays O(reservoir) over a million-round
  campaign.  The reservoir RNG is seeded per histogram, keeping runs
  deterministic (the repo-wide convention: no global RNG state).

Metrics are identified by a name plus optional key=value labels
(``registry.counter("protocol.phase_transitions", src="bidding",
dst="executing")``); each distinct label set is its own series.  The
registry is append-only and single-threaded by design — the DES
substrate never runs concurrent handlers, so there are no locks on the
record path.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

# A metric series key: (name, ((label, value), ...)) with labels sorted.
SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _series_key(name: str, labels: dict[str, object]) -> SeriesKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Render ``name{k=v,...}`` the way the summary tables print it."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0.0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount


class Gauge:
    """A value that can rise and fall (e.g. machines in quarantine)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the value up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the value down by ``amount``."""
        self.value -= amount


class Histogram:
    """A streaming distribution sketch with a bounded uniform reservoir.

    Exact aggregates (``count``, ``total``, ``min``, ``max``) are kept
    for every observation; quantiles are estimated from a fixed-size
    uniform sample maintained by Vitter's Algorithm R.  Until the
    reservoir fills, quantiles are exact.

    Parameters
    ----------
    reservoir_size:
        Maximum number of observations retained for quantile
        estimation.
    seed:
        Seed for the reservoir's replacement decisions; fixed per
        histogram so identical runs produce identical summaries.

    Examples
    --------
    >>> h = Histogram(reservoir_size=8)
    >>> for v in [1.0, 2.0, 3.0, 4.0]:
    ...     h.observe(v)
    >>> h.count, h.total, h.min, h.max
    (4, 10.0, 1.0, 4.0)
    >>> h.quantile(0.5)
    2.5
    """

    __slots__ = ("reservoir_size", "count", "total", "min", "max", "_sample", "_rng")

    def __init__(self, reservoir_size: int = 1024, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be at least 1")
        self.reservoir_size = int(reservoir_size)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.reservoir_size:
            self._sample.append(value)
        else:
            # Algorithm R: the new value replaces a random slot with
            # probability reservoir_size / count, keeping the sample
            # uniform over everything seen so far.
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._sample[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (``nan`` when empty)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation over the sample)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._sample:
            return math.nan
        ordered = sorted(self._sample)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> dict[str, float]:
        """JSON-ready aggregate view (count/total/mean/min/max/p50/p95/p99)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "mean": None if empty else self.mean,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": None if empty else self.quantile(0.50),
            "p95": None if empty else self.quantile(0.95),
            "p99": None if empty else self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create home for every metric series of one run.

    ``counter`` / ``gauge`` / ``histogram`` return the existing series
    for (name, labels) or create it; asking for the same name with a
    different metric kind is an error — a name means one thing.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("rounds").inc()
    >>> registry.counter("rounds").inc(2.0)
    >>> registry.counter("rounds").value
    3.0
    >>> registry.histogram("latency").observe(0.5)
    >>> registry.snapshot()["counters"]
    [{'name': 'rounds', 'labels': {}, 'value': 3.0}]
    """

    def __init__(self, default_reservoir_size: int = 1024) -> None:
        self.default_reservoir_size = int(default_reservoir_size)
        self._series: dict[SeriesKey, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, kind: type, key: SeriesKey, factory):
        series = self._series.get(key)
        if series is None:
            series = factory()
            self._series[key] = series
        elif not isinstance(series, kind):
            raise TypeError(
                f"metric {format_series(*key)!r} already registered as "
                f"{type(series).__name__}, not {kind.__name__}"
            )
        return series

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter series for (name, labels), created on first use."""
        return self._get_or_create(Counter, _series_key(name, labels), Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge series for (name, labels), created on first use."""
        return self._get_or_create(Gauge, _series_key(name, labels), Gauge)

    def histogram(
        self, name: str, *, reservoir_size: int | None = None, **labels: object
    ) -> Histogram:
        """The histogram series for (name, labels), created on first use."""
        size = reservoir_size or self.default_reservoir_size
        return self._get_or_create(
            Histogram, _series_key(name, labels), lambda: Histogram(size)
        )

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self._series)

    def series(self) -> Iterator[tuple[str, dict[str, str], Counter | Gauge | Histogram]]:
        """Iterate ``(name, labels, metric)`` in registration order."""
        for (name, labels), metric in self._series.items():
            yield name, dict(labels), metric

    def snapshot(self) -> dict[str, list[dict]]:
        """JSON-ready dump: counters, gauges, and histogram summaries.

        Each section is sorted by rendered series name so the output is
        stable across runs regardless of registration order.
        """
        counters, gauges, histograms = [], [], []
        for name, labels, metric in self.series():
            entry: dict = {"name": name, "labels": labels}
            if isinstance(metric, Counter):
                counters.append({**entry, "value": metric.value})
            elif isinstance(metric, Gauge):
                gauges.append({**entry, "value": metric.value})
            else:
                histograms.append({**entry, **metric.summary()})
        order = lambda e: format_series(e["name"], tuple(sorted(e["labels"].items())))
        return {
            "counters": sorted(counters, key=order),
            "gauges": sorted(gauges, key=order),
            "histograms": sorted(histograms, key=order),
        }
