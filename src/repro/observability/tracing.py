"""Span-based tracing: where does a supervised round spend its time?

A *span* is a named, timed section of work; spans nest (a
``supervisor.round`` span contains ``supervisor.bidding``,
``supervisor.execution``, ... children), carry static ``attributes``
set at creation, and collect timestamped ``annotations`` appended while
they are open (the chaos harness logs every injected fault this way).

The :class:`Tracer` keeps one stack of open spans (the DES substrate is
single-threaded) and a bounded list of finished ones.  Finished spans
export as JSON Lines — one object per line, self-contained, streamable —
with the schema documented in DESIGN.md §8:

.. code-block:: json

    {"name": "supervisor.round", "span_id": 7, "parent_id": null,
     "start": 0.1031, "end": 0.1192, "duration": 0.0161,
     "attributes": {"index": 3},
     "annotations": [{"at": 0.1033, "message": "fault.injected",
                      "machine": "C2", "kind": "crash"}]}

Timestamps come from an injectable ``clock`` (default
:func:`time.perf_counter`) so tests can drive spans with a fake clock
and assert exact durations.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, IO

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One (possibly still open) span."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    annotations: list[dict[str, object]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (``nan`` while the span is still open)."""
        return math.nan if self.end is None else self.end - self.start

    def annotate(self, message: str, at: float, **attrs: object) -> None:
        """Append a timestamped event to this span."""
        self.annotations.append({"at": at, "message": message, **attrs})

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (one JSONL line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.duration,
            "attributes": self.attributes,
            "annotations": self.annotations,
        }


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._record.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._record)


class Tracer:
    """Collects nested spans; exports them as JSON Lines.

    Parameters
    ----------
    clock:
        Monotonic time source; injectable for tests.
    max_spans:
        Bound on retained finished spans.  Past it new spans are still
        timed (their metrics side-effects happen) but not retained;
        ``dropped`` counts them, so a truncated export is detectable.

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> tracer = Tracer(clock=lambda: float(next(ticks)))
    >>> with tracer.span("round", index=0):
    ...     with tracer.span("bidding"):
    ...         _ = tracer.annotate("retry", machine="C2")
    >>> [s.name for s in tracer.finished]
    ['bidding', 'round']
    >>> tracer.finished[0].parent_id, tracer.finished[1].parent_id
    (1, None)
    >>> tracer.finished[1].duration  # ticks 0..4: starts, annotate, ends
    4.0
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.clock = clock
        self.max_spans = int(max_spans)
        self.finished: list[SpanRecord] = []
        self.dropped = 0
        self._stack: list[SpanRecord] = []
        self._next_id = 1

    # ------------------------------------------------------------ recording

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a span as a context manager; nests under any open span."""
        record = SpanRecord(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(record)
        return _SpanContext(self, record)

    def annotate(self, message: str, **attrs: object) -> bool:
        """Attach an event to the innermost open span.

        Returns ``False`` (and records nothing) when no span is open —
        callers need not care whether tracing context exists.
        """
        if not self._stack:
            return False
        self._stack[-1].annotate(message, at=self.clock(), **attrs)
        return True

    @property
    def current(self) -> SpanRecord | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _finish(self, record: SpanRecord) -> None:
        record.end = self.clock()
        # Close out-of-order finishes defensively: pop through the record.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
        if len(self.finished) < self.max_spans:
            self.finished.append(record)
        else:
            self.dropped += 1

    # ------------------------------------------------------------ queries

    def durations_by_name(self) -> dict[str, list[float]]:
        """Finished-span durations grouped by span name."""
        grouped: dict[str, list[float]] = {}
        for record in self.finished:
            grouped.setdefault(record.name, []).append(record.duration)
        return grouped

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregates: count, total, mean, p50/p95/p99, max.

        Computed exactly over all finished spans (span counts are small
        compared to per-job observations, so no reservoir is needed).
        """
        result: dict[str, dict[str, float]] = {}
        for name, durations in sorted(self.durations_by_name().items()):
            ordered = sorted(durations)
            result[name] = {
                "count": len(ordered),
                "total": sum(ordered),
                "mean": sum(ordered) / len(ordered),
                "p50": _quantile(ordered, 0.50),
                "p95": _quantile(ordered, 0.95),
                "p99": _quantile(ordered, 0.99),
                "max": ordered[-1],
            }
        return result

    # ------------------------------------------------------------ export

    def dumps_jsonl(self) -> str:
        """Finished spans as JSON Lines (one span object per line)."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in self.finished)

    def export_jsonl(self, destination: str | IO[str]) -> int:
        """Write the JSONL export to a path or open file; returns #spans."""
        payload = self.dumps_jsonl()
        if payload:
            payload += "\n"
        if hasattr(destination, "write"):
            destination.write(payload)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return len(self.finished)


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction
