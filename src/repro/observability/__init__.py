"""Observability layer: metrics, tracing, and profiling for every run.

Until now the only telemetry in the system was the CUSUM slowdown
detector; there was no way to see where a supervised round spends its
time, how often retries and quarantines fire, or how allocation latency
scales with ``n``.  This subpackage is the measurement substrate the
ROADMAP's production-scale goal needs, in three zero-dependency pieces:

* :mod:`repro.observability.metrics` — a registry of counters, gauges,
  and histograms with **bounded reservoirs** (memory stays O(reservoir)
  over arbitrarily long campaigns, quantiles stay available);
* :mod:`repro.observability.tracing` — nested spans with timestamped
  annotations and a JSONL export (schema in DESIGN.md §8);
* :mod:`repro.observability.profiling` — :func:`time.perf_counter`
  timers as context managers (:class:`Stopwatch`,
  :func:`timed_section`) and decorators (:func:`profiled`).

The layer is **off by default** and costs a global read + ``None``
check per hook when off; ``benchmarks/bench_observability.py`` holds
the enabled overhead under 5% on the protocol bench.  Enable it around
any workload:

>>> import numpy as np
>>> from repro import TruthfulAgent, run_protocol
>>> from repro.observability import instrumented
>>> with instrumented() as instr:
...     result = run_protocol(
...         [TruthfulAgent(1.0), TruthfulAgent(2.0)], 3.0,
...         duration=5.0, rng=np.random.default_rng(0),
...     )
>>> sorted(instr.tracer.summary())
['protocol.round']
>>> instr.metrics.counter(
...     "protocol.phase_transitions", src="idle", dst="bidding").value
1.0

The instrumented hot paths are the coordinator's phase transitions,
the supervised round loop (retries, quarantine opens/closes,
checkpoint writes/restores), PR allocation, the compensation-bonus
payment computation, and the chaos harness (fault injections become
span annotations).  ``repro metrics`` runs a supervised workload and
renders the whole picture from a shell.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import SpanRecord, Tracer
from repro.observability.instrumentation import (
    Instrumentation,
    active,
    annotate,
    disable,
    enable,
    instrumented,
    observe_value,
    record_counter,
    record_gauge,
    timed_section,
    trace_span,
)
from repro.observability.profiling import Stopwatch, profiled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "Instrumentation",
    "active",
    "annotate",
    "disable",
    "enable",
    "instrumented",
    "observe_value",
    "record_counter",
    "record_gauge",
    "timed_section",
    "trace_span",
    "Stopwatch",
    "profiled",
]
