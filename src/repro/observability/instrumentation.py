"""The switchboard: one bundle of registry + tracer, globally toggleable.

Instrumented code (the coordinator, the supervisor, the allocators)
never holds a reference to a registry; it calls the module-level
helpers here — :func:`record_counter`, :func:`trace_span`,
:func:`timed_section`, :func:`annotate` — which are **no-ops costing a
global read and a ``None`` check** while instrumentation is disabled
(the default).  That is what keeps the overhead budget (< 5% on the
protocol bench, measured by ``benchmarks/bench_observability.py``)
honest: production code paths are identical with the layer off.

Enabling installs an :class:`Instrumentation` (a
:class:`~repro.observability.metrics.MetricsRegistry` plus a
:class:`~repro.observability.tracing.Tracer` sharing one clock) as the
process-wide active sink:

>>> from repro.observability import instrumented, record_counter, timed_section
>>> with instrumented() as instr:
...     record_counter("demo.events", kind="example")
...     with timed_section("demo.section.seconds"):
...         pass
>>> instr.metrics.counter("demo.events", kind="example").value
1.0
>>> record_counter("demo.events")   # outside the block: dropped
>>> len(instr.metrics)
2

The global is deliberately a single slot, not a stack of collectors:
one run, one instrumentation, matching the one-process DES substrate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.tracing import SpanRecord, Tracer

__all__ = [
    "Instrumentation",
    "enable",
    "disable",
    "active",
    "instrumented",
    "record_counter",
    "record_gauge",
    "observe_value",
    "trace_span",
    "annotate",
    "timed_section",
]


class Instrumentation:
    """A metrics registry and a tracer sharing one clock.

    Parameters
    ----------
    clock:
        Monotonic time source used by both the tracer and
        :func:`timed_section`; injectable for deterministic tests.
    reservoir_size:
        Default histogram reservoir size for the registry.
    max_spans:
        Retention bound for finished spans (see :class:`Tracer`).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        reservoir_size: int = 1024,
        max_spans: int = 100_000,
    ) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry(default_reservoir_size=reservoir_size)
        self.tracer = Tracer(clock=clock, max_spans=max_spans)

    # Thin delegates so call sites need only the bundle.

    def counter(self, name: str, **labels: object) -> Counter:
        """Get-or-create a counter series."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get-or-create a gauge series."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get-or-create a histogram series."""
        return self.metrics.histogram(name, **labels)

    def span(self, name: str, **attributes: object):
        """Open a tracer span (context manager)."""
        return self.tracer.span(name, **attributes)

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric plus the span summary."""
        payload = self.metrics.snapshot()
        payload["spans"] = self.tracer.summary()
        payload["spans_dropped"] = self.tracer.dropped
        return payload


_active: Instrumentation | None = None


def enable(instrumentation: Instrumentation | None = None) -> Instrumentation:
    """Install (and return) the process-wide active instrumentation."""
    global _active
    _active = instrumentation if instrumentation is not None else Instrumentation()
    return _active


def disable() -> Instrumentation | None:
    """Remove the active instrumentation; returns what was installed."""
    global _active
    previous = _active
    _active = None
    return previous


def active() -> Instrumentation | None:
    """The currently installed instrumentation, or ``None``."""
    return _active


@contextmanager
def instrumented(
    instrumentation: Instrumentation | None = None,
) -> Iterator[Instrumentation]:
    """Scoped enable: install for the ``with`` block, then restore."""
    global _active
    previous = _active
    installed = enable(instrumentation)
    try:
        yield installed
    finally:
        _active = previous


# --------------------------------------------------------------- helpers
#
# The functions below are the only observability surface the hot paths
# touch.  Each one degrades to (global read + None check) when disabled.


def record_counter(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter iff instrumentation is enabled."""
    obs = _active
    if obs is not None:
        obs.metrics.counter(name, **labels).inc(amount)


def record_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge iff instrumentation is enabled."""
    obs = _active
    if obs is not None:
        obs.metrics.gauge(name, **labels).set(value)


def observe_value(name: str, value: float, **labels: object) -> None:
    """Record a histogram observation iff instrumentation is enabled."""
    obs = _active
    if obs is not None:
        obs.metrics.histogram(name, **labels).observe(value)


def annotate(message: str, **attrs: object) -> None:
    """Attach an event to the current open span, if tracing is live."""
    obs = _active
    if obs is not None:
        obs.tracer.annotate(message, **attrs)


class _NullContext:
    """Reusable do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL = _NullContext()


def trace_span(name: str, **attributes: object):
    """A tracer span when enabled, a shared no-op context otherwise."""
    obs = _active
    if obs is None:
        return _NULL
    return obs.tracer.span(name, **attributes)


class _TimedSection:
    """Context manager timing a block into a histogram (seconds)."""

    __slots__ = ("_obs", "_name", "_labels", "_start")

    def __init__(self, obs: Instrumentation, name: str, labels: dict) -> None:
        self._obs = obs
        self._name = name
        self._labels = labels

    def __enter__(self) -> None:
        self._start = self._obs.clock()
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self._obs.clock() - self._start
        self._obs.metrics.histogram(self._name, **self._labels).observe(elapsed)


def timed_section(name: str, **labels: object):
    """Time a block into histogram ``name`` (seconds) when enabled."""
    obs = _active
    if obs is None:
        return _NULL
    return _TimedSection(obs, name, labels)
