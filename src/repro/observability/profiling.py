"""Lightweight profiling hooks: timers as context managers and decorators.

Everything here is a thin shell over :func:`time.perf_counter` feeding
the metrics registry, so "profiling" and "metrics" are one substrate:
a profiled function is just a histogram named after it, and the CLI's
span/percentile tables render profiler output with no extra machinery.

* :class:`Stopwatch` — measure a block, read ``.elapsed`` afterwards;
* :func:`profiled` — decorator recording each call's duration into the
  *active* instrumentation (resolved per call, so importing a decorated
  module never forces instrumentation on, and the disabled cost is one
  global read per call).

Examples
--------
>>> from repro.observability import Instrumentation, instrumented, profiled
>>> @profiled("demo.work.seconds")
... def work(x):
...     return x * 2
>>> work(3)                     # disabled: nothing recorded
6
>>> with instrumented() as instr:
...     _ = work(5)
>>> instr.metrics.histogram("demo.work.seconds").count
1
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.observability import instrumentation as _instr

__all__ = ["Stopwatch", "profiled"]

F = TypeVar("F", bound=Callable)


class Stopwatch:
    """Measure a block's wall time; optionally record it as a histogram.

    Parameters
    ----------
    name:
        Histogram name to record into the active instrumentation on
        exit; ``None`` measures without recording.
    clock:
        Time source (default :func:`time.perf_counter`).

    Examples
    --------
    >>> ticks = iter([10.0, 12.5])
    >>> with Stopwatch(clock=lambda: next(ticks)) as watch:
    ...     pass
    >>> watch.elapsed
    2.5
    """

    __slots__ = ("name", "clock", "labels", "started", "elapsed")

    def __init__(
        self,
        name: str | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        **labels: object,
    ) -> None:
        self.name = name
        self.clock = clock
        self.labels = labels
        self.started: float | None = None
        self.elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.started = self.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.started is not None
        self.elapsed = self.clock() - self.started
        if self.name is not None:
            _instr.observe_value(self.name, self.elapsed, **self.labels)


def profiled(name: str, **labels: object) -> Callable[[F], F]:
    """Decorator: record each call's duration into histogram ``name``.

    The active instrumentation is looked up at *call* time, so the
    decorator can be applied unconditionally at import time; calls made
    while instrumentation is disabled cost one global read.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            obs = _instr.active()
            if obs is None:
                return func(*args, **kwargs)
            start = obs.clock()
            try:
                return func(*args, **kwargs)
            finally:
                obs.metrics.histogram(name, **labels).observe(obs.clock() - start)

        return wrapper  # type: ignore[return-value]

    return decorate
