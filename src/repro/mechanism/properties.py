"""Audits for the game-theoretic properties the paper proves.

* **Truthfulness** (Theorem 3.1): for every agent, bidding its true
  value and executing at full capacity is a dominant strategy.  The
  audit scans a grid of (bid, execution) deviations for each agent and
  reports the largest utility gain found; a truthful mechanism must
  show a gain of at most numerical noise.
* **Voluntary participation** (Theorem 3.2): a truthful agent's utility
  is never negative; the audit reports the minimum truthful utility.
* **Frugality** (Section 4, Fig. 6): total payment over total agent
  cost; the paper observes the ratio stays below about 2.5.

These audits are used both by the test suite (including the
hypothesis-driven property tests) and by the benchmark harness for the
ablation comparing compensation variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.mechanism.base import Mechanism
from repro.types import MechanismOutcome

__all__ = [
    "DeviationResult",
    "TruthfulnessReport",
    "best_deviation_gain",
    "truthfulness_audit",
    "voluntary_participation_margin",
    "frugality_ratio",
]

#: default multiplicative deviations applied to an agent's true value
DEFAULT_BID_FACTORS = (0.1, 0.25, 0.5, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0)
#: execution can only be slower than capacity (factor >= 1)
DEFAULT_EXEC_FACTORS = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0)


@dataclass(frozen=True)
class DeviationResult:
    """Most profitable deviation found for one agent."""

    agent: int
    truthful_utility: float
    best_utility: float
    best_bid: float
    best_execution: float

    @property
    def gain(self) -> float:
        """Utility improvement of the best deviation over truth-telling."""
        return self.best_utility - self.truthful_utility


@dataclass(frozen=True)
class TruthfulnessReport:
    """Aggregate of per-agent deviation scans."""

    deviations: tuple[DeviationResult, ...]

    @property
    def max_gain(self) -> float:
        """Largest deviation gain over all agents (<= 0 for a truthful mechanism)."""
        return max(d.gain for d in self.deviations)

    @property
    def is_truthful(self) -> bool:
        """Whether no scanned deviation beats truth-telling (tolerance 1e-9)."""
        return self.max_gain <= 1e-9

    def worst(self) -> DeviationResult:
        """The deviation result with the largest gain."""
        return max(self.deviations, key=lambda d: d.gain)


def _agent_utility(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    bid: float,
    execution: float,
) -> float:
    """Utility of ``agent`` deviating to (bid, execution); others truthful."""
    bids = true_values.copy()
    bids[agent] = bid
    execs = true_values.copy()
    execs[agent] = execution
    outcome = mechanism.run(bids, arrival_rate, execs, true_values=true_values)
    return float(outcome.payments.utility[agent])


def best_deviation_gain(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    bid_factors: tuple[float, ...] = DEFAULT_BID_FACTORS,
    exec_factors: tuple[float, ...] = DEFAULT_EXEC_FACTORS,
) -> DeviationResult:
    """Scan a deviation grid for one agent and return the best deviation.

    Parameters
    ----------
    mechanism:
        Mechanism under audit.
    true_values:
        True latency slopes of all agents.
    arrival_rate:
        Total rate ``R``.
    agent:
        Index of the deviating agent; all other agents bid truthfully
        and execute at capacity.
    bid_factors, exec_factors:
        Multiplicative deviations applied to the agent's true value.
        Execution factors below 1 are rejected (capacity constraint).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")
    if any(f < 1.0 for f in exec_factors):
        raise ValueError("execution factors must be >= 1 (cannot beat capacity)")

    truthful = _agent_utility(
        mechanism, true_values, arrival_rate, agent,
        true_values[agent], true_values[agent],
    )

    best_utility = -np.inf
    best_bid = best_exec = true_values[agent]
    for bf in bid_factors:
        bid = bf * true_values[agent]
        for ef in exec_factors:
            execution = ef * true_values[agent]
            u = _agent_utility(
                mechanism, true_values, arrival_rate, agent, bid, execution
            )
            if u > best_utility:
                best_utility, best_bid, best_exec = u, bid, execution

    return DeviationResult(
        agent=agent,
        truthful_utility=truthful,
        best_utility=best_utility,
        best_bid=float(best_bid),
        best_execution=float(best_exec),
    )


def truthfulness_audit(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    bid_factors: tuple[float, ...] = DEFAULT_BID_FACTORS,
    exec_factors: tuple[float, ...] = DEFAULT_EXEC_FACTORS,
) -> TruthfulnessReport:
    """Run :func:`best_deviation_gain` for every agent."""
    true_values = as_float_array(true_values, "true_values")
    results = tuple(
        best_deviation_gain(
            mechanism, true_values, arrival_rate, agent, bid_factors, exec_factors
        )
        for agent in range(true_values.size)
    )
    return TruthfulnessReport(deviations=results)


def voluntary_participation_margin(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
) -> float:
    """Minimum utility over agents when everyone is truthful.

    Non-negative for any mechanism satisfying the voluntary
    participation condition (Theorem 3.2).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    outcome = mechanism.run(
        true_values, arrival_rate, true_values, true_values=true_values
    )
    return float(np.min(outcome.payments.utility))


def frugality_ratio(outcome: MechanismOutcome) -> float:
    """Total payment over total agent cost for one mechanism outcome."""
    return outcome.frugality_ratio
