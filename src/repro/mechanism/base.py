"""Common interface for load balancing mechanisms.

A *mechanism* (Definition 3.2 of the paper) is a pair of functions: an
allocation rule mapping bids to loads, and a payment rule mapping bids
(and, for mechanisms *with verification*, observed execution values) to
per-agent payments.  Agents have quadratic costs ``t̃_i x_i^2`` — their
valuation is the negation of their total latency contribution — and
utility ``U_i = P_i + V_i``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._validation import (
    as_float_array,
    check_positive,
    check_positive_scalar,
    check_same_length,
)
from repro.types import AllocationResult, MechanismOutcome, PaymentResult

__all__ = ["Mechanism"]


class Mechanism(ABC):
    """Abstract load balancing mechanism.

    Subclasses implement :meth:`allocate` and :meth:`payments`; the
    :meth:`run` template method validates inputs, wires the two stages
    together and packages a :class:`~repro.types.MechanismOutcome`.
    """

    #: whether the payment rule may depend on observed execution values
    uses_verification: bool = False

    # ------------------------------------------------------------ abstract

    @abstractmethod
    def allocate(self, bids: np.ndarray, arrival_rate: float) -> AllocationResult:
        """Compute the allocation from the declared latency slopes."""

    @abstractmethod
    def payments(
        self,
        allocation: AllocationResult,
        execution_values: np.ndarray,
    ) -> PaymentResult:
        """Compute per-agent payments.

        ``execution_values`` are the observed ``t̃_i``; mechanisms
        without verification must ignore them for the payment (they are
        still used to compute the agents' realised valuations).
        """

    # ------------------------------------------------------------ template

    def run(
        self,
        bids: np.ndarray,
        arrival_rate: float,
        execution_values: np.ndarray | None = None,
        *,
        true_values: np.ndarray | None = None,
    ) -> MechanismOutcome:
        """Execute the mechanism end to end.

        Parameters
        ----------
        bids:
            Declared latency slopes ``b_i`` (strictly positive).
        arrival_rate:
            Total job arrival rate ``R``.
        execution_values:
            Observed execution slopes ``t̃_i``.  Defaults to the bids
            (i.e. agents execute exactly as declared).
        true_values:
            Optional true slopes ``t_i``, recorded in the outcome for
            audits.  When given, execution values are checked against
            the model constraint ``t̃_i >= t_i`` ("an agent may execute
            the assigned jobs at a slower rate than its true processing
            rate", Section 3) — executing faster than capacity is
            physically impossible.
        """
        bids = as_float_array(bids, "bids")
        check_positive(bids, "bids")
        arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")

        if execution_values is None:
            execution_values = bids.copy()
        else:
            execution_values = as_float_array(execution_values, "execution_values")
            check_positive(execution_values, "execution_values")
            check_same_length("bids", bids, "execution_values", execution_values)

        if true_values is not None:
            true_values = as_float_array(true_values, "true_values")
            check_positive(true_values, "true_values")
            check_same_length("bids", bids, "true_values", true_values)
            if np.any(execution_values < true_values - 1e-12):
                bad = int(np.argmax(execution_values < true_values - 1e-12))
                raise ValueError(
                    f"execution value {execution_values[bad]:g} at machine {bad} "
                    f"is below its true value {true_values[bad]:g}; machines "
                    "cannot execute faster than their capacity"
                )

        allocation = self.allocate(bids, arrival_rate)
        payments = self.payments(allocation, execution_values)
        return MechanismOutcome(
            allocation=allocation,
            payments=payments,
            execution_values=execution_values,
            true_values=true_values,
            metadata={"mechanism": type(self).__name__},
        )

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _valuations(allocation: AllocationResult, execution_values: np.ndarray) -> np.ndarray:
        """Agents' valuations ``V_i = -t̃_i x_i^2`` (the negated cost)."""
        return -execution_values * allocation.loads**2
