"""Mechanisms for load balancing with self-interested machines.

* :class:`VerificationMechanism` — the paper's contribution: a
  compensation-and-bonus mechanism *with verification* (payments depend
  on observed execution values), truthful and voluntarily participated
  (Theorems 3.1 and 3.2).
* :class:`VCGMechanism` — the classical Vickrey–Clarke–Groves baseline
  (no verification; applicable here because the objective equals the
  negated sum of valuations).
* :class:`ArcherTardosMechanism` — the one-parameter payment scheme of
  Archer & Tardos (FOCS 2001, the paper's ref [2]) instantiated for
  linear latencies via the work curve ``w_i = x_i^2``; the approach of
  the companion paper (ref [8]).
* :mod:`repro.mechanism.properties` — audits for truthfulness,
  voluntary participation, and frugality.
"""

from repro.mechanism.base import Mechanism
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.mechanism.vcg import VCGMechanism
from repro.mechanism.archer_tardos import ArcherTardosMechanism
from repro.mechanism.mm1_mechanism import MM1TruthfulMechanism
from repro.mechanism.batch import BatchOutcome, batch_run, batch_utility_of_agent
from repro.mechanism.properties import (
    best_deviation_gain,
    truthfulness_audit,
    voluntary_participation_margin,
    frugality_ratio,
)

__all__ = [
    "Mechanism",
    "VerificationMechanism",
    "VCGMechanism",
    "ArcherTardosMechanism",
    "MM1TruthfulMechanism",
    "BatchOutcome",
    "batch_run",
    "batch_utility_of_agent",
    "best_deviation_gain",
    "truthfulness_audit",
    "voluntary_participation_margin",
    "frugality_ratio",
]
