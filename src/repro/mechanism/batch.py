"""Vectorised batch evaluation of the verification mechanism.

The audits, landscapes, and collusion scans evaluate the mechanism at
thousands of (bids, executions) profiles.  Each profile is closed form,
so the whole batch is too: this module evaluates ``K`` profiles in a
handful of ``(K, n)`` array operations instead of ``K`` Python-level
mechanism runs — the classic vectorise-the-outer-loop optimisation
(~50x at K = 10^4; measured in ``bench_batch.py``).

Exactness is part of the contract: ``batch_run`` must agree with
:class:`~repro.mechanism.VerificationMechanism` bit-for-bit up to
floating-point associativity (tested against the scalar path on random
batches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_scalar

__all__ = ["BatchOutcome", "batch_run", "batch_utility_of_agent"]


@dataclass(frozen=True)
class BatchOutcome:
    """Per-profile mechanism results, all arrays of shape ``(K, n)``.

    ``payment = compensation + bonus`` and ``utility = payment +
    valuation`` hold element-wise, exactly as in
    :class:`~repro.types.PaymentResult`.
    """

    loads: np.ndarray
    realised_latency: np.ndarray  # shape (K,)
    compensation: np.ndarray
    bonus: np.ndarray
    valuation: np.ndarray

    @property
    def payment(self) -> np.ndarray:
        """Per-profile per-agent payments."""
        return self.compensation + self.bonus

    @property
    def utility(self) -> np.ndarray:
        """Per-profile per-agent utilities."""
        return self.payment + self.valuation

    @property
    def n_profiles(self) -> int:
        """Number of profiles in the batch."""
        return int(self.loads.shape[0])


def _validate_matrix(values: np.ndarray, name: str) -> np.ndarray:
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"{name} must be 2-D (profiles x machines)")
    if values.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(values)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(values <= 0.0):
        raise ValueError(f"all entries of {name} must be strictly positive")
    return values


def _batch_kernel(
    bids: np.ndarray,
    arrival_rate: float,
    execution_values: np.ndarray,
    compensation: str,
) -> BatchOutcome:
    """The validated closed-form batch evaluation (one row = one profile)."""
    inv = 1.0 / bids                                   # (K, n)
    total_inv = inv.sum(axis=1, keepdims=True)         # (K, 1)
    loads = arrival_rate * inv / total_inv             # (K, n)
    loads_sq = loads * loads

    realised = np.einsum("kn,kn->k", execution_values, loads_sq)  # (K,)
    excluded = arrival_rate**2 / (total_inv - inv)     # (K, n): L_{-i}
    bonus = excluded - realised[:, None]

    if compensation == "observed":
        comp = execution_values * loads_sq
    else:
        comp = bids * loads_sq
    valuation = -execution_values * loads_sq

    return BatchOutcome(
        loads=loads,
        realised_latency=realised,
        compensation=comp,
        bonus=bonus,
        valuation=valuation,
    )


def _kernel_slice(args: tuple) -> BatchOutcome:
    """Picklable per-chunk worker for the parallel batch path."""
    bids, arrival_rate, execution_values, compensation = args
    return _batch_kernel(bids, arrival_rate, execution_values, compensation)


def batch_run(
    bids: np.ndarray,
    arrival_rate: float,
    execution_values: np.ndarray | None = None,
    *,
    compensation: str = "observed",
    workers: int = 0,
    chunk_size: int | None = None,
) -> BatchOutcome:
    """Evaluate the verification mechanism at ``K`` profiles at once.

    Parameters
    ----------
    bids:
        Shape ``(K, n)``: one bid vector per row.
    arrival_rate:
        Common arrival rate ``R`` for the whole batch.
    execution_values:
        Shape ``(K, n)``; defaults to the bids.
    compensation:
        ``"observed"`` (Definition 3.3) or ``"declared"`` — the same
        modes as :class:`~repro.mechanism.VerificationMechanism`.
    workers:
        ``> 1`` splits the batch into row chunks and fans them over a
        process pool via :func:`repro.parallel.parallel_map`.  Rows are
        independent, so the concatenated result is bit-identical to
        the serial evaluation.  Worth it only for very large ``K``
        (the serial kernel already vectorises); default is serial.
    chunk_size:
        Rows per chunk when ``workers > 1`` (default: an even split,
        ``ceil(K / (workers * 4))``).
    """
    bids = _validate_matrix(bids, "bids")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    if execution_values is None:
        execution_values = bids
    else:
        execution_values = _validate_matrix(execution_values, "execution_values")
        if execution_values.shape != bids.shape:
            raise ValueError("execution_values must have the same shape as bids")
    if compensation not in ("observed", "declared"):
        raise ValueError("compensation must be 'observed' or 'declared'")
    if bids.shape[1] < 2:
        raise ValueError("leave-one-out bonuses require at least two machines")

    n_profiles = bids.shape[0]
    if workers > 1 and n_profiles > 1:
        from repro.parallel.engine import default_chunk_size, parallel_map

        size = chunk_size or default_chunk_size(n_profiles, workers)
        tasks = [
            (
                bids[start : start + size],
                arrival_rate,
                execution_values[start : start + size],
                compensation,
            )
            for start in range(0, n_profiles, size)
        ]
        parts = parallel_map(_kernel_slice, tasks, workers=workers, chunk_size=1)
        return BatchOutcome(
            loads=np.concatenate([p.loads for p in parts]),
            realised_latency=np.concatenate(
                [p.realised_latency for p in parts]
            ),
            compensation=np.concatenate([p.compensation for p in parts]),
            bonus=np.concatenate([p.bonus for p in parts]),
            valuation=np.concatenate([p.valuation for p in parts]),
        )
    return _batch_kernel(bids, arrival_rate, execution_values, compensation)


def batch_utility_of_agent(
    agent: int,
    agent_bids: np.ndarray,
    agent_executions: np.ndarray,
    other_values: np.ndarray,
    arrival_rate: float,
    *,
    compensation: str = "observed",
) -> np.ndarray:
    """Utility of one agent over a grid of its own deviations.

    The other agents' profile (``other_values``, whose ``agent`` entry
    is ignored — they bid and execute at those values) is collapsed to
    the sufficient statistics ``(S_{-i}, Q_{-i})`` once, then the
    candidate bids/executions (broadcast together) are evaluated through
    the closed-form kernel of :mod:`repro.agents.kernels` — O(K + n)
    instead of the former ``(K, n)``-tile evaluation.  This is the
    kernel behind fast landscapes and audits.
    """
    from repro.agents import kernels

    other_values = np.asarray(other_values, dtype=np.float64)
    if other_values.ndim != 1 or other_values.size < 2:
        raise ValueError(
            "other_values must be a 1-D vector of at least two machines"
        )
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    if compensation not in ("observed", "declared"):
        raise ValueError("compensation must be 'observed' or 'declared'")
    agent_bids, agent_executions = np.broadcast_arrays(
        np.asarray(agent_bids, dtype=np.float64),
        np.asarray(agent_executions, dtype=np.float64),
    )
    for name, values in (("agent_bids", agent_bids), ("agent_executions", agent_executions)):
        if not np.all(np.isfinite(values)) or np.any(values <= 0.0):
            raise ValueError(f"all entries of {name} must be strictly positive and finite")

    s_minus, q_minus = kernels.sufficient_statistics(other_values, agent=agent)
    return kernels.utility_kernel(
        agent_bids,
        agent_executions,
        s_minus,
        q_minus,
        arrival_rate,
        compensation=compensation,
    )
