"""VCG (Vickrey–Clarke–Groves) baseline mechanism.

The paper notes (Related work) that VCG mechanisms apply to objective
functions that are the sum of the agents' valuations.  The load
balancing objective qualifies: ``L(x) = sum_i t_i x_i^2 = -sum_i V_i``,
so minimising the total latency is exactly maximising social welfare.

The Clarke-pivot VCG payment is

    ``P_i = L_{-i}(b_{-i}) - sum_{j != i} b_j x_j(b)^2``,

which decomposes — mirroring the paper's compensation/bonus split — as
a *declared-cost* compensation ``b_i x_i^2`` plus the bonus
``L_{-i}(b_{-i}) - L(x(b), b)`` evaluated at the **declared** latencies.

VCG is truthful in bids but has **no verification**: the payment cannot
depend on the observed execution values, so a machine that executes
slower than it bid is neither detected nor penalised through the
payment (it only bears its own increased cost).  The verification
mechanism doubles that penalty — see
``benchmarks/bench_baselines.py`` for the quantitative comparison.

Strategic-layer queries (``best_response``, ``BestResponseDynamics``,
``simulate_learning``) run vectorized for this mechanism through the
``"vcg"`` mode of :mod:`repro.agents.kernels`; the payment formulas
and kernel derivation are worked through in ``docs/mechanisms.md``.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.pr import optimal_latency_excluding_each, pr_allocation
from repro.mechanism.base import Mechanism
from repro.types import AllocationResult, PaymentResult

__all__ = ["VCGMechanism"]


class VCGMechanism(Mechanism):
    """Clarke-pivot VCG mechanism for linear-latency load balancing."""

    uses_verification = False

    def allocate(self, bids: np.ndarray, arrival_rate: float) -> AllocationResult:
        """PR allocation on the declared slopes (welfare-maximising)."""
        return pr_allocation(bids, arrival_rate)

    def payments(
        self,
        allocation: AllocationResult,
        execution_values: np.ndarray,
    ) -> PaymentResult:
        """Clarke payments; ``execution_values`` only affect valuations."""
        loads_sq = allocation.loads**2
        declared_latency = float(np.dot(allocation.bids, loads_sq))
        excluded = optimal_latency_excluding_each(
            allocation.bids, allocation.arrival_rate
        )
        compensation = allocation.bids * loads_sq
        bonus = excluded - declared_latency
        valuation = -execution_values * loads_sq
        return PaymentResult(
            compensation=compensation, bonus=bonus, valuation=valuation
        )

    def __repr__(self) -> str:
        return "VCGMechanism()"
