"""Archer–Tardos one-parameter mechanism for linear-latency load balancing.

Archer & Tardos (FOCS 2001 — the paper's ref [2]) give a recipe for
truthful mechanisms when each agent's cost is ``t_i * w_i(o)`` for a
single private parameter ``t_i`` and an output-dependent *work* level
``w_i``: the allocation must make ``w_i`` non-increasing in agent ``i``'s
bid, and the unique (normalised) truthful payment is

    ``P_i(b) = b_i w_i(b) + integral_{b_i}^{inf} w_i(u, b_{-i}) du``.

The load balancing problem fits this framework with **work = squared
load**: agent ``i``'s cost is ``t_i x_i^2 = t_i w_i`` with
``w_i = x_i^2``.  Under the PR allocation,

    ``x_i(u, b_{-i}) = R / (u S_{-i} + 1)``  with  ``S_{-i} = sum_{j != i} 1/b_j``,

which is strictly decreasing in the bid ``u``, so the monotonicity
condition holds and the payment integral has the closed form

    ``integral_{b}^{inf} R^2 / (u S + 1)^2 du = R^2 / (S (b S + 1))``.

This is the mechanism design approach of the companion paper (Grosu &
Chronopoulos, CLUSTER 2002 — ref [8], there applied to M/M/1 delays).
It is truthful in *bids* but, like VCG, has no verification step: the
payment cannot react to the observed execution values.

Strategic-layer queries (``best_response``, ``BestResponseDynamics``,
``simulate_learning``) run vectorized for this mechanism through the
``"archer_tardos"`` mode of :mod:`repro.agents.kernels`; the payment
formulas and kernel derivation are worked through in
``docs/mechanisms.md``.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.pr import pr_allocation
from repro.mechanism.base import Mechanism
from repro.types import AllocationResult, PaymentResult

__all__ = ["ArcherTardosMechanism"]


class ArcherTardosMechanism(Mechanism):
    """One-parameter truthful payments with work curve ``w_i = x_i^2``."""

    uses_verification = False

    def allocate(self, bids: np.ndarray, arrival_rate: float) -> AllocationResult:
        """PR allocation (monotone: ``x_i`` decreases in ``b_i``)."""
        return pr_allocation(bids, arrival_rate)

    def payments(
        self,
        allocation: AllocationResult,
        execution_values: np.ndarray,
    ) -> PaymentResult:
        """Closed-form Archer–Tardos payments (vectorised over agents)."""
        bids = allocation.bids
        rate = allocation.arrival_rate
        loads_sq = allocation.loads**2

        inv = 1.0 / bids
        s_minus = inv.sum() - inv  # S_{-i} for every agent at once
        compensation = bids * loads_sq
        bonus = self.payment_integral(bids, s_minus, rate)
        valuation = -execution_values * loads_sq
        return PaymentResult(
            compensation=compensation, bonus=bonus, valuation=valuation
        )

    # ------------------------------------------------------------ checks

    @staticmethod
    def payment_integral(bids, s_minus, arrival_rate: float):
        """Closed form of the Archer–Tardos work integral (vectorised).

        ``integral_{b}^{inf} (R / (u S_{-i} + 1))^2 du
        = R^2 / (S_{-i} (b S_{-i} + 1))`` — the bonus term of
        :meth:`payments`, exposed so callers (and the regression test
        against :meth:`payment_integral_numeric`) can evaluate it
        without running the whole mechanism.  Accepts scalars or
        broadcast-compatible arrays.
        """
        bids = np.asarray(bids, dtype=np.float64)
        s_minus = np.asarray(s_minus, dtype=np.float64)
        return arrival_rate**2 / (s_minus * (bids * s_minus + 1.0))

    @staticmethod
    def payment_integral_numeric(
        bid: float,
        s_minus: float,
        arrival_rate: float,
        *,
        epsabs: float = 1e-12,
        epsrel: float = 1e-12,
    ) -> float:
        """Numeric quadrature of the payment integral, for cross-checking.

        Evaluates ``integral_{bid}^{inf} (R / (u S + 1))^2 du`` with
        adaptive quadrature; :meth:`payment_integral` (the closed form
        :meth:`payments` uses on its hot path — scipy is only imported
        here, for this cross-check) must agree to solver precision
        (tested to ~1e-12 relative).
        """
        from scipy import integrate  # deferred: quadrature is check-only

        def work(u: float) -> float:
            return (arrival_rate / (u * s_minus + 1.0)) ** 2

        value, _abserr = integrate.quad(
            work, bid, np.inf, epsabs=epsabs, epsrel=epsrel
        )
        return float(value)

    def __repr__(self) -> str:
        return "ArcherTardosMechanism()"
