"""Truthful mechanism for M/M/1 computers — the companion paper, rebuilt.

Grosu & Chronopoulos (CLUSTER 2002 — the reproduced paper's ref [8] and
"closest work") design a truthful load balancing mechanism for
computers modelled by M/M/1 delay functions, using the Archer–Tardos
one-parameter framework: each computer's private value is ``t_i``
(inverse processing rate, so ``mu_i = 1/t_i``), its cost is
``t_i * x_i`` (processing time per unit of allocated work), the
allocation is the latency-optimal M/M/1 split (here via the
water-filling solver), and the truthful payment is

    ``P_i(b) = b_i x_i(b) + integral_{b_i}^{inf} x_i(u, b_{-i}) du``.

Unlike the linear case there is no closed form: the work curve
``x_i(u, b_{-i})`` comes from re-solving the allocation, and the
integral is evaluated by adaptive quadrature.  The integral's support
is finite: once ``u`` exceeds the water level at which the *other*
machines alone absorb the whole arrival rate, machine ``i`` receives
zero load — the cutoff is computed exactly, not guessed.

Included both as the reproduced paper's nearest baseline and as a
demonstration that the substrate (latency models + general allocator)
supports mechanisms beyond the linear model.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.allocation.kkt import water_filling_allocation
from repro.latency.mm1 import MM1LatencyModel
from repro.mechanism.base import Mechanism
from repro.types import AllocationResult, PaymentResult

__all__ = ["MM1TruthfulMechanism"]


class MM1TruthfulMechanism(Mechanism):
    """Archer–Tardos mechanism on the M/M/1 delay substrate.

    Bids are declared ``t_i = 1/mu_i`` values.  The mechanism requires
    every leave-one-out subsystem to have spare capacity (otherwise a
    single machine could hold the system hostage and its payment
    integral would diverge); :meth:`run` validates this.
    """

    uses_verification = False

    def __init__(self, quadrature_tol: float = 1e-8) -> None:
        self.quadrature_tol = float(quadrature_tol)

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _model(bids: np.ndarray) -> MM1LatencyModel:
        return MM1LatencyModel(1.0 / bids)

    @staticmethod
    def _check_capacity(bids: np.ndarray, arrival_rate: float) -> None:
        mu = 1.0 / bids
        total = float(mu.sum())
        if arrival_rate >= total:
            raise ValueError(
                f"arrival rate {arrival_rate:g} exceeds the declared capacity {total:g}"
            )
        loo = total - mu
        if np.any(arrival_rate >= loo):
            worst = int(np.argmin(loo - arrival_rate))
            raise ValueError(
                "every leave-one-out subsystem needs spare capacity for the "
                f"payment to be well defined; removing machine {worst} leaves "
                f"capacity {loo[worst]:g} < R = {arrival_rate:g}"
            )

    def _load_of(
        self, agent: int, bid: float, bids: np.ndarray, arrival_rate: float
    ) -> float:
        """Machine ``agent``'s load when it bids ``bid`` (work curve)."""
        candidate = bids.copy()
        candidate[agent] = bid
        allocation = water_filling_allocation(
            self._model(candidate), arrival_rate
        )
        return float(allocation.loads[agent])

    def _exclusion_bid(
        self, agent: int, bids: np.ndarray, arrival_rate: float
    ) -> float:
        """Bid above which machine ``agent`` receives zero load.

        A machine is priced out when its zero-load marginal (``1/mu_i``
        = its bid) reaches the water level of the others-only optimum.
        """
        others = np.delete(bids, agent)
        allocation = water_filling_allocation(self._model(others), arrival_rate)
        model = self._model(others)
        level = float(model.marginal(allocation.loads).max())
        return level

    # ------------------------------------------------------------ stages

    def allocate(self, bids: np.ndarray, arrival_rate: float) -> AllocationResult:
        """Latency-optimal M/M/1 allocation at the declared rates."""
        self._check_capacity(bids, arrival_rate)
        allocation = water_filling_allocation(self._model(bids), arrival_rate)
        # Re-package with the bids (water_filling stores marginals).
        return AllocationResult(
            loads=allocation.loads,
            arrival_rate=arrival_rate,
            bids=bids,
            total_latency=allocation.total_latency,
        )

    def payments(
        self,
        allocation: AllocationResult,
        execution_values: np.ndarray,
    ) -> PaymentResult:
        """AT payments: declared-cost rebate plus the work-curve integral."""
        bids = allocation.bids
        rate = allocation.arrival_rate
        n = bids.size

        compensation = bids * allocation.loads
        bonus = np.empty(n)
        for i in range(n):
            cutoff = self._exclusion_bid(i, bids, rate)
            if cutoff <= bids[i]:
                bonus[i] = 0.0
                continue
            value, _err = integrate.quad(
                lambda u, i=i: self._load_of(i, u, bids, rate),
                bids[i],
                cutoff,
                epsabs=self.quadrature_tol,
                epsrel=self.quadrature_tol,
                limit=100,
            )
            bonus[i] = value

        # One-parameter valuation: cost is t̃_i per unit of work x_i.
        valuation = -execution_values * allocation.loads
        return PaymentResult(
            compensation=compensation, bonus=bonus, valuation=valuation
        )

    # ------------------------------------------------------------ analysis

    def utility_of_bid(
        self,
        agent: int,
        bid: float,
        true_value: float,
        bids: np.ndarray,
        arrival_rate: float,
    ) -> float:
        """Agent's utility for one candidate bid (others' bids fixed).

        Used by the truthfulness tests; the agent's realised cost uses
        its *true* value regardless of the declaration.
        """
        bids = as_float_array(bids, "bids").copy()
        check_positive(bids, "bids")
        true_value = check_positive_scalar(true_value, "true_value")
        bids[agent] = bid
        outcome = self.run(bids, arrival_rate)
        load = float(outcome.loads[agent])
        payment = float(outcome.payments.payment[agent])
        # Replace the declared-cost valuation with the true one.
        return payment - true_value * load

    def __repr__(self) -> str:
        return "MM1TruthfulMechanism()"
