"""The paper's load balancing mechanism with verification (Definition 3.3).

The mechanism:

1. collects bids ``b`` and allocates by the PR algorithm ``x = x(b)``;
2. lets machines execute; the verification step observes the execution
   values ``t̃`` (``t̃_i >= t_i``);
3. pays each agent ``P_i = C_i + B_i`` with

   * compensation ``C_i = t̃_i x_i^2`` — exactly the agent's realised
     cost, and
   * bonus ``B_i = L_{-i}(b_{-i}) - L(x(b), t̃)`` — the optimal latency
     of the system without agent ``i`` minus the realised total
     latency, i.e. the agent's marginal contribution to reducing the
     total latency.

Because the compensation cancels the agent's cost, its utility equals
its bonus, which is maximised by making the realised latency as small
as possible — achieved exactly by bidding the truth and executing at
full capacity (Theorem 3.1); and since removing an agent can only
increase the optimal latency, the truthful bonus is non-negative
(Theorem 3.2, voluntary participation).

``compensation="declared"`` selects a variant that compensates at the
*declared* cost ``b_i x_i^2`` instead of the observed one.  This variant
reproduces the paper's Figure 2 narrative for experiment Low2 (negative
*payment*, not just negative utility) but is **not truthful** —
overbidding strictly increases an agent's utility (see DESIGN.md §2 and
``tests/mechanism/test_declared_variant.py`` for the demonstration).
"""

from __future__ import annotations

import numpy as np

from repro.allocation.pr import optimal_latency_excluding_each, pr_allocation
from repro.mechanism.base import Mechanism
from repro.observability.instrumentation import timed_section
from repro.types import AllocationResult, PaymentResult

__all__ = ["VerificationMechanism"]

_COMPENSATION_MODES = ("observed", "declared")


class VerificationMechanism(Mechanism):
    """Compensation-and-bonus mechanism with verification for linear latencies.

    Parameters
    ----------
    compensation:
        ``"observed"`` (default, the paper's formal Definition 3.3:
        ``C_i = t̃_i x_i^2``) or ``"declared"`` (``C_i = b_i x_i^2``,
        the non-truthful variant matching the paper's Low2 prose).

    Examples
    --------
    >>> import numpy as np
    >>> mech = VerificationMechanism()
    >>> out = mech.run([1.0, 2.0], arrival_rate=3.0)
    >>> np.round(out.loads, 6)
    array([2., 1.])
    >>> out.realised_latency
    6.0

    On the paper's Table 1 system a truthful profile realises the
    headline optimum ``L = 78.43`` and every utility is non-negative
    (Theorem 3.2, voluntary participation):

    >>> from repro.experiments.table1 import TABLE1_TRUE_VALUES
    >>> out = mech.run(TABLE1_TRUE_VALUES, arrival_rate=20.0)
    >>> round(out.realised_latency, 2)
    78.43
    >>> bool((out.payments.utility >= 0.0).all())
    True

    Truthfulness (Theorem 3.1): a unilateral overbid can only lower an
    agent's utility:

    >>> truthful = mech.utility_of(0, 1.0, 1.0, [2.0], 3.0)
    >>> truthful
    12.0
    >>> truthful > mech.utility_of(0, 1.5, 1.0, [2.0], 3.0)
    True
    """

    uses_verification = True

    def __init__(self, compensation: str = "observed") -> None:
        if compensation not in _COMPENSATION_MODES:
            raise ValueError(
                f"compensation must be one of {_COMPENSATION_MODES}, got {compensation!r}"
            )
        self.compensation_mode = compensation

    # ------------------------------------------------------------ stages

    def allocate(self, bids: np.ndarray, arrival_rate: float) -> AllocationResult:
        """PR allocation on the declared slopes (Definition 3.3(i))."""
        return pr_allocation(bids, arrival_rate)

    def payments(
        self,
        allocation: AllocationResult,
        execution_values: np.ndarray,
    ) -> PaymentResult:
        """Compensation-and-bonus payments (Definition 3.3(ii)).

        Examples
        --------
        >>> import numpy as np
        >>> mech = VerificationMechanism()
        >>> alloc = mech.allocate(np.array([1.0, 2.0]), 3.0)
        >>> pay = mech.payments(alloc, np.array([1.0, 2.0]))
        >>> pay.compensation          # realised cost t̃_i x_i², repaid exactly
        array([4., 2.])
        >>> pay.bonus                 # L_{-i}* − L(x, t̃) = [18, 9] − 6
        array([12.,  3.])
        """
        with timed_section("mechanism.payments.seconds"):
            loads_sq = allocation.loads**2
            realised_latency = float(np.dot(execution_values, loads_sq))
            excluded = optimal_latency_excluding_each(
                allocation.bids, allocation.arrival_rate
            )

            if self.compensation_mode == "observed":
                compensation = execution_values * loads_sq
            else:
                compensation = allocation.bids * loads_sq

            bonus = excluded - realised_latency
            valuation = -execution_values * loads_sq
        return PaymentResult(
            compensation=compensation, bonus=bonus, valuation=valuation
        )

    # ------------------------------------------------------------ analysis

    def utility_of(
        self,
        agent: int,
        bid: float,
        execution_value: float,
        other_bids: np.ndarray,
        arrival_rate: float,
    ) -> float:
        """Utility of one agent for a candidate (bid, execution) pair.

        ``other_bids`` are the bids of the remaining agents, assumed to
        execute as declared.  This is the objective an individual agent
        would optimise when contemplating a deviation; the
        best-response machinery in :mod:`repro.agents` builds on it.
        """
        other_bids = np.asarray(other_bids, dtype=np.float64)
        bids = np.insert(other_bids, agent, bid)
        execution = np.insert(other_bids, agent, execution_value)
        outcome = self.run(bids, arrival_rate, execution)
        return float(outcome.payments.utility[agent])

    def __repr__(self) -> str:
        return f"VerificationMechanism(compensation={self.compensation_mode!r})"
