"""repro — A Load Balancing Mechanism with Verification.

A production-quality reproduction of Grosu & Chronopoulos,
*A Load Balancing Mechanism with Verification* (IPDPS/IPPS 2003):
truthful load balancing for heterogeneous distributed systems whose
machines are self-interested agents with linear load-dependent latency
functions.

Quick start
-----------
>>> import numpy as np
>>> from repro import VerificationMechanism, paper_cluster
>>> cluster = paper_cluster()
>>> mech = VerificationMechanism()
>>> outcome = mech.run(cluster.true_values, arrival_rate=20.0)
>>> round(outcome.realised_latency, 2)   # the paper's optimum
78.43

Package layout
--------------
* :mod:`repro.latency` — linear / M/M/1 / M/G/1 latency models;
* :mod:`repro.allocation` — the PR algorithm and general convex solvers;
* :mod:`repro.mechanism` — the verification mechanism and baselines
  (VCG, Archer–Tardos), plus property audits;
* :mod:`repro.agents` — strategic behaviours, best response, bidding games;
* :mod:`repro.system` — clusters, workloads, discrete-event simulation,
  queueing validation;
* :mod:`repro.protocol` — the centralised O(n)-message protocol with an
  execution-rate estimator (the verification step, made concrete);
* :mod:`repro.resilience` — the supervised multi-round loop: retries,
  quarantine, coordinator recovery, chaos testing;
* :mod:`repro.observability` — metrics, span tracing, and profiling
  hooks across all of the above (off by default);
* :mod:`repro.experiments` — the paper's Tables 1–2 and Figures 1–6;
* :mod:`repro.analysis` — degradation, frugality, sensitivity, and
  equilibrium analyses.
"""

from repro.types import AllocationResult, PaymentResult, MechanismOutcome
from repro.latency import (
    LatencyModel,
    LinearLatencyModel,
    MM1LatencyModel,
    MG1LatencyModel,
)
from repro.latency.affine import AffineLatencyModel
from repro.latency.kingman import KingmanLatencyModel
from repro.allocation import (
    pr_allocation,
    pr_loads,
    optimal_total_latency,
    optimal_latency_excluding_each,
    water_filling_allocation,
)
from repro.mechanism import (
    Mechanism,
    VerificationMechanism,
    VCGMechanism,
    ArcherTardosMechanism,
    MM1TruthfulMechanism,
    truthfulness_audit,
    voluntary_participation_margin,
)
from repro.agents import (
    TruthfulAgent,
    ManipulativeAgent,
    ScaledBidder,
    SlowExecutor,
    best_response,
    best_response_fast,
    BestResponseDynamics,
    BiddingGame,
)
from repro.system import Cluster, paper_cluster, random_cluster, grouped_cluster
from repro.protocol import run_horizon, run_protocol
from repro.analysis.wardrop import price_of_anarchy, wardrop_equilibrium
from repro.distributed import DistributedVerificationMechanism
from repro.dynamic import (
    GeometricRandomWalkDrift,
    RegimeSwitchDrift,
    RepeatedMechanismSimulation,
    drift_sweep,
)
from repro.experiments import (
    table1_configuration,
    PAPER_SCENARIOS,
    scenario_by_name,
    run_all_scenarios,
    figure1_data,
    figure2_data,
    figure345_data,
    figure6_data,
    figure6_truthful_structure,
)

__version__ = "1.10.0"

__all__ = [
    "AllocationResult",
    "PaymentResult",
    "MechanismOutcome",
    "LatencyModel",
    "LinearLatencyModel",
    "MM1LatencyModel",
    "MG1LatencyModel",
    "AffineLatencyModel",
    "KingmanLatencyModel",
    "pr_allocation",
    "pr_loads",
    "optimal_total_latency",
    "optimal_latency_excluding_each",
    "water_filling_allocation",
    "Mechanism",
    "VerificationMechanism",
    "VCGMechanism",
    "ArcherTardosMechanism",
    "MM1TruthfulMechanism",
    "truthfulness_audit",
    "voluntary_participation_margin",
    "TruthfulAgent",
    "ManipulativeAgent",
    "ScaledBidder",
    "SlowExecutor",
    "best_response",
    "best_response_fast",
    "BestResponseDynamics",
    "BiddingGame",
    "Cluster",
    "paper_cluster",
    "random_cluster",
    "grouped_cluster",
    "run_protocol",
    "run_horizon",
    "price_of_anarchy",
    "wardrop_equilibrium",
    "DistributedVerificationMechanism",
    "GeometricRandomWalkDrift",
    "RegimeSwitchDrift",
    "RepeatedMechanismSimulation",
    "drift_sweep",
    "table1_configuration",
    "PAPER_SCENARIOS",
    "scenario_by_name",
    "run_all_scenarios",
    "figure1_data",
    "figure2_data",
    "figure345_data",
    "figure6_data",
    "figure6_truthful_structure",
    "__version__",
]
