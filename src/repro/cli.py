"""Command-line interface: regenerate any paper artefact from a shell.

Installed as the ``repro`` console script (also ``python -m repro``)::

    repro table1                # Table 1 system configuration
    repro table2                # Table 2 experiment definitions
    repro figure 1              # Figure 1 rows (also 2..6)
    repro audit --variant declared
    repro protocol --duration 300 --liar low2
    repro multi-liar --max-liars 8
    repro poa --intercepts 1,0 --slopes 0.000001,1 --rate 1
    repro resilience --rounds 50 --machines 8 --seed 0
    repro remediate --scenario all --seed 0
    repro metrics --rounds 10 --machines 8 --chaos --json
    repro campaign --workers 4 --seeds 10 --cache-dir .repro-cache
    repro campaign --no-resume       # recompute, but refresh the cache
    repro tournament                 # verification vs VCG vs Archer-Tardos
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments import render_table, table1_configuration

    config = table1_configuration()
    rows = [[machines, value] for machines, value in config.groups]
    rows.append(["arrival rate R", config.arrival_rate])
    return render_table(
        ["computers", "true value (t)"], rows, title="Table 1. System configuration."
    )


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments import PAPER_SCENARIOS, render_table

    rows = [
        [s.name, f"{s.bid_factor:g}*t1", f"{s.execution_factor:g}*t1", s.characterization]
        for s in PAPER_SCENARIOS
    ]
    return render_table(
        ["experiment", "bid", "execution", "characterization"],
        rows,
        title="Table 2. Types of experiments.",
    )


def _cmd_figure(args: argparse.Namespace) -> str:
    from repro.experiments import (
        figure1_data,
        figure2_data,
        figure345_data,
        figure6_data,
        render_table,
        table1_configuration,
    )

    number = args.number
    if number == 1:
        data = figure1_data()
        optimum = data["True1"]
        rows = [[k, v, 100 * (v / optimum - 1)] for k, v in data.items()]
        return render_table(
            ["experiment", "total latency", "degradation %"],
            rows,
            title="Figure 1. Performance degradation.",
        )
    if number == 2:
        data = figure2_data()
        rows = [[k, p, u] for k, (p, u) in data.items()]
        return render_table(
            ["experiment", "C1 payment", "C1 utility"],
            rows,
            title="Figure 2. Payment and utility for computer C1.",
        )
    if number in (3, 4, 5):
        scenario = {3: "True1", 4: "High1", 5: "Low1"}[number]
        data = figure345_data(scenario)
        names = table1_configuration().cluster.names
        rows = [
            [names[i], data["payment"][i], data["utility"][i]]
            for i in range(len(names))
        ]
        return render_table(
            ["computer", "payment", "utility"],
            rows,
            title=f"Figure {number}. Payment and utility per computer ({scenario}).",
        )
    if number == 6:
        data = figure6_data()
        rows = [
            [k, row["total_payment"], row["total_valuation"], row["ratio"]]
            for k, row in data.items()
        ]
        return render_table(
            ["experiment", "total payment", "total |valuation|", "ratio"],
            rows,
            title="Figure 6. Payment structure.",
        )
    raise SystemExit(f"unknown figure number {number}; expected 1..6")


_VARIANTS = ("observed", "declared", "vcg", "archer-tardos")
# The campaign additionally offers closed-form best-response dynamics
# (kernel-driven; see repro.agents.game.BestResponseDynamics) and
# stale-bid drift sweeps (repro.dynamic.drift.drift_sweep).
_CAMPAIGN_VARIANTS = _VARIANTS + ("dynamics", "drift")


def _mechanism_for(variant: str):
    from repro.mechanism import (
        ArcherTardosMechanism,
        VCGMechanism,
        VerificationMechanism,
    )

    if variant in ("observed", "declared"):
        return VerificationMechanism(variant)
    if variant == "vcg":
        return VCGMechanism()
    return ArcherTardosMechanism()


def _cluster_values(config_path: str | None):
    "'True values from a cluster config file, or the paper's Table 1.'"
    if config_path is None:
        from repro.experiments import table1_configuration

        return table1_configuration().cluster.true_values
    from repro.system.configio import load_cluster

    return load_cluster(config_path).true_values


def _cmd_audit(args: argparse.Namespace) -> str:
    from repro.experiments import render_table
    from repro.mechanism import truthfulness_audit, voluntary_participation_margin

    mechanism = _mechanism_for(args.variant)
    t = _cluster_values(args.config)[: args.machines]
    exec_factors = (1.0,) if not mechanism.uses_verification else (1.0, 1.5, 2.0, 3.0)
    report = truthfulness_audit(mechanism, t, args.rate, exec_factors=exec_factors)
    margin = voluntary_participation_margin(mechanism, t, args.rate)

    worst = report.worst()
    rows = [
        ["truthful", "yes" if report.is_truthful else "NO"],
        ["max deviation gain", f"{report.max_gain:.6g}"],
        ["worst deviating agent", worst.agent],
        ["its best bid", f"{worst.best_bid:.4g} (true {t[worst.agent]:g})"],
        ["VP margin (min truthful utility)", f"{margin:.6g}"],
    ]
    return render_table(
        ["property", "value"],
        rows,
        title=f"Truthfulness audit: {args.variant} mechanism, "
        f"{args.machines} machines, R={args.rate:g}.",
    )


_LIARS = {
    "none": (1.0, 1.0),
    "true2": (1.0, 2.0),
    "high1": (3.0, 3.0),
    "low1": (0.5, 1.0),
    "low2": (0.5, 2.0),
}


def _cmd_protocol(args: argparse.Namespace) -> str:
    from repro.agents import ManipulativeAgent, TruthfulAgent
    from repro.experiments import render_table, table1_configuration
    from repro.protocol import run_protocol

    config = table1_configuration()
    agents = [TruthfulAgent(t) for t in config.cluster.true_values]
    bid_factor, exec_factor = _LIARS[args.liar]
    if args.liar != "none":
        agents[0] = ManipulativeAgent(
            config.cluster.true_values[0], bid_factor, exec_factor
        )

    result = run_protocol(
        agents,
        config.arrival_rate,
        duration=args.duration,
        rng=np.random.default_rng(args.seed),
        drop_probability=args.drop,
        execution=args.execution,
    )
    rows = [
        ["jobs routed", result.jobs_routed],
        ["control messages", result.network.total_messages],
        ["realised latency", f"{result.outcome.realised_latency:.2f}"],
        ["C1 estimated t̃", f"{result.estimated_execution_values[0]:.3f}"],
        ["C1 utility", f"{float(result.outcome.payments.utility[0]):.2f}"],
        ["mean estimation error %",
         f"{100 * float(result.estimation_relative_error.mean()):.2f}"],
    ]
    return render_table(
        ["quantity", "value"],
        rows,
        title=f"Simulated protocol round (liar={args.liar}, duration={args.duration:g}s).",
    )


def _cmd_multi_liar(args: argparse.Namespace) -> str:
    from repro.analysis import multi_liar_degradation
    from repro.experiments import render_table, table1_configuration

    config = table1_configuration()
    degradations = multi_liar_degradation(
        config.cluster.true_values,
        config.arrival_rate,
        bid_factor=args.bid_factor,
        execution_factor=args.execution_factor,
        max_liars=args.max_liars,
    )
    rows = [[k, degradations[k]] for k in range(len(degradations))]
    return render_table(
        ["liars", "degradation %"],
        rows,
        title=f"Multi-liar degradation (bid x{args.bid_factor:g}, "
        f"execution x{args.execution_factor:g}).",
    )


def _cmd_poa(args: argparse.Namespace) -> str:
    from repro.analysis.wardrop import price_of_anarchy
    from repro.experiments import render_table
    from repro.latency.affine import AffineLatencyModel

    intercepts = [float(v) for v in args.intercepts.split(",")]
    slopes = [float(v) for v in args.slopes.split(",")]
    model = AffineLatencyModel(intercepts, slopes)
    result = price_of_anarchy(model, args.rate)
    rows = [
        ["price of anarchy", f"{result.price_of_anarchy:.6f}"],
        ["equilibrium latency L", f"{result.equilibrium.total_latency:.6f}"],
        ["optimal latency L*", f"{result.optimum.total_latency:.6f}"],
        ["common per-job latency", f"{result.common_latency:.6f}"],
    ]
    return render_table(
        ["quantity", "value"],
        rows,
        title="Selfish routing (Wardrop) vs system optimum.",
    )


def _cmd_resilience(args: argparse.Namespace) -> str:
    from repro.agents import TruthfulAgent
    from repro.experiments import render_table, table1_configuration
    from repro.resilience import ChaosHarness, FaultPlan, RoundSupervisor

    config = table1_configuration()
    true_values = config.cluster.true_values[: args.machines]
    supervisor = RoundSupervisor(
        [TruthfulAgent(t) for t in true_values],
        config.arrival_rate,
        duration=args.duration,
        rng=np.random.default_rng(args.seed),
    )
    plan = FaultPlan.generate(
        args.rounds, supervisor.machine_names, seed=args.seed
    )
    report = ChaosHarness(
        supervisor, plan, stop_on_violation=not args.keep_going
    ).run()

    completed = [r for r in report.rounds if not r.voided]
    rows = [
        ["rounds driven", report.n_rounds],
        ["rounds voided", report.n_voided],
        ["machine faults injected", plan.n_machine_faults],
        ["coordinator crashes injected", plan.n_coordinator_crashes],
        ["coordinator restarts survived", report.n_coordinator_restarts],
        ["bid retries issued", sum(r.bid_retries for r in report.rounds)],
        ["report retries issued", sum(r.report_retries for r in report.rounds)],
        ["CUSUM slowdown alerts", report.n_alerts],
        ["rounds with quarantined machines", report.n_quarantine_events],
        ["jobs routed", sum(r.jobs_routed for r in report.rounds)],
        ["invariant violations", len(report.violations)],
    ]
    if completed:
        mean_latency = sum(
            r.outcome.realised_latency for r in completed
        ) / len(completed)
        rows.insert(1, ["mean realised latency", f"{mean_latency:.2f}"])
    table = render_table(
        ["quantity", "value"],
        rows,
        title=f"Chaos campaign: {args.rounds} supervised rounds, "
        f"{len(true_values)} machines, seed {args.seed}.",
    )
    if report.violations:
        table += "\n\nINVARIANT VIOLATIONS:\n" + "\n".join(
            f"  {v}" for v in report.violations
        )
    return table


def _cmd_remediate(args: argparse.Namespace) -> str:
    import json

    from repro.experiments import render_table
    from repro.remediation import default_scenarios, measure_mttr

    scenarios = default_scenarios()
    if args.scenario != "all":
        scenarios = [s for s in scenarios if s.name == args.scenario]
        if not scenarios:
            known = ", ".join(s.name for s in default_scenarios())
            raise ValueError(
                f"unknown scenario {args.scenario!r}; known: {known} (or 'all')"
            )
    comparison = measure_mttr(scenarios, seed=args.seed)

    if args.json:
        return json.dumps(
            {
                "mttr_on_rounds": comparison.mttr_on,
                "mttr_off_rounds": comparison.mttr_off,
                "improvement": comparison.improvement,
                "violations_from_actions": comparison.violations_from_actions,
                "scenarios": [
                    {
                        "name": on.scenario,
                        "mttr_on": on.mttr_rounds,
                        "mttr_off": off.mttr_rounds,
                        "recovery_round_on": on.recovery_round,
                        "recovery_round_off": off.recovery_round,
                        "actions_applied": on.actions_applied,
                        "actions_rejected": on.actions_rejected,
                        "violations_on": on.violations,
                        "violations_off": off.violations,
                    }
                    for on, off in zip(comparison.runs_on, comparison.runs_off)
                ],
            },
            indent=2,
            sort_keys=True,
        )

    rows = [
        [
            on.scenario,
            f"{off.mttr_rounds:g}",
            f"{on.mttr_rounds:g}",
            on.actions_applied,
            on.actions_rejected,
            on.violations,
        ]
        for on, off in zip(comparison.runs_on, comparison.runs_off)
    ]
    table = render_table(
        ["scenario", "MTTR off", "MTTR on", "applied", "rejected", "violations"],
        rows,
        title=f"Auto-remediation MTTR (rounds to recovery), seed {args.seed}.",
    )
    table += (
        f"\n\nMean MTTR: {comparison.mttr_off:g} rounds without remediation, "
        f"{comparison.mttr_on:g} with ({comparison.improvement:.1f}x faster); "
        f"{comparison.violations_from_actions} invariant violations from "
        f"applied actions."
    )
    return table


def _fmt_seconds(value: float | None) -> str:
    """Render a seconds value for the span table (µs precision)."""
    return "-" if value is None else f"{value * 1e6:,.0f}µs"


def _cmd_metrics(args: argparse.Namespace) -> str:
    import json

    from repro.agents import TruthfulAgent
    from repro.experiments import render_table, table1_configuration
    from repro.observability import instrumented
    from repro.observability.metrics import format_series
    from repro.resilience import ChaosHarness, FaultPlan, RoundSupervisor

    config = table1_configuration()
    true_values = config.cluster.true_values[: args.machines]
    supervisor = RoundSupervisor(
        [TruthfulAgent(t) for t in true_values],
        config.arrival_rate,
        duration=args.duration,
        rng=np.random.default_rng(args.seed),
        horizon=args.horizon,
    )
    with instrumented() as instr:
        if args.campaign:
            # Run the Figures campaign twice against a scratch cache so
            # the campaign.cache.{hits,misses} counters and the
            # campaign.unit.seconds histogram are populated: first run
            # all misses, second run all hits.
            import tempfile

            from repro.parallel import CampaignEngine, figures_campaign_units

            units = figures_campaign_units(
                config, seeds=(args.seed,), duration=min(args.duration, 50.0)
            )
            with tempfile.TemporaryDirectory() as cache_dir:
                CampaignEngine(workers=0, cache=cache_dir).run(units)
                CampaignEngine(workers=0, cache=cache_dir).run(units)
        elif args.horizon:
            # supervisor.run() routes through the fused engine; a chaos
            # plan forces de-fusion boundaries so both horizon counters
            # show up in the report.
            plan = (
                FaultPlan.generate(
                    args.rounds, supervisor.machine_names, seed=args.seed
                )
                if args.chaos
                else None
            )
            supervisor.run(args.rounds, plan)
        elif args.chaos:
            plan = FaultPlan.generate(
                args.rounds, supervisor.machine_names, seed=args.seed
            )
            ChaosHarness(supervisor, plan, stop_on_violation=False).run()
        else:
            supervisor.run(args.rounds)

    exported = None
    if args.trace is not None:
        exported = instr.tracer.export_jsonl(args.trace)

    # The circuit breaker's end state is part of the story a metrics
    # run tells (which machines ended quarantined and why), but lives
    # on the supervisor, not in the instrumentation snapshot.
    quarantine_rows = []
    if not args.campaign:
        for name in supervisor.quarantine.machine_names:
            health = supervisor.quarantine.health_of(name)
            quarantine_rows.append(
                [
                    name,
                    health.state.value,
                    f"{health.reputation:.3f}",
                    health.cooldown_remaining,
                    health.failures_total,
                    health.times_opened,
                ]
            )

    if args.json:
        payload = instr.snapshot()
        if not args.campaign:
            payload["quarantine"] = {
                name: {
                    "state": supervisor.quarantine.health_of(name).state.value,
                    "reputation": supervisor.quarantine.health_of(name).reputation,
                    "cooldown_remaining": (
                        supervisor.quarantine.health_of(name).cooldown_remaining
                    ),
                    "failures_total": (
                        supervisor.quarantine.health_of(name).failures_total
                    ),
                    "times_opened": (
                        supervisor.quarantine.health_of(name).times_opened
                    ),
                }
                for name in supervisor.quarantine.machine_names
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    spans = instr.tracer.summary()
    span_rows = [
        [
            name,
            stats["count"],
            _fmt_seconds(stats["p50"]),
            _fmt_seconds(stats["p95"]),
            _fmt_seconds(stats["p99"]),
            _fmt_seconds(stats["max"]),
        ]
        for name, stats in spans.items()
    ]
    snapshot = instr.metrics.snapshot()
    counter_rows = [
        [format_series(c["name"], tuple(sorted(c["labels"].items()))), f"{c['value']:g}"]
        for c in snapshot["counters"]
    ]
    gauge_rows = [
        [format_series(g["name"], tuple(sorted(g["labels"].items()))), f"{g['value']:g}"]
        for g in snapshot["gauges"]
    ]
    histogram_rows = [
        [
            format_series(h["name"], tuple(sorted(h["labels"].items()))),
            h["count"],
            _fmt_seconds(h["p50"]) if h["name"].endswith(".seconds") else f"{h['p50']:g}",
            _fmt_seconds(h["p95"]) if h["name"].endswith(".seconds") else f"{h['p95']:g}",
            _fmt_seconds(h["max"]) if h["name"].endswith(".seconds") else f"{h['max']:g}",
        ]
        for h in snapshot["histograms"]
        if h["count"]
    ]

    if args.campaign:
        workload = "figures campaign x2 (cold then warm cache)"
    elif args.horizon:
        workload = f"{args.rounds} horizon-fused rounds" + (
            " under a chaos plan" if args.chaos else ""
        )
    elif args.chaos:
        workload = f"{args.rounds} chaos campaign"
    else:
        workload = f"{args.rounds} supervised rounds"
    parts = [
        render_table(
            ["span", "count", "p50", "p95", "p99", "max"],
            span_rows,
            title=f"Span timings: {workload}, "
            f"{len(true_values)} machines, seed {args.seed}.",
        ),
        render_table(["counter", "value"], counter_rows, title="Counters."),
    ]
    if gauge_rows:
        parts.append(render_table(["gauge", "value"], gauge_rows, title="Gauges."))
    if quarantine_rows:
        events_skipped = next(
            (
                g["value"]
                for g in snapshot["gauges"]
                if g["name"] == "protocol.events_skipped"
            ),
            0.0,
        )
        parts.append(
            render_table(
                ["machine", "state", "reputation", "cooldown", "failures", "opened"],
                quarantine_rows,
                title="Quarantine circuit states (end of run).",
            )
        )
        parts.append(
            f"Batched engine events skipped (last round): {events_skipped:g}."
        )
    if histogram_rows:
        parts.append(
            render_table(
                ["histogram", "count", "p50", "p95", "max"],
                histogram_rows,
                title="Histograms.",
            )
        )
    if exported is not None:
        parts.append(f"Exported {exported} spans to {args.trace}.")
    if instr.tracer.dropped:
        parts.append(f"WARNING: {instr.tracer.dropped} spans dropped (max_spans).")
    return "\n\n".join(parts)


def _fmt_unit_seconds(value: float) -> str:
    """Per-unit latency for the campaign summary (ms precision)."""
    return "-" if value != value else f"{value * 1e3:,.2f}ms"  # nan check


def _cmd_serve(args: argparse.Namespace) -> str:
    import json

    from repro.agents import TruthfulAgent
    from repro.distributed import ShardedCoordinatorService
    from repro.experiments import render_table, table1_configuration

    if args.machines < 1:
        raise ValueError(f"--machines must be >= 1, got {args.machines}")
    if args.shards < 1 or args.shards > args.machines:
        raise ValueError(
            f"--shards must be in 1..{args.machines}, got {args.shards}"
        )
    if args.rounds < 1:
        raise ValueError(f"--rounds must be >= 1, got {args.rounds}")
    config = table1_configuration()
    # Tile the paper's 16-machine cluster out to the requested size so
    # any --machines value keeps the paper's heterogeneity profile.
    base = config.cluster.true_values
    true_values = np.tile(base, (args.machines + base.size - 1) // base.size)
    true_values = true_values[: args.machines]

    service = ShardedCoordinatorService(
        [TruthfulAgent(t) for t in true_values],
        args.rate,
        shards=args.shards,
        duration=args.duration,
        aggregation=args.aggregation,
        workload=args.workload,
        executor=args.executor,
        rng=np.random.default_rng(args.seed),
    )
    try:
        results = service.run(args.rounds)
    finally:
        service.close()

    summaries = [
        {
            "round": r.index,
            "jobs_routed": r.jobs_routed,
            "simulated_time": r.simulated_time,
            "total_payment": sum(a[0] for a in r.payments.values()),
            "cross_shard_messages": r.total_messages,
            "alerts": r.alerts,
            "shard_restarts": r.shard_restarts,
            "realised_latency": (
                None if r.outcome is None else float(r.outcome.realised_latency)
            ),
        }
        for r in results
    ]
    if args.json:
        return json.dumps(
            {
                "machines": int(args.machines),
                "shards": int(args.shards),
                "executor": args.executor,
                "aggregation": args.aggregation,
                "workload": args.workload,
                "rounds": summaries,
            },
            indent=2,
            sort_keys=True,
        )
    rows = [
        [
            s["round"],
            s["jobs_routed"],
            "-" if s["realised_latency"] is None else f"{s['realised_latency']:.2f}",
            f"{s['total_payment']:.2f}",
            s["cross_shard_messages"],
            s["shard_restarts"],
        ]
        for s in summaries
    ]
    return render_table(
        ["round", "jobs", "latency", "payments", "messages", "restarts"],
        rows,
        title=f"Sharded service: {args.machines} machines over "
        f"{args.shards} shards ({args.executor}/{args.aggregation}), "
        f"seed {args.seed}.",
    )


def _cmd_horizon(args: argparse.Namespace) -> str:
    import json

    from repro.agents import TruthfulAgent
    from repro.experiments import render_table, table1_configuration
    from repro.observability import instrumented
    from repro.resilience import FaultPlan, RoundSupervisor
    from repro.system.workload import (
        PiecewiseConstantSchedule,
        SinusoidalSchedule,
    )

    if args.rounds < 1:
        raise ValueError(f"--rounds must be >= 1, got {args.rounds}")
    config = table1_configuration()
    true_values = config.cluster.true_values[: args.machines]
    rate = config.arrival_rate
    horizon_seconds = args.rounds * args.duration
    if args.schedule == "sinusoidal":
        schedule = SinusoidalSchedule(
            rate, amplitude=0.5, period=max(horizon_seconds / 4.0, args.duration)
        )
    elif args.schedule == "piecewise":
        schedule = PiecewiseConstantSchedule(
            [0.0, horizon_seconds / 3.0, 2.0 * horizon_seconds / 3.0],
            [0.75 * rate, 1.5 * rate, rate],
        )
    else:
        schedule = None
    supervisor = RoundSupervisor(
        [TruthfulAgent(t) for t in true_values],
        rate,
        duration=args.duration,
        rng=np.random.default_rng(args.seed),
        arrival_schedule=schedule,
        horizon=True,
    )
    plan = (
        FaultPlan.generate(args.rounds, supervisor.machine_names, seed=args.seed)
        if args.chaos
        else None
    )
    with instrumented() as instr:
        report = supervisor.run(args.rounds, plan)

    counters = {
        c["name"]: c["value"] for c in instr.metrics.snapshot()["counters"]
    }
    live = [r for r in report.rounds if not r.voided]
    rates = [r.arrival_rate for r in report.rounds]
    summary = {
        "rounds": report.n_rounds,
        "voided": report.n_voided,
        "fused_rounds": int(counters.get("horizon.fused.rounds", 0)),
        "defused_boundaries": int(
            counters.get("horizon.defused.boundaries", 0)
        ),
        "jobs_routed": int(sum(r.jobs_routed for r in report.rounds)),
        "alert_rounds": sum(1 for r in report.rounds if r.alerts),
        "schedule": args.schedule,
        "mean_round_rate": float(np.mean(rates)),
        "min_round_rate": float(np.min(rates)),
        "max_round_rate": float(np.max(rates)),
        "mean_declared_latency": float(
            np.mean([r.outcome.allocation.total_latency for r in live])
        )
        if live
        else None,
    }
    if args.json:
        return json.dumps(summary, indent=2, sort_keys=True)
    rows = [[key, f"{value:g}" if isinstance(value, float) else value]
            for key, value in summary.items()]
    return render_table(
        ["quantity", "value"],
        rows,
        title=f"Horizon-fused run: {args.rounds} rounds, "
        f"{len(true_values)} machines, {args.schedule} schedule, "
        f"seed {args.seed}" + (", chaos plan" if args.chaos else "") + ".",
    )


def _cmd_campaign(args: argparse.Namespace) -> str:
    import json

    from repro.experiments import render_table, table1_configuration
    from repro.observability import instrumented
    from repro.parallel import (
        CampaignEngine,
        figures_campaign_units,
        records_from_campaign,
    )

    if args.seeds < 0:
        raise ValueError(f"--seeds must be >= 0, got {args.seeds}")
    if args.variant in ("dynamics", "drift") and args.seeds:
        raise ValueError(
            f"--variant {args.variant} is closed-form only; drop --seeds"
        )
    if args.duration <= 0:
        raise ValueError(f"--duration must be positive, got {args.duration}")
    if args.shards < 1:
        raise ValueError(f"--shards must be >= 1, got {args.shards}")
    config = table1_configuration()
    units = figures_campaign_units(
        config,
        seeds=tuple(range(args.seeds)),
        duration=args.duration,
        variant=args.variant,
        shards=args.shards,
    )
    if args.variant == "drift":
        from dataclasses import replace

        units = [
            replace(
                unit,
                drift_rounds=args.drift_rounds,
                drift_sigma=args.drift_sigma,
            )
            for unit in units
        ]
    engine = CampaignEngine(
        workers=args.workers,
        cache=None if args.no_cache else args.cache_dir,
        reuse_cache=args.resume,
        fuse=args.fuse,
    )
    with instrumented() as instr:
        result = engine.run(units)

    if args.trace is not None:
        result.export_worker_spans(args.trace)

    stats = result.stats
    if args.json:
        return json.dumps(
            {
                "n_units": stats.n_units,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "hit_rate": stats.hit_rate,
                "workers": stats.workers,
                "chunks": stats.chunks,
                "fuse": args.fuse,
                "fused_cohorts": stats.fused_cohorts,
                "fused_units": stats.fused_units,
                "fallback_units": stats.fallback_units,
                "wall_seconds": stats.wall_seconds,
                "computed_seconds": stats.computed_seconds,
                "keys": list(result.keys),
                "payloads": [dict(p) for p in result.payloads],
            },
            indent=2,
            sort_keys=True,
        )

    cache_note = (
        "disabled" if args.no_cache
        else f"{args.cache_dir} ({'resume' if args.resume else 'refresh'})"
    )
    rows = [
        ["units", stats.n_units],
        ["cache hits / misses", f"{stats.cache_hits} / {stats.cache_misses}"],
        ["hit rate", f"{100 * stats.hit_rate:.1f}%"],
        ["workers", stats.workers],
        ["chunks dispatched", stats.chunks],
        ["fusion", f"{args.fuse}: {stats.fused_cohorts} cohort(s), "
         f"{stats.fused_units} fused / {stats.fallback_units} fallback"],
        ["wall-clock", f"{stats.wall_seconds:.3f}s"],
        ["compute time (all workers)", f"{stats.computed_seconds:.3f}s"],
        ["unit latency p50", _fmt_unit_seconds(stats.unit_p50)],
        ["unit latency p95", _fmt_unit_seconds(stats.unit_p95)],
        ["cache", cache_note],
    ]
    parts = [
        render_table(
            ["quantity", "value"],
            rows,
            title=f"Campaign: 8 scenarios + {args.seeds} protocol seed(s) "
            f"x 8, variant={args.variant}.",
        )
    ]

    if args.variant == "drift":
        # Drift payloads summarise whole horizons, not single-round
        # mechanism outcomes, so the Figure-1 record shape (and its
        # shared optimum) does not apply.
        parts.append(
            render_table(
                ["experiment", "mean degr %", "max degr %", "max BR gain"],
                [
                    [
                        unit.scenario,
                        f"{payload['mean_degradation_pct']:.2f}",
                        f"{payload['max_degradation_pct']:.2f}",
                        f"{payload['max_gain']:.4f}",
                    ]
                    for unit, payload in zip(units, result.payloads)
                ],
                title=f"Stale-bid drift sweeps: {args.drift_rounds} rounds "
                f"at sigma={args.drift_sigma:g}, seed-reproducible.",
            )
        )
    else:
        records = records_from_campaign(result)
        optimum = records[0].total_latency  # True1
        parts.append(
            render_table(
                ["experiment", "total latency", "degradation %"],
                [
                    [r.scenario.name, r.total_latency,
                     r.degradation_percent(optimum)]
                    for r in records
                ],
                title="Closed-form scenario results (Figure 1 series).",
            )
        )
    if args.trace is not None:
        parts.append(
            f"Exported {len(result.worker_spans)} worker spans to {args.trace}."
        )
    return "\n\n".join(parts)


def _cmd_tournament(args: argparse.Namespace) -> str:
    import json

    from repro.experiments import render_table
    from repro.experiments.tournament import run_tournament
    from repro.parallel import CampaignEngine

    engine = CampaignEngine(
        workers=args.workers,
        cache=None if args.cache_dir is None else args.cache_dir,
        fuse=args.fuse,
    )
    result = run_tournament(engine, dynamics=args.dynamics)

    if args.json:
        return json.dumps(result.to_json(), indent=2, sort_keys=True)

    parts = [
        render_table(
            ["mechanism", "frugality", "worst degr %", "indiv. gain",
             "collusion wins", "eq. degr %"],
            [
                [
                    s["mechanism"],
                    f"{s['truthful_frugality_ratio']:.3f}",
                    f"{s['worst_degradation_percent']:.2f}",
                    f"{s['max_individual_gain']:.3f}",
                    f"{s['profitable_collusion_patterns']}",
                    "-" if s["equilibrium_degradation_percent"] is None
                    else f"{s['equilibrium_degradation_percent']:.2f}",
                ]
                for s in result.standings()
            ],
            title="Tournament standings: all payment rules, all liars.",
        )
    ]
    worst = [
        [r.mechanism, r.pattern, f"{r.degradation_percent:.2f}",
         f"{r.robustness_gain:+.3f}", "yes" if r.profitable else "no"]
        for r in sorted(
            (r for r in result.rows if r.pattern_kind != "truthful"),
            key=lambda r: r.robustness_gain,
            reverse=True,
        )[: args.top]
    ]
    parts.append(
        render_table(
            ["mechanism", "pattern", "degradation %", "coalition gain",
             "profitable"],
            worst,
            title=f"Top {args.top} manipulations by coalition gain.",
        )
    )
    return "\n\n".join(parts)


def _cmd_reproduce(args: argparse.Namespace) -> str:
    from repro.experiments import reproduce_all
    from repro.parallel import CampaignEngine

    engine = CampaignEngine(
        workers=args.workers,
        cache=args.cache_dir,
    )
    bundle = reproduce_all(args.output, engine=engine)
    status = "all claims PASS" if bundle.all_claims_pass else "FAILURES present"
    lines = [f"wrote {len(bundle.files_written)} files to {bundle.output_dir} ({status}):"]
    lines += [f"  {name}" for name in bundle.files_written]
    return "\n".join(lines)


def _cmd_landscape(args: argparse.Namespace) -> str:
    import numpy as np

    from repro.analysis.landscape import utility_landscape
    from repro.experiments import table1_configuration

    mechanism = _mechanism_for(args.variant)
    config = table1_configuration()
    landscape = utility_landscape(
        mechanism,
        config.cluster.true_values,
        config.arrival_rate,
        args.agent,
        bid_factors=np.geomspace(0.25, 4.0, 9),
        exec_factors=np.linspace(1.0, 3.0, 5),
    )
    bid_at_max, exec_at_max = landscape.argmax
    header = (
        f"Utility landscape of machine C{args.agent + 1} "
        f"({args.variant} mechanism); max at bid {bid_at_max:g}x, "
        f"execution {exec_at_max:g}x.\n"
    )
    return header + landscape.render(width=5)


def _cmd_verify(args: argparse.Namespace) -> str:
    from repro.experiments import render_table, verify_reproduction

    report = verify_reproduction()
    rows = [
        ["PASS" if check.passed else "FAIL", check.claim, check.paper_value, check.measured]
        for check in report.checks
    ]
    table = render_table(
        ["status", "claim", "paper", "measured"],
        rows,
        title=f"Reproduction report: {report.n_passed}/{len(report.checks)} claims pass.",
    )
    if not report.all_passed:
        table += "\n\nFAILURES PRESENT — see rows marked FAIL."
    return table


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'A Load Balancing Mechanism with Verification' (IPDPS 2003).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 system configuration").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("table2", help="Table 2 experiment definitions").set_defaults(
        func=_cmd_table2
    )

    figure = sub.add_parser("figure", help="regenerate one figure's rows")
    figure.add_argument("number", type=int, choices=range(1, 7))
    figure.set_defaults(func=_cmd_figure)

    audit = sub.add_parser("audit", help="truthfulness / VP audit")
    audit.add_argument("--variant", choices=_VARIANTS, default="observed")
    audit.add_argument("--machines", type=int, default=6)
    audit.add_argument("--rate", type=float, default=10.0)
    audit.add_argument(
        "--config", default=None,
        help="cluster config JSON (defaults to the paper's Table 1)",
    )
    audit.set_defaults(func=_cmd_audit)

    protocol = sub.add_parser("protocol", help="simulate one protocol round")
    protocol.add_argument("--duration", type=float, default=200.0)
    protocol.add_argument("--seed", type=int, default=0)
    protocol.add_argument("--liar", choices=sorted(_LIARS), default="none")
    protocol.add_argument(
        "--drop", type=float, default=0.0,
        help="per-transmission message loss probability (uses reliable delivery)",
    )
    protocol.add_argument(
        "--execution", choices=("event", "batched", "auto"), default="auto",
        help="job execution engine (auto picks the batched fast path)",
    )
    protocol.set_defaults(func=_cmd_protocol)

    multi = sub.add_parser("multi-liar", help="multi-liar degradation (A1)")
    multi.add_argument("--bid-factor", type=float, default=0.5)
    multi.add_argument("--execution-factor", type=float, default=2.0)
    multi.add_argument("--max-liars", type=int, default=8)
    multi.set_defaults(func=_cmd_multi_liar)

    poa = sub.add_parser("poa", help="Wardrop equilibrium / price of anarchy")
    poa.add_argument("--intercepts", default="1,0")
    poa.add_argument("--slopes", default="0.000001,1")
    poa.add_argument("--rate", type=float, default=1.0)
    poa.set_defaults(func=_cmd_poa)

    resilience = sub.add_parser(
        "resilience", help="run a seeded chaos campaign over the supervised loop"
    )
    resilience.add_argument("--rounds", type=int, default=20)
    resilience.add_argument("--machines", type=int, default=8)
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--duration", type=float, default=40.0,
        help="job-generation window per round (simulated seconds)",
    )
    resilience.add_argument(
        "--keep-going", action="store_true",
        help="collect invariant violations instead of stopping at the first",
    )
    resilience.set_defaults(func=_cmd_resilience)

    metrics = sub.add_parser(
        "metrics", help="run a supervised workload and report metrics + span timings"
    )
    metrics.add_argument("--rounds", type=int, default=10)
    metrics.add_argument("--machines", type=int, default=8)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--duration", type=float, default=40.0,
        help="job-generation window per round (simulated seconds)",
    )
    metrics.add_argument(
        "--chaos", action="store_true",
        help="inject a seeded fault plan (faults appear as span annotations)",
    )
    metrics.add_argument(
        "--horizon", action="store_true",
        help="drive the rounds through the horizon-fused engine so the "
        "horizon.fused.rounds / horizon.defused.boundaries counters are "
        "populated (combine with --chaos to force de-fusion boundaries)",
    )
    metrics.add_argument(
        "--campaign", action="store_true",
        help="instrument a figures campaign run twice against a scratch "
        "cache (cold then warm) so the campaign.cache.hits/misses "
        "counters and unit-latency histogram are visible",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="emit the full snapshot (counters/gauges/histograms/spans) as JSON",
    )
    metrics.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also export every finished span as JSON Lines to FILE",
    )
    metrics.set_defaults(func=_cmd_metrics)

    remediate = sub.add_parser(
        "remediate",
        help="measure auto-remediation MTTR on seeded degradation scenarios",
    )
    remediate.add_argument(
        "--scenario", default="all",
        help="one scenario name from the A23 suite, or 'all' (default)",
    )
    remediate.add_argument("--seed", type=int, default=0)
    remediate.add_argument(
        "--json", action="store_true",
        help="emit the per-scenario MTTR comparison as JSON",
    )
    remediate.set_defaults(func=_cmd_remediate)

    verify = sub.add_parser("verify", help="check every recoverable paper claim")
    verify.set_defaults(func=_cmd_verify)

    landscape = sub.add_parser(
        "landscape", help="ASCII utility landscape over (bid, execution) deviations"
    )
    landscape.add_argument("--agent", type=int, default=0)
    landscape.add_argument(
        "--variant", choices=("observed", "declared"), default="observed"
    )
    landscape.set_defaults(func=_cmd_landscape)

    reproduce = sub.add_parser(
        "reproduce", help="write the full table/figure/report bundle to a directory"
    )
    reproduce.add_argument("--output", default="reproduction")
    reproduce.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the scenario campaign (0 = in-process)",
    )
    reproduce.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache for the campaign (default: none)",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    horizon = sub.add_parser(
        "horizon",
        help="run a multi-round horizon through the fused engine "
        "(optionally nonstationary and/or chaotic)",
    )
    horizon.add_argument("--rounds", type=int, default=200)
    horizon.add_argument("--machines", type=int, default=8)
    horizon.add_argument("--seed", type=int, default=0)
    horizon.add_argument(
        "--duration", type=float, default=40.0,
        help="job-generation window per round (simulated seconds)",
    )
    horizon.add_argument(
        "--schedule", choices=("constant", "piecewise", "sinusoidal"),
        default="constant",
        help="arrival-rate schedule R(t) over the horizon (constant keeps "
        "the stationary Table 1 rate)",
    )
    horizon.add_argument(
        "--chaos", action="store_true",
        help="inject a seeded fault plan (every faulted round de-fuses to "
        "the sequential path)",
    )
    horizon.add_argument(
        "--json", action="store_true",
        help="emit the horizon summary as JSON",
    )
    horizon.set_defaults(func=_cmd_horizon)

    campaign = sub.add_parser(
        "campaign",
        help="run the figures campaign through the parallel engine + cache",
    )
    campaign.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 or 1 = in-process, deterministic either way)",
    )
    campaign.add_argument(
        "--seeds", type=int, default=0, metavar="N",
        help="protocol replications per scenario (seeds 0..N-1; default 0)",
    )
    campaign.add_argument(
        "--duration", type=float, default=200.0,
        help="job-generation window per protocol replication (simulated s)",
    )
    campaign.add_argument(
        "--variant", choices=_CAMPAIGN_VARIANTS, default="observed",
        help="mechanism variant the units evaluate ('dynamics' iterates "
        "kernel-driven best responses from each scenario profile; "
        "'drift' scores each profile as a stale-bid drifting horizon)",
    )
    campaign.add_argument(
        "--drift-rounds", type=int, default=64, metavar="T",
        help="horizon length of each drift unit (--variant drift only)",
    )
    campaign.add_argument(
        "--drift-sigma", type=float, default=0.05,
        help="per-epoch log-step of the drift walk (--variant drift only)",
    )
    campaign.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="content-addressed result cache (default: .repro-cache)",
    )
    campaign.add_argument(
        "--no-cache", action="store_true",
        help="run without any result cache (neither read nor written)",
    )
    campaign.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="serve cached units (--no-resume recomputes everything but "
        "still refreshes the cache)",
    )
    campaign.add_argument(
        "--json", action="store_true",
        help="emit stats, cache keys, and per-unit payloads as JSON",
    )
    campaign.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export per-worker campaign.unit spans as JSON Lines to FILE",
    )
    campaign.add_argument(
        "--shards", type=int, default=1,
        help="coordinator shards per protocol replication (>1 routes the "
        "replication through the sharded service; payloads stay "
        "bit-identical — see docs/distributed.md)",
    )
    campaign.add_argument(
        "--fuse", choices=("auto", "on", "off"), default="auto",
        help="fused cohort backend: evaluate homogeneous closed-form "
        "misses as single stacked broadcasts (bit-identical, same cache "
        "keys; 'off' restores the pure per-unit path)",
    )
    campaign.set_defaults(func=_cmd_campaign)

    tournament = sub.add_parser(
        "tournament",
        help="play verification vs VCG vs Archer-Tardos against every "
        "manipulation pattern (single liars, multi-liar prefixes, "
        "colluding pairs)",
    )
    tournament.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the unit grid (0 = in-process)",
    )
    tournament.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache for the cells (default: none)",
    )
    tournament.add_argument(
        "--dynamics", action=argparse.BooleanOptionalAction, default=True,
        help="iterate best-response dynamics from each mechanism's worst "
        "profile (--no-dynamics skips the equilibrium stage)",
    )
    tournament.add_argument(
        "--top", type=int, default=10,
        help="manipulation rows to show, ranked by coalition gain",
    )
    tournament.add_argument(
        "--json", action="store_true",
        help="emit the full tournament result (rows, equilibrium, "
        "standings) as JSON",
    )
    tournament.add_argument(
        "--fuse", choices=("auto", "on", "off"), default="auto",
        help="fused cohort backend for the unit grid (bit-identical; "
        "'off' restores the per-unit path)",
    )
    tournament.set_defaults(func=_cmd_tournament)

    serve = sub.add_parser(
        "serve",
        help="run the sharded coordinator service for a number of rounds",
    )
    serve.add_argument("--machines", type=int, default=32)
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--rounds", type=int, default=5)
    serve.add_argument("--rate", type=float, default=7.0, help="arrival rate R")
    serve.add_argument(
        "--duration", type=float, default=40.0,
        help="job-generation window per round (simulated seconds)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--executor", choices=("serial", "async", "process"), default="serial",
        help="stage executor (serial is the deterministic parity mode)",
    )
    serve.add_argument(
        "--aggregation", choices=("exact", "scalar"), default="exact",
        help="exact reassembles canonical arrays at the root "
        "(bit-identical); scalar ships only the (S, Q) partial sums",
    )
    serve.add_argument(
        "--workload", choices=("global", "local"), default="global",
        help="global routes one Poisson stream from the root; local lets "
        "every shard draw its own thinned substream",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit per-round summaries as JSON",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.func(args)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        print(output)
    except BrokenPipeError:  # e.g. `repro figure 1 | head`
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
