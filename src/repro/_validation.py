"""Input validation helpers shared across the :mod:`repro` package.

All public API entry points validate their inputs once, at the boundary,
and then operate on trusted ``float64`` numpy arrays internally.  The
helpers here raise ``ValueError``/``TypeError`` with messages that name
the offending argument, so failures surface close to the caller.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_float_array",
    "check_positive",
    "check_nonnegative",
    "check_positive_scalar",
    "check_nonnegative_scalar",
    "check_same_length",
    "check_index",
    "check_finite",
]


def as_float_array(values: Iterable[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D contiguous ``float64`` array.

    Parameters
    ----------
    values:
        Any sequence or array of numbers.
    name:
        Argument name used in error messages.

    Returns
    -------
    numpy.ndarray
        A 1-D ``float64`` array.  A copy is made only when needed, so
        callers may pass pre-converted arrays without paying for a copy.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_finite(arr: np.ndarray, name: str) -> None:
    """Raise ``ValueError`` if ``arr`` contains NaN or infinities."""
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")


def check_positive(arr: np.ndarray, name: str) -> None:
    """Raise ``ValueError`` unless every element of ``arr`` is > 0."""
    if np.any(arr <= 0.0):
        raise ValueError(f"all elements of {name} must be strictly positive")


def check_nonnegative(arr: np.ndarray, name: str) -> None:
    """Raise ``ValueError`` unless every element of ``arr`` is >= 0."""
    if np.any(arr < 0.0):
        raise ValueError(f"all elements of {name} must be non-negative")


def check_positive_scalar(value: float, name: str) -> float:
    """Validate that ``value`` is a finite scalar > 0 and return it as float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative_scalar(value: float, name: str) -> float:
    """Validate that ``value`` is a finite scalar >= 0 and return it as float."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_same_length(name_a: str, a: Sequence | np.ndarray, name_b: str, b: Sequence | np.ndarray) -> None:
    """Raise ``ValueError`` unless ``a`` and ``b`` have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate an integer index into a collection of length ``size``."""
    index = int(index)
    if not 0 <= index < size:
        raise IndexError(f"{name} must be in [0, {size}), got {index}")
    return index
