"""Result containers shared by the allocation, mechanism, and protocol layers.

These are plain frozen dataclasses wrapping numpy arrays.  They carry
enough context (bids, execution values, arrival rate) that downstream
reporting code never has to re-derive inputs, and they expose a handful
of derived quantities as properties so that callers do not duplicate
formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "AllocationResult",
    "PaymentResult",
    "MechanismOutcome",
]


def _readonly(arr: np.ndarray) -> np.ndarray:
    """Return a read-only float64 view/copy of ``arr``."""
    out = np.asarray(arr, dtype=np.float64)
    out = out.copy()
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of an allocation algorithm.

    Attributes
    ----------
    loads:
        Per-machine job arrival rates ``x_i`` (jobs/second).
    arrival_rate:
        Total arrival rate ``R`` that was split across machines.
    bids:
        The latency parameters the allocation was computed from (the
        agents' declared values ``b_i``; equal to the true values in the
        obedient/classical setting).
    total_latency:
        ``L(x) = sum_i b_i x_i^2`` evaluated at the *declared* parameters.
        Note this is the latency the allocator believes it achieves; the
        realised latency depends on execution values and is computed by
        the mechanism layer.
    """

    loads: np.ndarray
    arrival_rate: float
    bids: np.ndarray
    total_latency: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "loads", _readonly(self.loads))
        object.__setattr__(self, "bids", _readonly(self.bids))

    @property
    def n_machines(self) -> int:
        """Number of machines in the allocation."""
        return int(self.loads.size)

    @property
    def fractions(self) -> np.ndarray:
        """Fraction of the total arrival rate routed to each machine."""
        return self.loads / self.arrival_rate

    def latency_under(self, execution_values: np.ndarray) -> float:
        """Realised total latency if machines execute at ``execution_values``."""
        execution_values = np.asarray(execution_values, dtype=np.float64)
        return float(np.dot(execution_values, self.loads**2))


@dataclass(frozen=True)
class PaymentResult:
    """Per-agent monetary quantities produced by a mechanism.

    All arrays are indexed by machine.  The identities
    ``payment = compensation + bonus`` and
    ``utility = payment + valuation`` hold element-wise.
    """

    compensation: np.ndarray
    bonus: np.ndarray
    valuation: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "compensation", _readonly(self.compensation))
        object.__setattr__(self, "bonus", _readonly(self.bonus))
        object.__setattr__(self, "valuation", _readonly(self.valuation))

    @property
    def payment(self) -> np.ndarray:
        """Total payment handed to each agent: compensation plus bonus."""
        return self.compensation + self.bonus

    @property
    def utility(self) -> np.ndarray:
        """Each agent's utility: payment plus (negative) valuation."""
        return self.payment + self.valuation

    @property
    def total_payment(self) -> float:
        """Sum of payments over all agents."""
        return float(np.sum(self.payment))

    @property
    def total_valuation_magnitude(self) -> float:
        """Sum of |valuation| over agents (total cost borne by agents)."""
        return float(np.sum(np.abs(self.valuation)))


@dataclass(frozen=True)
class MechanismOutcome:
    """Full outcome of one mechanism execution.

    Combines the allocation computed from the bids, the realised total
    latency under the observed execution values, and the payments.
    """

    allocation: AllocationResult
    payments: PaymentResult
    execution_values: np.ndarray
    true_values: np.ndarray | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "execution_values", _readonly(self.execution_values))
        if self.true_values is not None:
            object.__setattr__(self, "true_values", _readonly(self.true_values))

    @property
    def realised_latency(self) -> float:
        """Total latency actually experienced: ``sum_i t̃_i x_i^2``."""
        return self.allocation.latency_under(self.execution_values)

    @property
    def loads(self) -> np.ndarray:
        """Shorthand for the per-machine loads of the allocation."""
        return self.allocation.loads

    @property
    def frugality_ratio(self) -> float:
        """Total payment divided by total valuation magnitude.

        The paper (Fig. 6) reports this ratio staying below about 2.5
        for the verification mechanism; 1.0 is the lower bound imposed
        by voluntary participation.
        """
        denom = self.payments.total_valuation_magnitude
        if denom == 0.0:
            return float("nan")
        return self.payments.total_payment / denom
