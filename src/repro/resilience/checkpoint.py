"""Coordinator checkpoint/restore: crash the mechanism, not the round.

The coordinator is a single point of failure: if it dies mid-round the
machines have already burned cycles executing jobs, and naively
restarting it either loses the round or — worse — pays twice.  The fix
is the standard write-ahead pattern: the coordinator serialises its
*inputs* (phase, collected bids, decided loads, received reports, and
the set of payments already issued) at every state transition, and a
restarted coordinator deterministically recomputes everything derived
(estimates, outcome, remaining payments) from that record.

Two properties matter and are enforced by tests and the chaos harness:

* **resume, don't redo** — a coordinator restored in ``EXECUTING``
  keeps the allocation it already announced and simply continues
  collecting reports; one restored in ``VERIFYING`` re-derives the
  outcome and issues only the payments *not* in ``payments_sent``
  (at-most-once payment semantics);
* **void, don't guess** — a coordinator restored before any allocation
  was announced (``IDLE``/``BIDDING``) voids the round: no allocation
  reached any machine, so abandoning is safe and cheap.

Checkpoints round-trip through JSON so the "durable store" can be a
file, a database row, or (in tests) an in-memory string — the
serialisation boundary is what proves no live object sneaks through.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observability.instrumentation import record_counter, timed_section

__all__ = ["CoordinatorCheckpoint", "CheckpointStore"]


@dataclass(frozen=True)
class CoordinatorCheckpoint:
    """Everything a restarted coordinator needs to resume a round.

    Attributes
    ----------
    phase:
        The :class:`~repro.protocol.ProtocolPhase` value string.
    machine_names:
        Machines still in the round (responders after any exclusion).
    arrival_rate:
        Total rate ``R`` being allocated.
    bids:
        Collected bids by machine name.
    loads:
        The announced allocation in ``machine_names`` order, or
        ``None`` if no allocation was decided yet.
    reports:
        Received completion reports: name → (jobs_completed,
        mean_sojourn).
    excluded / withheld:
        Names excluded at the bid deadline / whose payment is withheld.
    payments_sent:
        Payments already issued: name → (payment, compensation, bonus).
        The restore path never re-issues these.
    """

    phase: str
    machine_names: list[str]
    arrival_rate: float
    bids: dict[str, float] = field(default_factory=dict)
    loads: list[float] | None = None
    reports: dict[str, tuple[int, float]] = field(default_factory=dict)
    excluded: list[str] = field(default_factory=list)
    withheld: list[str] = field(default_factory=list)
    payments_sent: dict[str, tuple[float, float, float]] = field(
        default_factory=dict
    )

    def to_json(self) -> str:
        """Serialise to a JSON string (the durable representation)."""
        return json.dumps(
            {
                "phase": self.phase,
                "machine_names": list(self.machine_names),
                "arrival_rate": self.arrival_rate,
                "bids": dict(self.bids),
                "loads": None if self.loads is None else list(self.loads),
                "reports": {
                    name: [int(jobs), float(sojourn)]
                    for name, (jobs, sojourn) in self.reports.items()
                },
                "excluded": list(self.excluded),
                "withheld": list(self.withheld),
                "payments_sent": {
                    name: [float(p), float(c), float(b)]
                    for name, (p, c, b) in self.payments_sent.items()
                },
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "CoordinatorCheckpoint":
        """Rebuild a checkpoint from its JSON representation."""
        raw = json.loads(payload)
        return cls(
            phase=raw["phase"],
            machine_names=list(raw["machine_names"]),
            arrival_rate=float(raw["arrival_rate"]),
            bids={name: float(bid) for name, bid in raw["bids"].items()},
            loads=None if raw["loads"] is None else [float(x) for x in raw["loads"]],
            reports={
                name: (int(jobs), float(sojourn))
                for name, (jobs, sojourn) in raw["reports"].items()
            },
            excluded=list(raw["excluded"]),
            withheld=list(raw["withheld"]),
            payments_sent={
                name: (float(p), float(c), float(b))
                for name, (p, c, b) in raw["payments_sent"].items()
            },
        )


class CheckpointStore:
    """A durable slot for the latest checkpoint.

    Stores the *serialised* form: every save round-trips through JSON,
    so anything that would not survive a real process restart fails
    loudly in tests rather than silently working in memory.
    """

    def __init__(self) -> None:
        self._payload: str | None = None
        self.saves = 0

    def save(self, checkpoint: CoordinatorCheckpoint) -> None:
        """Persist ``checkpoint``, replacing any previous one."""
        with timed_section("resilience.checkpoint.save.seconds"):
            self._payload = checkpoint.to_json()
        self.saves += 1
        record_counter("resilience.checkpoint.saves")

    def load(self) -> CoordinatorCheckpoint | None:
        """The most recent checkpoint, or ``None`` if nothing was saved."""
        if self._payload is None:
            return None
        with timed_section("resilience.checkpoint.load.seconds"):
            checkpoint = CoordinatorCheckpoint.from_json(self._payload)
        record_counter("resilience.checkpoint.loads")
        return checkpoint

    def clear(self) -> None:
        """Drop the stored checkpoint (end of a completed round)."""
        self._payload = None
