"""Coordinator checkpoint/restore: crash the mechanism, not the round.

The coordinator is a single point of failure: if it dies mid-round the
machines have already burned cycles executing jobs, and naively
restarting it either loses the round or — worse — pays twice.  The fix
is the standard write-ahead pattern: the coordinator serialises its
*inputs* (phase, collected bids, decided loads, received reports, and
the set of payments already issued) at every state transition, and a
restarted coordinator deterministically recomputes everything derived
(estimates, outcome, remaining payments) from that record.

Two properties matter and are enforced by tests and the chaos harness:

* **resume, don't redo** — a coordinator restored in ``EXECUTING``
  keeps the allocation it already announced and simply continues
  collecting reports; one restored in ``VERIFYING`` re-derives the
  outcome and issues only the payments *not* in ``payments_sent``
  (at-most-once payment semantics);
* **void, don't guess** — a coordinator restored before any allocation
  was announced (``IDLE``/``BIDDING``) voids the round: no allocation
  reached any machine, so abandoning is safe and cheap.

Checkpoints round-trip through JSON so the "durable store" can be a
file, a database row, or (in tests) an in-memory string — the
serialisation boundary is what proves no live object sneaks through.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.observability.instrumentation import record_counter, timed_section

__all__ = ["CoordinatorCheckpoint", "CheckpointStore"]


@dataclass(frozen=True)
class CoordinatorCheckpoint:
    """Everything a restarted coordinator needs to resume a round.

    Attributes
    ----------
    phase:
        The :class:`~repro.protocol.ProtocolPhase` value string.
    machine_names:
        Machines still in the round (responders after any exclusion).
    arrival_rate:
        Total rate ``R`` being allocated.
    bids:
        Collected bids by machine name.
    loads:
        The announced allocation in ``machine_names`` order, or
        ``None`` if no allocation was decided yet.
    reports:
        Received completion reports: name → (jobs_completed,
        mean_sojourn).
    excluded / withheld:
        Names excluded at the bid deadline / whose payment is withheld.
    payments_sent:
        Payments already issued: name → (payment, compensation, bonus).
        The restore path never re-issues these.
    """

    phase: str
    machine_names: list[str]
    arrival_rate: float
    bids: dict[str, float] = field(default_factory=dict)
    loads: list[float] | None = None
    reports: dict[str, tuple[int, float]] = field(default_factory=dict)
    excluded: list[str] = field(default_factory=list)
    withheld: list[str] = field(default_factory=list)
    payments_sent: dict[str, tuple[float, float, float]] = field(
        default_factory=dict
    )

    def to_json(self) -> str:
        """Serialise to a JSON string (the durable representation).

        Tuples encode as JSON arrays natively and ``default=float``
        coerces any stray numpy scalar, so no per-element Python loop
        runs here — snapshots are O(n) in C, which matters because the
        sharded service takes one per phase per shard.
        """
        loads = self.loads
        if loads is not None and hasattr(loads, "tolist"):
            loads = loads.tolist()
        return json.dumps(
            {
                "phase": self.phase,
                "machine_names": self.machine_names,
                "arrival_rate": self.arrival_rate,
                "bids": self.bids,
                "loads": loads,
                "reports": self.reports,
                "excluded": self.excluded,
                "withheld": self.withheld,
                "payments_sent": self.payments_sent,
            },
            default=float,
        )

    @classmethod
    def from_json(cls, payload: str) -> "CoordinatorCheckpoint":
        """Rebuild a checkpoint from its JSON representation."""
        raw = json.loads(payload)
        return cls(
            phase=raw["phase"],
            machine_names=list(raw["machine_names"]),
            arrival_rate=float(raw["arrival_rate"]),
            bids={name: float(bid) for name, bid in raw["bids"].items()},
            loads=None if raw["loads"] is None else [float(x) for x in raw["loads"]],
            reports={
                name: (int(jobs), float(sojourn))
                for name, (jobs, sojourn) in raw["reports"].items()
            },
            excluded=list(raw["excluded"]),
            withheld=list(raw["withheld"]),
            payments_sent={
                name: (float(p), float(c), float(b))
                for name, (p, c, b) in raw["payments_sent"].items()
            },
        )


class CheckpointStore:
    """A durable slot for the latest checkpoint, plus a payment journal.

    Stores the *serialised* form: every save round-trips through JSON,
    so anything that would not survive a real process restart fails
    loudly in tests rather than silently working in memory.

    Snapshots are O(n) to write, which is fine once per phase but ruins
    the settle phase if taken once per payment (O(n²) per round).  The
    journal is the classic WAL answer: :meth:`append_payment` records a
    single ledger entry in O(1) *on top of* the last snapshot, and
    :meth:`load` folds the journal back into ``payments_sent``.  Saving
    a fresh snapshot subsumes (and clears) the journal.
    """

    def __init__(self) -> None:
        self._payload: str | None = None
        self._journal: list[str] = []
        self.saves = 0
        self.appends = 0

    @property
    def has_snapshot(self) -> bool:
        """Whether a base snapshot exists for the journal to build on."""
        return self._payload is not None

    def save(self, checkpoint: CoordinatorCheckpoint) -> None:
        """Persist ``checkpoint``, replacing any previous one."""
        with timed_section("resilience.checkpoint.save.seconds"):
            self._payload = checkpoint.to_json()
        self._journal.clear()
        self.saves += 1
        record_counter("resilience.checkpoint.saves")

    def append_payment(
        self, name: str, amounts: tuple[float, float, float]
    ) -> None:
        """Journal one issued payment in O(1), relative to the snapshot.

        The entry is serialised immediately — same durability discipline
        as :meth:`save` — so a write-ahead per-payment record costs one
        three-float JSON line instead of a full O(n) snapshot.
        """
        if self._payload is None:
            raise RuntimeError(
                "cannot journal a payment with no base snapshot saved"
            )
        payment, compensation, bonus = amounts
        payment = float(payment)
        compensation = float(compensation)
        bonus = float(bonus)
        # repr() of a finite float is shortest-round-trip decimal, which
        # is valid JSON — the fast path skips the json encoder entirely
        # (this is the per-payment hot path; see bench_sharded.py).
        # Names needing escapes and non-finite values take the slow path.
        if (
            '"' not in name
            and "\\" not in name
            and name.isprintable()
            and payment - payment == 0.0
            and compensation - compensation == 0.0
            and bonus - bonus == 0.0
        ):
            entry = f'["{name}", [{payment!r}, {compensation!r}, {bonus!r}]]'
        else:
            entry = json.dumps([name, [payment, compensation, bonus]])
        self._journal.append(entry)
        self.appends += 1

    def load(self) -> CoordinatorCheckpoint | None:
        """The most recent checkpoint, or ``None`` if nothing was saved.

        Journalled payments are folded into ``payments_sent`` so the
        restore path sees one coherent ledger regardless of whether the
        entries arrived via snapshot or append.
        """
        if self._payload is None:
            return None
        with timed_section("resilience.checkpoint.load.seconds"):
            checkpoint = CoordinatorCheckpoint.from_json(self._payload)
            if self._journal:
                payments = dict(checkpoint.payments_sent)
                for line in self._journal:
                    name, amounts = json.loads(line)
                    payments[name] = tuple(float(x) for x in amounts)
                checkpoint = replace(checkpoint, payments_sent=payments)
        record_counter("resilience.checkpoint.loads")
        return checkpoint

    def clear(self) -> None:
        """Drop the stored checkpoint (end of a completed round)."""
        self._payload = None
        self._journal.clear()
