"""Retry pacing: exponential backoff with jitter.

When a machine misses a control-message deadline (bid, report) the
supervisor re-requests instead of excluding it immediately — transient
unresponsiveness (GC pause, overload spike, a flapping link above what
the transport already absorbs) heals under a couple of retries, and
only persistent silence should cost a machine its slot in the round.

The pacing is the standard AWS-style "full jitter" schedule: the
``k``-th retry waits ``uniform(0, min(cap, base * factor**k))``.  The
randomised wait prevents synchronized retry storms when many machines
miss the same deadline; the exponential envelope keeps the total time
spent waiting on a dead machine bounded by a geometric series.  All
randomness comes from an injected generator so supervised runs stay
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_scalar

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Exponential backoff with full jitter over simulated time.

    Parameters
    ----------
    base:
        Envelope of the first retry delay (seconds of simulated time).
    factor:
        Growth of the envelope per attempt (must be >= 1).
    cap:
        Upper bound on the envelope; delays never exceed it.
    jitter:
        Fraction of the envelope that is randomised.  ``1.0`` (default)
        is full jitter — the delay is uniform on ``(0, envelope]``;
        ``0.0`` is deterministic exponential backoff.
    """

    def __init__(
        self,
        base: float = 0.5,
        factor: float = 2.0,
        cap: float = 30.0,
        *,
        jitter: float = 1.0,
    ) -> None:
        self.base = check_positive_scalar(base, "base")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor:g}")
        self.factor = float(factor)
        self.cap = check_positive_scalar(cap, "cap")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter:g}")
        self.jitter = float(jitter)

    def envelope(self, attempt: int) -> float:
        """Deterministic upper bound of the ``attempt``-th retry delay."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.cap, self.base * self.factor**attempt)

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Sample the wait before retry number ``attempt`` (0-based).

        The result is strictly positive (a zero delay would re-fire in
        the same simulator timestep as the failure it reacts to).
        """
        envelope = self.envelope(attempt)
        if self.jitter == 0.0:
            return envelope
        jittered = envelope * (1.0 - self.jitter * float(rng.random()))
        return max(jittered, envelope * 1e-6)

    def schedule(self, attempts: int, rng: np.random.Generator) -> list[float]:
        """Sample the full delay sequence for ``attempts`` retries."""
        return [self.delay(k, rng) for k in range(attempts)]

    def __repr__(self) -> str:
        return (
            f"BackoffPolicy(base={self.base:g}, factor={self.factor:g}, "
            f"cap={self.cap:g}, jitter={self.jitter:g})"
        )
