"""Per-machine circuit breaker with reputation-gated re-admission.

A machine that keeps failing rounds — missing bid/report deadlines
after retries, or tripping the CUSUM slowdown detector — should stop
receiving load: every failed round wastes the jobs routed to it and
(for slowdowns) inflates the realised latency everyone's bonus is paid
against.  The classic pattern is a circuit breaker:

* **closed** — the machine participates normally; consecutive failures
  are counted and ``failure_threshold`` of them open the circuit;
* **open** — the machine is quarantined: it is excluded from rounds for
  ``cooldown_rounds`` rounds (doubling after each re-trip, up to
  ``max_cooldown_rounds``) and its load is reallocated to the others;
* **half-open** — after the cooldown the machine is offered a *probe*
  round; ``probe_successes_required`` consecutive clean probes close
  the circuit again, a single failed probe re-opens it with a doubled
  cooldown.

Re-admission is additionally gated by a **reputation score**: an
exponential moving average of round outcomes in [0, 1].  A machine
whose probes succeed but whose long-run record is still poor keeps
probing until its reputation clears ``readmission_reputation`` — this
stops a periodically-flapping machine from oscillating between closed
and open at the probe cadence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.observability.instrumentation import annotate, record_counter

__all__ = ["CircuitState", "MachineHealth", "QuarantinePolicy"]


class CircuitState(enum.Enum):
    """Circuit-breaker state of one machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class MachineHealth:
    """Mutable health record the policy keeps per machine."""

    state: CircuitState = CircuitState.CLOSED
    reputation: float = 1.0
    consecutive_failures: int = 0
    consecutive_probe_successes: int = 0
    cooldown_remaining: int = 0
    current_cooldown: int = 0
    rounds_participated: int = 0
    failures_total: int = 0
    times_opened: int = 0
    last_failure_reason: str | None = None


class QuarantinePolicy:
    """Closed → open → half-open quarantine over a set of machines.

    Drive it once per round: :meth:`begin_round` advances cooldowns and
    returns who may participate, then :meth:`record_success` /
    :meth:`record_failure` report each participant's outcome.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open a closed circuit.
    cooldown_rounds:
        Initial quarantine length (in rounds); doubles on re-trip.
    max_cooldown_rounds:
        Cap on the doubling cooldown.
    probe_successes_required:
        Consecutive clean half-open probes needed to close the circuit.
    readmission_reputation:
        Minimum reputation score for half-open → closed; probes keep
        running (and raising the score) until it is met.
    reputation_alpha:
        EMA weight of the newest round outcome in the reputation score.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 2,
        cooldown_rounds: int = 2,
        max_cooldown_rounds: int = 16,
        probe_successes_required: int = 2,
        readmission_reputation: float = 0.6,
        reputation_alpha: float = 0.35,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_rounds < 1:
            raise ValueError("cooldown_rounds must be at least 1")
        if max_cooldown_rounds < cooldown_rounds:
            raise ValueError("max_cooldown_rounds must be >= cooldown_rounds")
        if probe_successes_required < 1:
            raise ValueError("probe_successes_required must be at least 1")
        if not 0.0 <= readmission_reputation <= 1.0:
            raise ValueError("readmission_reputation must be in [0, 1]")
        if not 0.0 < reputation_alpha <= 1.0:
            raise ValueError("reputation_alpha must be in (0, 1]")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_rounds = int(cooldown_rounds)
        self.max_cooldown_rounds = int(max_cooldown_rounds)
        self.probe_successes_required = int(probe_successes_required)
        self.readmission_reputation = float(readmission_reputation)
        self.reputation_alpha = float(reputation_alpha)
        self._machines: dict[str, MachineHealth] = {}

    # ------------------------------------------------------------ wiring

    def admit(self, name: str) -> None:
        """Start tracking a machine (idempotent)."""
        self._machines.setdefault(name, MachineHealth())

    def health_of(self, name: str) -> MachineHealth:
        """The mutable health record of one machine."""
        return self._machines[name]

    def state_of(self, name: str) -> CircuitState:
        """Current circuit state of one machine."""
        return self._machines[name].state

    def reputation_of(self, name: str) -> float:
        """Current reputation score of one machine."""
        return self._machines[name].reputation

    @property
    def machine_names(self) -> list[str]:
        """All tracked machines, in admission order."""
        return list(self._machines)

    # ------------------------------------------------------------ rounds

    def begin_round(self) -> list[str]:
        """Advance cooldowns; return the machines admitted to this round.

        Open machines whose cooldown has elapsed transition to
        half-open and are admitted as probes; the rest of the admitted
        set is every closed machine.
        """
        admitted: list[str] = []
        for name, health in self._machines.items():
            if health.state is CircuitState.OPEN:
                health.cooldown_remaining -= 1
                if health.cooldown_remaining <= 0:
                    health.state = CircuitState.HALF_OPEN
                    health.consecutive_probe_successes = 0
                    record_counter("resilience.quarantine.probes")
                    annotate("quarantine.probe", machine=name)
            if health.state is not CircuitState.OPEN:
                admitted.append(name)
        return admitted

    def probes(self) -> list[str]:
        """Machines currently in the half-open (probe) state."""
        return [
            n
            for n, h in self._machines.items()
            if h.state is CircuitState.HALF_OPEN
        ]

    def quarantined(self) -> list[str]:
        """Machines currently in the open (quarantined) state."""
        return [
            n for n, h in self._machines.items() if h.state is CircuitState.OPEN
        ]

    # ------------------------------------------------------------ outcomes

    def record_success(self, name: str) -> None:
        """A clean round for ``name``: no alert, no missed deadline."""
        health = self._machines[name]
        health.rounds_participated += 1
        health.consecutive_failures = 0
        self._update_reputation(health, 1.0)
        if health.state is CircuitState.HALF_OPEN:
            health.consecutive_probe_successes += 1
            if (
                health.consecutive_probe_successes
                >= self.probe_successes_required
                and health.reputation >= self.readmission_reputation
            ):
                health.state = CircuitState.CLOSED
                health.current_cooldown = 0
                record_counter("resilience.quarantine.closed")
                annotate("quarantine.closed", machine=name)

    def record_failure(self, name: str, reason: str) -> None:
        """A failed round for ``name`` (missed deadline, CUSUM alert, ...)."""
        health = self._machines[name]
        health.rounds_participated += 1
        health.failures_total += 1
        health.consecutive_failures += 1
        health.last_failure_reason = reason
        self._update_reputation(health, 0.0)
        if health.state is CircuitState.HALF_OPEN:
            self._open(name, health)  # one failed probe re-opens immediately
        elif (
            health.state is CircuitState.CLOSED
            and health.consecutive_failures >= self.failure_threshold
        ):
            self._open(name, health)

    # ------------------------------------------------------ remediation

    def force_open(self, name: str, reason: str = "remediation") -> None:
        """Quarantine ``name`` immediately, bypassing the failure count.

        The remediation pipeline uses this to act on a *single* strong
        signal (a CUSUM alert, an unverifiable round) without waiting
        for ``failure_threshold`` consecutive failures.  Cooldown
        book-keeping (doubling, cap) is identical to an organic trip,
        so back-off behaviour stays monotone.
        """
        health = self._machines[name]
        if health.state is CircuitState.OPEN:
            return
        health.last_failure_reason = reason
        self._open(name, health)

    def force_probe(self, name: str) -> None:
        """Early re-admission: skip the remaining cooldown of ``name``.

        The machine transitions straight to half-open and is offered a
        probe at the next :meth:`begin_round`.  Probe bookkeeping is
        untouched: a failed probe still re-opens with a doubled
        cooldown, so an unwarranted early readmit self-corrects.
        """
        health = self._machines[name]
        if health.state is not CircuitState.OPEN:
            return
        health.state = CircuitState.HALF_OPEN
        health.cooldown_remaining = 0
        health.consecutive_probe_successes = 0
        record_counter("resilience.quarantine.forced_probes")
        annotate("quarantine.forced_probe", machine=name)

    def reset(self, name: str) -> None:
        """Forgive ``name``: close its circuit and clear the streaks.

        Used when failures are attributed to an external cause (e.g. a
        lossy-network round) rather than the machine itself.  The
        reputation score is deliberately *not* reset — forgiveness
        clears the circuit, not the record.
        """
        health = self._machines[name]
        health.state = CircuitState.CLOSED
        health.consecutive_failures = 0
        health.consecutive_probe_successes = 0
        health.cooldown_remaining = 0
        health.current_cooldown = 0
        record_counter("resilience.quarantine.resets")
        annotate("quarantine.reset", machine=name)

    def snapshot_health(self, name: str) -> MachineHealth:
        """An independent copy of one machine's health (for undo logs)."""
        health = self._machines[name]
        return MachineHealth(**vars(health))

    def restore_health(self, name: str, saved: MachineHealth) -> None:
        """Restore a health record captured by :meth:`snapshot_health`."""
        self._machines[name] = MachineHealth(**vars(saved))

    # ------------------------------------------------------------ internals

    def _open(self, name: str, health: MachineHealth) -> None:
        health.state = CircuitState.OPEN
        health.times_opened += 1
        record_counter(
            "resilience.quarantine.opened",
            reason=health.last_failure_reason or "unknown",
        )
        annotate(
            "quarantine.opened",
            machine=name,
            reason=health.last_failure_reason or "unknown",
        )
        health.consecutive_probe_successes = 0
        if health.current_cooldown == 0:
            health.current_cooldown = self.cooldown_rounds
        else:
            health.current_cooldown = min(
                health.current_cooldown * 2, self.max_cooldown_rounds
            )
        health.cooldown_remaining = health.current_cooldown

    def _update_reputation(self, health: MachineHealth, outcome: float) -> None:
        health.reputation += self.reputation_alpha * (outcome - health.reputation)
