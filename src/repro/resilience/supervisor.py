"""Supervised multi-round protocol: retry, quarantine, recover, repeat.

One :func:`~repro.protocol.run_protocol` call prices a single clean
round.  A deployment runs the mechanism continuously against machines
that flap, links that drop, and a coordinator that can itself die; the
:class:`RoundSupervisor` here is the control loop that keeps allocating
through all of that:

* **retry with backoff** — a machine that misses the bid or report
  deadline is re-asked under a jittered exponential
  :class:`~repro.resilience.retry.BackoffPolicy` before being excluded,
  so transient unresponsiveness does not cost it the round;
* **quarantine** — per-round outcomes (missed deadlines after retries,
  CUSUM slowdown alerts) feed a
  :class:`~repro.resilience.quarantine.QuarantinePolicy` circuit
  breaker; quarantined machines sit out and their load is reallocated
  to the survivors via the *incremental* PR state (an O(changes)
  update, not an O(n) recompute);
* **coordinator recovery** — the per-round
  :class:`SupervisedCoordinator` write-ahead-checkpoints its inputs to
  a :class:`~repro.resilience.checkpoint.CheckpointStore`; a crashed
  coordinator is restored from the serialized checkpoint and either
  resumes the round or voids it, never paying a machine twice.

The supervisor is deliberately deterministic given its seed: the chaos
harness (:mod:`repro.resilience.chaos`) replays identical fault
schedules against it and asserts the mechanism invariants after every
round.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro._validation import check_positive_scalar
from repro.agents.base import Agent
from repro.allocation.incremental import IncrementalPRState
from repro.mechanism.base import Mechanism
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.observability.instrumentation import (
    annotate,
    observe_value,
    record_counter,
    record_gauge,
    timed_section,
    trace_span,
)
from repro.protocol.coordinator import COORDINATOR_NAME, MachineNode, ProtocolPhase
from repro.protocol.faults import FaultTolerantCoordinator, ReliableNetwork
from repro.protocol.messages import (
    AllocationNotice,
    BidRequest,
    CompletionReport,
    Message,
    PaymentNotice,
)
from repro.protocol.monitoring import CusumSlowdownDetector
from repro.protocol.network import SimulatedNetwork
from repro.resilience.checkpoint import CheckpointStore, CoordinatorCheckpoint
from repro.resilience.quarantine import CircuitState, QuarantinePolicy
from repro.resilience.retry import BackoffPolicy
from repro.system.des import Simulator
from repro.protocol.execution import dispatch_batched, resolve_execution
from repro.system.machine import LinearLatencyMachine
from repro.system.workload import (
    ArrivalSchedule,
    Job,
    PoissonWorkload,
    split_assignments,
    split_workload,
)
from repro.types import AllocationResult, MechanismOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (chaos imports us)
    from repro.remediation.pipeline import RemediationPipeline
    from repro.resilience.chaos import RoundFaults

__all__ = [
    "CoordinatorCrash",
    "SupervisedCoordinator",
    "RoundResult",
    "SupervisorReport",
    "RoundSupervisor",
]


class CoordinatorCrash(RuntimeError):
    """Injected coordinator failure: the process died mid-round."""


@dataclass
class SupervisedCoordinator(FaultTolerantCoordinator):
    """A fault-tolerant coordinator that checkpoints and pays at most once.

    Extends :class:`~repro.protocol.FaultTolerantCoordinator` with:

    * ``allocator`` — optional override for the allocation step, so the
      supervisor can serve loads from its incremental PR state instead
      of recomputing from scratch;
    * ``checkpoint_store`` — write-ahead persistence of phase, bids,
      loads, reports, and issued payments at every state transition;
    * ``payments_sent`` — the at-most-once ledger: a payment is
      recorded (and checkpointed) *before* its notice is sent, and
      never re-issued by a restored coordinator;
    * ``fail_after_payments`` — chaos hook: raise
      :class:`CoordinatorCrash` once that many payments were issued;
    * ``min_participants`` — rounds that shrink below this many
      responders are voided (the bonus term needs a leave-one-out
      system, so fewer than two machines cannot be priced);
    * ``bid_overrides`` — remediation-imposed effective declared values:
      a machine the pipeline has re-estimated (its verified execution
      value exceeded its bid) is priced at the override rather than its
      declared bid.  Overrides only ever *raise* a recorded bid, never
      lower it, and apply at recording time, so allocation, payments,
      and checkpoints all see one consistent value.
    """

    allocator: (
        Callable[[list[str], np.ndarray, float], AllocationResult] | None
    ) = None
    checkpoint_store: CheckpointStore | None = None
    fail_after_payments: int | None = None
    min_participants: int = 2
    payments_sent: dict[str, tuple[float, float, float]] = field(
        default_factory=dict
    )
    bid_overrides: dict[str, float] = field(default_factory=dict)

    # --------------------------------------------------------- overrides

    def _record_bid(self, reply) -> None:
        override = self.bid_overrides.get(reply.sender)
        if override is not None and override > reply.bid:
            record_counter("remediation.bid_overrides")
            annotate(
                "remediation.bid_override",
                machine=reply.sender,
                declared=reply.bid,
                override=override,
            )
            reply = replace(reply, bid=float(override))
        super()._record_bid(reply)

    def _on_bid(self, reply) -> None:
        super()._on_bid(reply)
        if self.phase is ProtocolPhase.BIDDING:
            self._save_checkpoint()

    def _on_report(self, report) -> None:
        phase_before = self.phase
        super()._on_report(report)
        if self.phase is phase_before:
            self._save_checkpoint()

    def _allocate_to_responders(self) -> None:
        responders = [n for n in self.machine_names if n in self._bids]
        if len(responders) < self.min_participants:
            self.void_round()
            self._save_checkpoint()
            return
        self.excluded = [n for n in self.machine_names if n not in self._bids]
        self.machine_names = responders
        self._reset_membership_caches()

        bids = self.bids_vector()
        if self.allocator is not None:
            allocation = self.allocator(responders, bids, self.arrival_rate)
        else:
            allocation = self.mechanism.allocate(bids, self.arrival_rate)
        self._loads = allocation.loads
        self._set_phase(ProtocolPhase.EXECUTING)
        self._save_checkpoint()
        for name, load in zip(self.machine_names, allocation.loads):
            self.network.send(
                AllocationNotice(
                    sender=COORDINATOR_NAME, receiver=name, load=float(load)
                )
            )
        if self.on_allocated is not None:
            self.on_allocated(allocation.loads)

    def _finish_with_missing(self, missing: set[str]) -> None:
        self._set_phase(ProtocolPhase.VERIFYING)
        self.withheld = sorted(missing)
        self._save_checkpoint()
        self._complete_verification()

    def void_round(self) -> None:
        """Abandon the round and checkpoint the terminal state."""
        super().void_round()
        self._save_checkpoint()

    # --------------------------------------------------------- verification

    def _complete_verification(self) -> None:
        """Estimate, price, and pay — skipping payments already issued.

        Pure function of the checkpointed inputs (bids, loads,
        reports, withheld), so a restored coordinator re-derives the
        identical outcome and only issues the missing notices.
        """
        bids = self.bids_vector()
        assert self._loads is not None
        missing = set(self.withheld)

        estimates = np.empty(len(self.machine_names))
        for k, name in enumerate(self.machine_names):
            if name in missing:
                estimates[k] = self.missing_report_factor * bids[k]
                continue
            report = self._reports[name]
            if report.jobs_completed == 0 or self._loads[k] == 0.0:
                estimates[k] = bids[k]
            else:
                estimates[k] = report.mean_sojourn / self._loads[k]

        self.estimated_execution_values = estimates
        self.outcome = self.mechanism.run(bids, self.arrival_rate, estimates)
        payments = self.outcome.payments
        for k, name in enumerate(self.machine_names):
            if name in self.payments_sent:
                continue  # issued before a crash: never pay twice
            if (
                self.fail_after_payments is not None
                and len(self.payments_sent) >= self.fail_after_payments
            ):
                raise CoordinatorCrash(
                    f"coordinator died after issuing "
                    f"{len(self.payments_sent)} payments"
                )
            if name in missing:
                amounts = (0.0, 0.0, 0.0)
            else:
                amounts = (
                    float(payments.payment[k]),
                    float(payments.compensation[k]),
                    float(payments.bonus[k]),
                )
            # Write-ahead: record and persist the intent, then send.
            self.payments_sent[name] = amounts
            self._save_checkpoint()
            self.network.send(
                PaymentNotice(
                    sender=COORDINATOR_NAME,
                    receiver=name,
                    payment=amounts[0],
                    compensation=amounts[1],
                    bonus=amounts[2],
                )
            )
        self._set_phase(ProtocolPhase.DONE)
        self._save_checkpoint()

    # --------------------------------------------------------- persistence

    def checkpoint(self) -> CoordinatorCheckpoint:
        """Snapshot the coordinator's inputs as a serialisable record."""
        return CoordinatorCheckpoint(
            phase=self.phase.value,
            machine_names=list(self.machine_names),
            arrival_rate=self.arrival_rate,
            bids=dict(self._bids),
            loads=None if self._loads is None else [float(x) for x in self._loads],
            reports={
                name: (report.jobs_completed, report.mean_sojourn)
                for name, report in self._reports.items()
            },
            excluded=list(self.excluded),
            withheld=list(self.withheld),
            payments_sent=dict(self.payments_sent),
        )

    def _save_checkpoint(self) -> None:
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(self.checkpoint())

    @classmethod
    def restore(
        cls,
        checkpoint: CoordinatorCheckpoint,
        *,
        mechanism: Mechanism,
        network,
        on_allocated=None,
        checkpoint_store: CheckpointStore | None = None,
        allocator=None,
    ) -> "SupervisedCoordinator":
        """Rebuild a coordinator from a checkpoint after a crash.

        The restored instance carries no chaos hook
        (``fail_after_payments`` is cleared): the replacement process
        is assumed healthy.
        """
        coordinator = cls(
            mechanism=mechanism,
            machine_names=list(checkpoint.machine_names),
            arrival_rate=checkpoint.arrival_rate,
            network=network,
            on_allocated=on_allocated,
            checkpoint_store=checkpoint_store,
            allocator=allocator,
        )
        coordinator.phase = ProtocolPhase(checkpoint.phase)
        coordinator._bids = dict(checkpoint.bids)
        coordinator._loads = (
            None if checkpoint.loads is None else np.array(checkpoint.loads)
        )
        coordinator._reports = {
            name: CompletionReport(
                sender=name,
                receiver=COORDINATOR_NAME,
                jobs_completed=jobs,
                mean_sojourn=sojourn,
            )
            for name, (jobs, sojourn) in checkpoint.reports.items()
        }
        coordinator.excluded = list(checkpoint.excluded)
        coordinator.withheld = list(checkpoint.withheld)
        coordinator.payments_sent = dict(checkpoint.payments_sent)
        return coordinator

    def resume(self) -> None:
        """Continue (or safely abandon) the round after a restore.

        * ``IDLE``/``BIDDING`` — no allocation ever reached a machine,
          so the round is voided (cheap, safe, no payments);
        * ``EXECUTING`` — the allocation stands; keep waiting for
          reports (they arrive through :meth:`handle` as usual);
        * ``VERIFYING`` — re-derive the outcome and issue exactly the
          payments not yet in ``payments_sent``;
        * ``DONE``/``VOIDED`` — nothing left to do.
        """
        if self.phase in (ProtocolPhase.IDLE, ProtocolPhase.BIDDING):
            self.void_round()
        elif self.phase is ProtocolPhase.VERIFYING:
            self._complete_verification()


@dataclass
class RoundResult:
    """Everything observable after one supervised round."""

    index: int
    participants: list[str]
    probes: list[str]
    quarantined: list[str]
    excluded: list[str]
    withheld: list[str]
    alerts: list[str]
    faulted: list[str]
    fault_kinds: dict[str, str]
    voided: bool
    outcome: MechanismOutcome | None
    loads: dict[str, float]
    payments: dict[str, float]
    utilities: dict[str, float]
    payment_notices: dict[str, int]
    bid_retries: int
    report_retries: int
    coordinator_restarts: int
    arrival_rate: float
    jobs_routed: int

    @property
    def live_names(self) -> list[str]:
        """Machines that stayed in the round through allocation."""
        return list(self.loads)


@dataclass
class SupervisorReport:
    """Aggregate view over a sequence of supervised rounds."""

    rounds: list[RoundResult] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        """Number of rounds driven."""
        return len(self.rounds)

    @property
    def n_voided(self) -> int:
        """Rounds abandoned before allocation."""
        return sum(1 for r in self.rounds if r.voided)

    @property
    def total_bid_retries(self) -> int:
        """Bid re-requests issued across all rounds."""
        return sum(r.bid_retries for r in self.rounds)

    @property
    def total_report_retries(self) -> int:
        """Report re-requests issued across all rounds."""
        return sum(r.report_retries for r in self.rounds)

    @property
    def total_coordinator_restarts(self) -> int:
        """Coordinator crash/restore cycles across all rounds."""
        return sum(r.coordinator_restarts for r in self.rounds)

    @property
    def total_alerts(self) -> int:
        """CUSUM slowdown alerts raised across all rounds."""
        return sum(len(r.alerts) for r in self.rounds)


class _IncrementalAllocator:
    """PR allocation served from cross-round incremental state.

    Keeps one :class:`~repro.allocation.IncrementalPRState` alive
    across rounds; each round's (names, bids) is reconciled against it
    with O(changes) add/remove/update operations — a quarantined
    machine is one ``remove_machine``, a re-admitted probe one
    ``add_machine`` — instead of rebuilding the O(n) sums from scratch.
    """

    def __init__(self) -> None:
        self._state: IncrementalPRState | None = None
        self._names: list[str] = []
        self.incremental_ops = 0
        self.rebuilds = 0

    def allocate(
        self, names: list[str], bids: np.ndarray, arrival_rate: float
    ) -> AllocationResult:
        """Loads for ``names``/``bids`` via incremental reconciliation."""
        ops_before = self.incremental_ops
        rebuilds_before = self.rebuilds
        with timed_section("allocation.incremental.seconds"):
            self._reconcile(names, bids, arrival_rate)
            assert self._state is not None
            order = [self._names.index(n) for n in names]
            loads = self._state.loads()[order]
        if self.incremental_ops > ops_before:
            record_counter(
                "allocation.incremental.ops", self.incremental_ops - ops_before
            )
        if self.rebuilds > rebuilds_before:
            record_counter(
                "allocation.incremental.rebuilds", self.rebuilds - rebuilds_before
            )
        return AllocationResult(
            loads=loads,
            arrival_rate=arrival_rate,
            bids=bids,
            total_latency=float(np.dot(bids, loads**2)),
        )

    def _reconcile(
        self, names: list[str], bids: np.ndarray, arrival_rate: float
    ) -> None:
        wanted = dict(zip(names, (float(b) for b in bids)))
        if (
            self._state is None
            or self._state.arrival_rate != arrival_rate
            or not set(self._names) & set(wanted)
        ):
            self._state = IncrementalPRState(
                np.array([wanted[n] for n in names]), arrival_rate
            )
            self._names = list(names)
            self.rebuilds += 1
            return
        for name in [n for n in self._names if n not in wanted]:
            index = self._names.index(name)
            self._state.remove_machine(index)
            del self._names[index]
            self.incremental_ops += 1
        for index, name in enumerate(self._names):
            bid = wanted[name]
            if bid != self._state.bids[index]:
                self._state.update_bid(index, bid)
                self.incremental_ops += 1
        for name in names:
            if name not in self._names:
                self._state.add_machine(wanted[name])
                self._names.append(name)
                self.incremental_ops += 1


class _SupervisedNode:
    """Per-round wrapper: applies injected faults, counts payment notices."""

    def __init__(self, inner: MachineNode, fault=None) -> None:
        self.inner = inner
        self.fault = fault
        self.payment_notices = 0
        self._bid_requests_ignored = 0
        self._report_requests_ignored = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def machine(self) -> LinearLatencyMachine:
        return self.inner.machine

    def _crashed(self, point: str) -> bool:
        return (
            self.fault is not None
            and self.fault.kind == "crash"
            and self.fault.point == point
        )

    def handle(self, message: Message, sim: Simulator) -> None:
        if isinstance(message, PaymentNotice):
            self.payment_notices += 1  # counted even if the node is dead
        if self._crashed("immediately"):
            return
        if (
            isinstance(message, BidRequest)
            and self.fault is not None
            and self.fault.kind == "withhold_bid"
            and self._bid_requests_ignored < self.fault.count
        ):
            self._bid_requests_ignored += 1
            return
        self.inner.handle(message, sim)

    def report_completion(self) -> None:
        if self._crashed("immediately") or self._crashed("after_bid"):
            return
        if (
            self.fault is not None
            and self.fault.kind == "withhold_report"
            and self._report_requests_ignored < self.fault.count
        ):
            self._report_requests_ignored += 1
            return
        self.inner.report_completion()


class RoundSupervisor:
    """Drive the verification mechanism as a supervised multi-round loop.

    Parameters
    ----------
    agents:
        The strategic machine owners, one per machine; machine ``k`` is
        named ``C{k+1}`` unless ``machine_names`` overrides it.
    arrival_rate:
        Total job rate ``R`` allocated every round.
    mechanism:
        Payment rule; defaults to the paper's
        :class:`~repro.mechanism.VerificationMechanism`.
    quarantine:
        Circuit-breaker policy (see
        :class:`~repro.resilience.QuarantinePolicy`).
    backoff:
        Retry pacing for missed bids/reports.
    max_bid_attempts / max_report_attempts:
        Retry budget per phase before a machine is excluded/withheld.
    duration:
        Job-generation window per round (simulated seconds).
    detector_threshold / detector_slack:
        CUSUM parameters for the per-machine slowdown detectors.
    deterministic_service:
        Run machines with noise-free service times (default), making
        execution-value estimates exact and the mechanism invariants
        sharp; set ``False`` for stochastic service.
    rng:
        Randomness source for workloads, retries, and service noise.
    execution:
        Job execution engine per round, as in
        :func:`~repro.protocol.run_protocol`: ``"event"``,
        ``"batched"``, or ``"auto"`` (default; resolves to the batched
        engine — bit-identical under deterministic service).
    remediation:
        Optional :class:`~repro.remediation.RemediationPipeline`.  When
        set, every completed round is fed through the closed-loop
        detect → propose → shadow-verify → schedule pipeline, whose
        applied actions adjust this supervisor (quarantine state, bid
        overrides, detector calibration, skipped rounds) before the
        next round runs.
    shards / shard_executor:
        With ``shards > 1``, clean rounds (no injected faults, no
        message drops, no coordinator crash) run through the sharded
        coordinator service
        (:class:`~repro.distributed.ShardedCoordinatorService`) in
        exact-aggregation mode: the admitted machines are partitioned
        over that many coordinator workers and the round is
        bit-identical to the monolithic path on the same seed (the
        parity suite pins this).  Faulted rounds fall back to the
        monolithic message-driven path, which the chaos machinery
        instruments.  ``shard_executor`` picks the stage executor
        (``"serial"``, ``"async"``, or ``"process"``; bit-parity under
        stochastic service requires ``"serial"``).
    arrival_schedule:
        Optional nonstationary arrival process
        (:class:`~repro.system.workload.ArrivalSchedule`).  When set,
        round ``k`` draws its jobs by thinning over the absolute window
        ``[k*duration, (k+1)*duration)`` and the allocator/mechanism see
        the window's equivalent constant rate ``∫R/duration`` instead
        of the fixed ``arrival_rate`` (which then only seeds the
        attribute).  Clean rounds stay on the monolithic or fused path
        — the sharded fast path assumes a stationary rate and is
        skipped while a schedule is active.
    horizon:
        When true, :meth:`run` drives the horizon-fused engine
        (:func:`repro.protocol.horizon.run_horizon`): maximal fault-free
        segments are evaluated as stacked broadcasts, de-fusing to
        :meth:`run_round` at every chaos/remediation event boundary,
        with results bit-identical to the sequential loop on the same
        seed.
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        arrival_rate: float,
        *,
        mechanism: Mechanism | None = None,
        quarantine: QuarantinePolicy | None = None,
        backoff: BackoffPolicy | None = None,
        max_bid_attempts: int = 3,
        max_report_attempts: int = 2,
        duration: float = 40.0,
        detector_threshold: float = 15.0,
        detector_slack: float = 0.25,
        deterministic_service: bool = True,
        rng: np.random.Generator | None = None,
        machine_names: Sequence[str] | None = None,
        execution: str = "auto",
        remediation: "RemediationPipeline | None" = None,
        shards: int = 1,
        shard_executor: str = "serial",
        arrival_schedule: "ArrivalSchedule | None" = None,
        horizon: bool = False,
    ) -> None:
        if len(agents) < 2:
            raise ValueError("the supervisor needs at least two machines")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if machine_names is None:
            machine_names = [f"C{i + 1}" for i in range(len(agents))]
        if len(machine_names) != len(agents):
            raise ValueError("machine_names must match agents in length")
        if max_bid_attempts < 0 or max_report_attempts < 0:
            raise ValueError("retry budgets must be non-negative")
        self.agents: dict[str, Agent] = dict(zip(machine_names, agents))
        self.arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        self.mechanism = mechanism if mechanism is not None else VerificationMechanism()
        self.quarantine = quarantine if quarantine is not None else QuarantinePolicy()
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.max_bid_attempts = int(max_bid_attempts)
        self.max_report_attempts = int(max_report_attempts)
        self.duration = check_positive_scalar(duration, "duration")
        self.detector_threshold = check_positive_scalar(
            detector_threshold, "detector_threshold"
        )
        if detector_slack < 0.0:
            raise ValueError("detector_slack must be non-negative")
        self.detector_slack = float(detector_slack)
        self.deterministic_service = bool(deterministic_service)
        self.execution = resolve_execution(execution)
        self.shards = int(shards)
        self.shard_executor = shard_executor
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.arrival_schedule = arrival_schedule
        self.horizon = bool(horizon)
        for name in machine_names:
            self.quarantine.admit(name)
        self._allocator = _IncrementalAllocator()
        self._round_index = 0
        self.remediation = remediation
        #: Remediation-imposed effective declared values (name -> bid);
        #: consumed by every round's SupervisedCoordinator.
        self.bid_overrides: dict[str, float] = {}
        #: Rounds the supervisor will void outright before routing any
        #: jobs — the remediation pipeline's emergency brake.
        self.skip_rounds = 0

    # ------------------------------------------------------------ queries

    @property
    def allocator(self) -> _IncrementalAllocator:
        """The cross-round incremental PR allocator (for inspection)."""
        return self._allocator

    @property
    def machine_names(self) -> list[str]:
        """All managed machine names, in registration order."""
        return list(self.agents)

    def honest_names(self) -> set[str]:
        """Machines whose agent bids and executes its true value."""
        return {
            name
            for name, agent in self.agents.items()
            if agent.bid() == agent.true_value
            and agent.execution_value() == agent.true_value
        }

    def round_rate(self, index: int) -> float:
        """The scalar arrival rate round ``index`` is priced at.

        The fixed ``arrival_rate`` without a schedule; with one, the
        window's equivalent constant rate ``∫R / duration`` over
        ``[index*duration, (index+1)*duration)``.
        """
        if self.arrival_schedule is None:
            return self.arrival_rate
        start = index * self.duration
        return float(
            self.arrival_schedule.mean_rate(start, start + self.duration)
        )

    def _generate_times(self, index: int) -> np.ndarray:
        """Round ``index``'s arrival times (relative to the round start).

        The single generation point both the sequential round and the
        horizon-fused engine call, so the two paths consume the RNG
        stream identically draw for draw.
        """
        if self.arrival_schedule is None:
            workload = PoissonWorkload(self.arrival_rate, self._rng)
            return workload.generate_times(self.duration)
        return self.arrival_schedule.generate_times(
            self._rng, index * self.duration, self.duration
        )

    # ------------------------------------------------------------ rounds

    def run(self, n_rounds: int, fault_plan=None) -> SupervisorReport:
        """Drive ``n_rounds`` rounds, optionally under a fault plan.

        With ``horizon=True`` the rounds run through the horizon-fused
        engine (same results bit for bit, de-fusing at fault
        boundaries); otherwise one :meth:`run_round` per iteration.
        """
        if self.horizon:
            from repro.protocol.horizon import run_horizon

            return run_horizon(self, n_rounds, fault_plan)
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        report = SupervisorReport()
        for k in range(n_rounds):
            faults = fault_plan[k] if fault_plan is not None else None
            report.rounds.append(self.run_round(faults))
        return report

    def run_round(self, faults: "RoundFaults | None" = None) -> RoundResult:
        """Run one supervised round (optionally with injected faults).

        The round runs inside a ``supervisor.round`` span with
        ``supervisor.{bidding,execution,reporting,detection}`` children,
        and its observables (retries, voids, restarts, jobs routed,
        open quarantines) are recorded into the active instrumentation —
        all no-ops unless :func:`repro.observability.enable` (or the
        ``repro metrics`` command) turned the layer on.
        """
        with trace_span("supervisor.round", index=self._round_index):
            result = self._run_round(faults)
        record_counter("supervisor.rounds")
        if result.voided:
            record_counter("supervisor.rounds_voided")
        if result.bid_retries:
            record_counter("supervisor.bid_retries", result.bid_retries)
        if result.report_retries:
            record_counter("supervisor.report_retries", result.report_retries)
        if result.coordinator_restarts:
            record_counter(
                "supervisor.coordinator_restarts", result.coordinator_restarts
            )
        observe_value("supervisor.jobs_routed", result.jobs_routed)
        record_gauge("resilience.quarantine.open", len(result.quarantined))
        if self.remediation is not None:
            with trace_span("supervisor.remediation", index=result.index):
                self.remediation.process_round(self, result)
        return result

    def _run_round_sharded(
        self,
        index: int,
        admitted: list[str],
        probes: list[str],
        quarantined: list[str],
    ) -> RoundResult:
        """Run one clean round through the sharded coordinator service.

        The service is configured for bit-parity with the monolithic
        path: exact aggregation (the root reassembles the canonical
        arrays), global workload (the round consumes the supervisor's
        RNG stream exactly as ``on_allocated`` would), the incremental
        PR allocator, and the supervisor's remediation overrides and
        CUSUM detector settings forwarded to every shard.
        """
        from repro.distributed.service import ShardedCoordinatorService

        service = ShardedCoordinatorService(
            [self.agents[n] for n in admitted],
            self.arrival_rate,
            shards=min(self.shards, len(admitted)),
            mechanism=self.mechanism,
            duration=self.duration,
            executor=self.shard_executor,
            deterministic_service=self.deterministic_service,
            rng=self._rng,
            machine_names=list(admitted),
            allocator=self._allocator.allocate,
            bid_overrides=dict(self.bid_overrides),
            detector_threshold=self.detector_threshold,
            detector_slack=self.detector_slack,
        )
        try:
            shard_round = service.run_round()
        finally:
            service.close()
        record_counter("supervisor.sharded_rounds")

        outcome = shard_round.outcome
        assert outcome is not None  # exact mode always prices at the root
        names = shard_round.names
        loads = {n: float(x) for n, x in zip(names, outcome.loads)}
        utilities = {
            n: float(u) for n, u in zip(names, outcome.payments.utility)
        }
        payments = {n: amounts[0] for n, amounts in shard_round.payments.items()}
        alerts = list(shard_round.alerts)
        for name in alerts:
            record_counter("supervisor.slowdown_alerts")
            annotate("slowdown.alert", machine=name)

        for name in admitted:
            if name in alerts:
                self.quarantine.record_failure(name, "slowdown_alert")
            else:
                self.quarantine.record_success(name)

        return RoundResult(
            index=index,
            participants=list(admitted),
            probes=probes,
            quarantined=quarantined,
            excluded=[],
            withheld=[],
            alerts=alerts,
            faulted=[],
            fault_kinds={},
            voided=False,
            outcome=outcome,
            loads=loads,
            payments=payments,
            utilities=utilities,
            payment_notices=dict(shard_round.payment_notices),
            bid_retries=0,
            report_retries=0,
            coordinator_restarts=shard_round.shard_restarts,
            arrival_rate=self.arrival_rate,
            jobs_routed=shard_round.jobs_routed,
        )

    def _run_round(self, faults: "RoundFaults | None") -> RoundResult:
        """The round body :meth:`run_round` wraps with instrumentation."""
        index = self._round_index
        self._round_index += 1
        rate = self.round_rate(index)

        admitted = self.quarantine.begin_round()
        probes = [
            n
            for n in admitted
            if self.quarantine.state_of(n) is CircuitState.HALF_OPEN
        ]
        quarantined = self.quarantine.quarantined()
        machine_faults = dict(getattr(faults, "machine_faults", {}) or {})
        machine_faults = {
            n: f for n, f in machine_faults.items() if n in admitted
        }
        drop = float(getattr(faults, "drop_probability", 0.0) or 0.0)
        coordinator_crash = getattr(faults, "coordinator_crash", None)
        crash_after_payments = int(getattr(faults, "crash_after_payments", 1))

        def void_result(
            excluded: list[str],
            *,
            payment_notices: dict[str, int] | None = None,
            bid_retries: int = 0,
            restarts: int = 0,
        ) -> RoundResult:
            return RoundResult(
                index=index,
                participants=list(admitted),
                probes=probes,
                quarantined=quarantined,
                excluded=excluded,
                withheld=[],
                alerts=[],
                faulted=sorted(machine_faults),
                fault_kinds={n: f.kind for n, f in machine_faults.items()},
                voided=True,
                outcome=None,
                loads={},
                payments={},
                utilities={},
                payment_notices=payment_notices or {},
                bid_retries=bid_retries,
                report_retries=0,
                coordinator_restarts=restarts,
                arrival_rate=rate,
                jobs_routed=0,
            )

        if self.skip_rounds > 0:
            # A remediation action voided this round pre-emptively: no
            # jobs are routed and nobody is paid while the operators
            # (or the pipeline itself) re-establish a safe state.
            self.skip_rounds -= 1
            record_counter("supervisor.rounds_skipped")
            return void_result(excluded=[])

        if len(admitted) < 2:
            # Too few live machines to price a round; degrade by skipping.
            return void_result(excluded=list(admitted))

        if (
            self.shards > 1
            and not machine_faults
            and drop == 0.0
            and coordinator_crash is None
            and self.arrival_schedule is None
        ):
            # Clean rounds shard; faulted rounds need the message-driven
            # path (drops, crashes, and probes live in the network
            # machinery the chaos harness instruments).
            return self._run_round_sharded(index, admitted, probes, quarantined)

        # ---------------------------------------------------------- wiring
        sim = Simulator()
        if drop > 0.0:
            network = ReliableNetwork(sim, drop, self._rng)
        else:
            network = SimulatedNetwork(sim)

        sampler = (
            (lambda mean, _rng: mean) if self.deterministic_service else None
        )
        batch_sampler = (
            (lambda mean, size, _rng: np.full(size, mean))
            if self.deterministic_service
            else None
        )
        nodes: dict[str, _SupervisedNode] = {}
        for name in admitted:
            agent = self.agents[name]
            execution_value = agent.execution_value()
            fault = machine_faults.get(name)
            if fault is not None and fault.kind == "slow_execution":
                execution_value *= fault.slowdown
            machine = LinearLatencyMachine(
                name,
                execution_value,
                self._rng,
                service_sampler=sampler,
                batch_service_sampler=batch_sampler,
            )
            node = _SupervisedNode(
                MachineNode(name=name, agent=agent, machine=machine, network=network),
                fault=fault,
            )
            network.register(name, node.handle)
            nodes[name] = node

        jobs_routed = 0
        current: dict[str, SupervisedCoordinator] = {}

        def on_allocated(loads: np.ndarray) -> None:
            nonlocal jobs_routed
            names = current["coordinator"].machine_names
            for name, load in zip(names, loads):
                nodes[name].machine.configure(float(load))
            start = sim.now
            times = self._generate_times(index)
            if self.execution == "batched":
                assignments = split_assignments(
                    int(times.size), loads / loads.sum(), self._rng
                )
                jobs_routed = dispatch_batched(
                    sim,
                    [nodes[name].machine for name in names],
                    start + times,
                    assignments,
                )
                return
            jobs = [
                Job(job_id=i, arrival_time=float(t))
                for i, t in enumerate(times)
            ]
            jobs_routed = len(jobs)
            buckets = split_workload(jobs, loads / loads.sum(), self._rng)
            for name, bucket in zip(names, buckets):
                node = nodes[name]
                for job in bucket:
                    sim.schedule_at(
                        start + job.arrival_time,
                        lambda s, n=node, j=job: n.machine.submit(s, j),
                    )

        store = CheckpointStore()
        coordinator = SupervisedCoordinator(
            mechanism=self.mechanism,
            machine_names=list(admitted),
            arrival_rate=rate,
            network=network,
            on_allocated=on_allocated,
            allocator=self._allocator.allocate,
            checkpoint_store=store,
            bid_overrides=dict(self.bid_overrides),
        )
        if coordinator_crash == "mid_payment":
            coordinator.fail_after_payments = crash_after_payments
        current["coordinator"] = coordinator
        network.register(
            COORDINATOR_NAME,
            lambda message, s: current["coordinator"].handle(message, s),
        )
        restarts = 0

        def restart_coordinator() -> None:
            nonlocal restarts
            checkpoint = store.load()
            assert checkpoint is not None, "no checkpoint to restore from"
            restored = SupervisedCoordinator.restore(
                checkpoint,
                mechanism=self.mechanism,
                network=network,
                on_allocated=on_allocated,
                checkpoint_store=store,
                allocator=self._allocator.allocate,
            )
            current["coordinator"] = restored
            restarts += 1
            record_counter("resilience.coordinator.restarts")
            annotate(
                "coordinator.restarted", phase=ProtocolPhase(checkpoint.phase).value
            )
            restored.resume()

        # --------------------------------------------------------- bidding
        with trace_span("supervisor.bidding"):
            coordinator.start()
            sim.run()
            if coordinator_crash == "during_bidding":
                # The process dies while bids are still arriving; the
                # replacement finds no announced allocation and voids.
                restart_coordinator()
            bid_retries = 0
            attempt = 0
            while (
                current["coordinator"].phase is ProtocolPhase.BIDDING
                and attempt < self.max_bid_attempts
            ):
                missing = current["coordinator"].pending_bidders
                delay = self.backoff.delay(attempt, self._rng)
                for name in missing:
                    sim.schedule(
                        delay,
                        lambda s, n=name: network.send(
                            BidRequest(sender=COORDINATOR_NAME, receiver=n)
                        ),
                    )
                bid_retries += len(missing)
                attempt += 1
                sim.run()
            current["coordinator"].close_bidding(void_if_empty=True)

        if current["coordinator"].phase is ProtocolPhase.VOIDED:
            if coordinator_crash != "during_bidding":
                # Machines that never bid caused the void; hold them
                # accountable (a coordinator-crash void blames nobody).
                for name in current["coordinator"].pending_bidders:
                    self.quarantine.record_failure(name, "missed_bid")
            return void_result(
                excluded=list(current["coordinator"].excluded),
                payment_notices={n: nodes[n].payment_notices for n in nodes},
                bid_retries=bid_retries,
                restarts=restarts,
            )

        # ------------------------------------------------------- execution
        with trace_span("supervisor.execution"):
            sim.run()  # drain every routed job to completion
            if coordinator_crash == "after_allocation":
                restart_coordinator()  # resumes in EXECUTING from the checkpoint

        # ------------------------------------------------------- reporting
        report_retries = 0
        with trace_span("supervisor.reporting"):
            try:
                for name in list(current["coordinator"].machine_names):
                    nodes[name].report_completion()
                sim.run()
                attempt = 0
                while (
                    current["coordinator"].phase is ProtocolPhase.EXECUTING
                    and attempt < self.max_report_attempts
                ):
                    missing = current["coordinator"].pending_reporters
                    delay = self.backoff.delay(attempt, self._rng)
                    for name in missing:
                        sim.schedule(
                            delay, lambda s, n=name: nodes[n].report_completion()
                        )
                    report_retries += len(missing)
                    attempt += 1
                    sim.run()
                current["coordinator"].close_reporting()
            except CoordinatorCrash:
                restart_coordinator()  # re-derives the outcome, pays the rest
            sim.run()  # deliver the remaining payment notices

        coordinator = current["coordinator"]
        assert coordinator.phase is ProtocolPhase.DONE
        assert coordinator.outcome is not None
        outcome = coordinator.outcome

        names = coordinator.machine_names
        loads = {n: float(x) for n, x in zip(names, outcome.loads)}
        utilities = {
            n: float(u) for n, u in zip(names, outcome.payments.utility)
        }
        payments = {n: amounts[0] for n, amounts in coordinator.payments_sent.items()}

        # ------------------------------------------------- online detection
        alerts: list[str] = []
        withheld = set(coordinator.withheld)
        declared = dict(zip(names, outcome.allocation.bids))
        with trace_span("supervisor.detection"):
            for name in names:
                if name in withheld or loads[name] <= 0.0:
                    continue
                sojourns = nodes[name].machine.sojourn_times
                if not sojourns:
                    continue
                detector = CusumSlowdownDetector(
                    float(declared[name]),
                    loads[name],
                    threshold=self.detector_threshold,
                    slack=self.detector_slack,
                )
                if detector.observe_many(np.asarray(sojourns)) is not None:
                    alerts.append(name)
                    record_counter("supervisor.slowdown_alerts")
                    annotate("slowdown.alert", machine=name)

        # ------------------------------------------------------ quarantine
        for name in admitted:
            if name in coordinator.excluded:
                self.quarantine.record_failure(name, "missed_bid")
            elif name in withheld:
                self.quarantine.record_failure(name, "missed_report")
            elif name in alerts:
                self.quarantine.record_failure(name, "slowdown_alert")
            else:
                self.quarantine.record_success(name)

        return RoundResult(
            index=index,
            participants=list(admitted),
            probes=probes,
            quarantined=quarantined,
            excluded=list(coordinator.excluded),
            withheld=sorted(withheld),
            alerts=alerts,
            faulted=sorted(machine_faults),
            fault_kinds={n: f.kind for n, f in machine_faults.items()},
            voided=False,
            outcome=outcome,
            loads=loads,
            payments=payments,
            utilities=utilities,
            payment_notices={n: nodes[n].payment_notices for n in nodes},
            bid_retries=bid_retries,
            report_retries=report_retries,
            coordinator_restarts=restarts,
            arrival_rate=rate,
            jobs_routed=jobs_routed,
        )
