"""Mechanism invariants that must survive every fault schedule.

The chaos harness re-checks these after *every* supervised round; a
violation means the resilience layer broke the economics the paper
proves, not merely that a round was slow or skipped:

* **feasibility** — a non-voided round allocates exactly the full
  arrival rate over the live machines: ``sum_i x_i = R``;
* **no pay without verification** — a machine whose execution could
  not be verified (missed report, so ``withheld``) receives a zero
  payment, and machines outside the round receive no payment notice
  at all;
* **at-most-once payment** — every machine receives at most one
  payment notice per round, and exactly one if it stayed in the round
  — including across a coordinator crash/restore (no double-pay, no
  lost payment);
* **ledger consistency** — the amount each machine was sent matches
  the mechanism outcome recomputed for the round;
* **voluntary participation** — in rounds where every surviving
  participant executed as declared (no slowdown faults, nobody
  imputed), honest machines end with non-negative utility.  Rounds
  containing a slow or imputed machine are exempt: a deviator
  genuinely can drag the realised latency — and with it everyone's
  bonus — below zero, which is the mechanism's design, not a bug of
  the supervision layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.supervisor import RoundResult

__all__ = ["InvariantViolation", "InvariantError", "check_round_invariants"]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant in one round."""

    round_index: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"round {self.round_index}: [{self.invariant}] {self.detail}"


class InvariantError(AssertionError):
    """Raised by the chaos harness when a round breaks an invariant."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        super().__init__(
            "; ".join(str(v) for v in violations) or "no violations"
        )


def check_round_invariants(
    result: RoundResult,
    *,
    honest_names: set[str] | None = None,
    tol: float = 1e-9,
) -> list[InvariantViolation]:
    """All invariant violations of one supervised round (empty if sound)."""
    violations: list[InvariantViolation] = []

    def violated(invariant: str, detail: str) -> None:
        violations.append(InvariantViolation(result.index, invariant, detail))

    if result.voided:
        # A voided round must have routed nothing and paid nobody.
        if result.jobs_routed != 0:
            violated("voided", f"voided round routed {result.jobs_routed} jobs")
        paid = [n for n, count in result.payment_notices.items() if count > 0]
        if paid:
            violated("voided", f"voided round paid {paid}")
        return violations

    assert result.outcome is not None
    total = sum(result.loads.values())
    if abs(total - result.arrival_rate) > tol * max(1.0, result.arrival_rate):
        violated(
            "feasibility",
            f"allocated {total!r} of arrival rate {result.arrival_rate!r}",
        )

    live = set(result.loads)
    for name in result.withheld:
        if result.payments.get(name, 0.0) != 0.0:
            violated(
                "unverified-paid",
                f"withheld machine {name} was paid {result.payments[name]!r}",
            )
    for name, count in result.payment_notices.items():
        if name in live:
            if count != 1:
                violated(
                    "at-most-once",
                    f"machine {name} received {count} payment notices",
                )
        elif count != 0:
            violated(
                "at-most-once",
                f"machine {name} is outside the round but received "
                f"{count} payment notices",
            )

    payments = result.outcome.payments
    order = list(result.loads)
    for k, name in enumerate(order):
        expected = 0.0 if name in result.withheld else float(payments.payment[k])
        sent = result.payments.get(name)
        if sent is None:
            violated("ledger", f"no payment recorded for live machine {name}")
        elif abs(sent - expected) > tol * max(1.0, abs(expected)):
            violated(
                "ledger",
                f"machine {name} was sent {sent!r}, outcome says {expected!r}",
            )

    # Voluntary participation: only meaningful when nobody distorted the
    # realised latency (see module docstring).
    distorted = bool(result.withheld) or any(
        kind == "slow_execution" and name in live
        for name, kind in result.fault_kinds.items()
    )
    if honest_names and not distorted:
        for name in live:
            if name not in honest_names:
                continue
            utility = result.utilities.get(name, 0.0)
            if utility < -tol:
                violated(
                    "voluntary-participation",
                    f"honest machine {name} ended with utility {utility!r}",
                )
    return violations
