"""Chaos injection: seeded randomized fault schedules + invariant checks.

The resilience layer earns its keep only if the mechanism's economics
survive arbitrary interleavings of machine crashes, message loss,
withheld messages, execution slowdowns, and coordinator deaths.  This
module makes that claim testable:

* a :class:`FaultPlan` expands a seed into a fully deterministic
  per-round schedule of :class:`RoundFaults` — the same seed always
  produces the same chaos, so any violation is replayable;
* a :class:`ChaosHarness` drives a
  :class:`~repro.resilience.RoundSupervisor` through the plan and runs
  :func:`~repro.resilience.check_round_invariants` after every round,
  either raising on the first violation or collecting all of them.

A clean harness run is the headline acceptance check of the layer:
*N rounds of mixed chaos, zero invariant violations* (see
``benchmarks/bench_resilience.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability.instrumentation import annotate, record_counter, trace_span
from repro.resilience.invariants import (
    InvariantError,
    InvariantViolation,
    check_round_invariants,
)
from repro.resilience.supervisor import RoundResult, RoundSupervisor

__all__ = [
    "MachineFault",
    "RoundFaults",
    "FaultPlan",
    "ChaosReport",
    "ChaosHarness",
]

_FAULT_KINDS = ("crash", "withhold_bid", "withhold_report", "slow_execution")
_CRASH_POINTS = ("immediately", "after_bid")
_COORDINATOR_CRASHES = ("during_bidding", "after_allocation", "mid_payment")


@dataclass(frozen=True)
class MachineFault:
    """One machine's misbehaviour for one round.

    Kinds: ``"crash"`` (dead from ``point`` onward), ``"withhold_bid"``
    / ``"withhold_report"`` (ignore the first ``count`` requests — a
    transient fault the retry layer can heal), and
    ``"slow_execution"`` (execute ``slowdown`` times slower than the
    declared value — the behaviour CUSUM monitoring must catch).
    """

    kind: str
    point: str = "immediately"
    count: int = 1
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"kind must be one of {_FAULT_KINDS}")
        if self.kind == "crash" and self.point not in _CRASH_POINTS:
            raise ValueError(f"point must be one of {_CRASH_POINTS}")
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (capacity constraint)")


@dataclass(frozen=True)
class RoundFaults:
    """The full fault configuration of one round."""

    drop_probability: float = 0.0
    machine_faults: dict[str, MachineFault] = field(default_factory=dict)
    coordinator_crash: str | None = None
    crash_after_payments: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if (
            self.coordinator_crash is not None
            and self.coordinator_crash not in _COORDINATOR_CRASHES
        ):
            raise ValueError(
                f"coordinator_crash must be one of {_COORDINATOR_CRASHES}"
            )
        if self.crash_after_payments < 0:
            raise ValueError("crash_after_payments must be non-negative")

    @property
    def is_clean(self) -> bool:
        """True when this round injects nothing at all."""
        return (
            self.drop_probability == 0.0
            and not self.machine_faults
            and self.coordinator_crash is None
        )


class FaultPlan:
    """A deterministic, replayable sequence of per-round fault schedules."""

    def __init__(self, rounds: list[RoundFaults]) -> None:
        self.rounds = list(rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    def __getitem__(self, index: int) -> RoundFaults:
        return self.rounds[index]

    def __iter__(self):
        return iter(self.rounds)

    @property
    def n_machine_faults(self) -> int:
        """Total machine faults scheduled across all rounds."""
        return sum(len(r.machine_faults) for r in self.rounds)

    @property
    def n_coordinator_crashes(self) -> int:
        """Rounds with a scheduled coordinator crash."""
        return sum(1 for r in self.rounds if r.coordinator_crash is not None)

    @classmethod
    def generate(
        cls,
        n_rounds: int,
        machine_names: list[str],
        seed: int,
        *,
        p_machine_fault: float = 0.15,
        p_coordinator_crash: float = 0.1,
        p_lossy_round: float = 0.3,
        drop_range: tuple[float, float] = (0.05, 0.3),
        slowdown_range: tuple[float, float] = (2.0, 4.0),
        max_faulty_fraction: float = 0.5,
    ) -> "FaultPlan":
        """Expand a seed into a mixed crash/loss/slowdown schedule.

        Each round: every machine is independently faulted with
        probability ``p_machine_fault`` (kind drawn uniformly from
        crash / withhold-bid / withhold-report / slow-execution),
        capped so at most ``max_faulty_fraction`` of the fleet is
        faulty at once; the round's links are lossy with probability
        ``p_lossy_round``; and the coordinator crashes with
        probability ``p_coordinator_crash`` at a uniformly chosen
        point.  Entirely determined by ``seed``.
        """
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        if not machine_names:
            raise ValueError("machine_names must be non-empty")
        rng = np.random.default_rng(seed)
        max_faulty = max(1, int(max_faulty_fraction * len(machine_names)))
        rounds: list[RoundFaults] = []
        for _ in range(n_rounds):
            faulty = [
                name
                for name in machine_names
                if rng.random() < p_machine_fault
            ]
            if len(faulty) > max_faulty:
                chosen = rng.choice(len(faulty), size=max_faulty, replace=False)
                faulty = [faulty[int(i)] for i in sorted(chosen)]
            machine_faults: dict[str, MachineFault] = {}
            for name in faulty:
                kind = _FAULT_KINDS[int(rng.integers(len(_FAULT_KINDS)))]
                if kind == "crash":
                    point = _CRASH_POINTS[int(rng.integers(len(_CRASH_POINTS)))]
                    machine_faults[name] = MachineFault(kind, point=point)
                elif kind in ("withhold_bid", "withhold_report"):
                    machine_faults[name] = MachineFault(
                        kind, count=int(rng.integers(1, 3))
                    )
                else:
                    machine_faults[name] = MachineFault(
                        kind,
                        slowdown=float(rng.uniform(*slowdown_range)),
                    )
            drop = 0.0
            if rng.random() < p_lossy_round:
                drop = float(rng.uniform(*drop_range))
            coordinator_crash = None
            crash_after_payments = 1
            if rng.random() < p_coordinator_crash:
                coordinator_crash = _COORDINATOR_CRASHES[
                    int(rng.integers(len(_COORDINATOR_CRASHES)))
                ]
                if coordinator_crash == "mid_payment":
                    crash_after_payments = int(
                        rng.integers(1, max(2, len(machine_names)))
                    )
            rounds.append(
                RoundFaults(
                    drop_probability=drop,
                    machine_faults=machine_faults,
                    coordinator_crash=coordinator_crash,
                    crash_after_payments=crash_after_payments,
                )
            )
        return cls(rounds)


@dataclass
class ChaosReport:
    """Outcome of one chaos run: per-round results plus violations."""

    rounds: list[RoundResult] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every round upheld every invariant."""
        return not self.violations

    @property
    def n_rounds(self) -> int:
        """Rounds driven."""
        return len(self.rounds)

    @property
    def n_voided(self) -> int:
        """Rounds voided (coordinator died early or nobody bid)."""
        return sum(1 for r in self.rounds if r.voided)

    @property
    def n_coordinator_restarts(self) -> int:
        """Coordinator crash/restore cycles survived."""
        return sum(r.coordinator_restarts for r in self.rounds)

    @property
    def n_alerts(self) -> int:
        """CUSUM slowdown alerts raised."""
        return sum(len(r.alerts) for r in self.rounds)

    @property
    def n_quarantine_events(self) -> int:
        """Rounds in which at least one machine sat out quarantined."""
        return sum(1 for r in self.rounds if r.quarantined)


class ChaosHarness:
    """Run a supervisor under a fault plan, checking invariants per round.

    Parameters
    ----------
    supervisor:
        The supervised multi-round loop to stress.
    plan:
        The deterministic fault schedule to inject.
    tol:
        Numeric tolerance for the invariant checks.
    stop_on_violation:
        Raise :class:`~repro.resilience.InvariantError` at the first
        violating round (default) instead of collecting violations
        into the report.
    """

    def __init__(
        self,
        supervisor: RoundSupervisor,
        plan: FaultPlan,
        *,
        tol: float = 1e-9,
        stop_on_violation: bool = True,
    ) -> None:
        self.supervisor = supervisor
        self.plan = plan
        self.tol = float(tol)
        self.stop_on_violation = bool(stop_on_violation)

    def run(self) -> ChaosReport:
        """Drive every planned round; return the full chaos report.

        Each round runs inside a ``chaos.round`` span whose annotations
        record exactly what was injected (``fault.injected`` per
        machine, ``fault.lossy_links``, ``fault.coordinator_crash``),
        so an exported trace is a replayable fault timeline.
        """
        report = ChaosReport()
        honest = self.supervisor.honest_names()
        for index, faults in enumerate(self.plan):
            with trace_span("chaos.round", index=index, clean=faults.is_clean):
                for name in sorted(faults.machine_faults):
                    fault = faults.machine_faults[name]
                    annotate("fault.injected", machine=name, kind=fault.kind)
                if faults.drop_probability > 0.0:
                    annotate(
                        "fault.lossy_links",
                        drop_probability=faults.drop_probability,
                    )
                if faults.coordinator_crash is not None:
                    annotate(
                        "fault.coordinator_crash",
                        point=faults.coordinator_crash,
                    )
                if faults.machine_faults:
                    record_counter(
                        "chaos.faults_injected", len(faults.machine_faults)
                    )
                result = self.supervisor.run_round(faults)
                violations = check_round_invariants(
                    result, honest_names=honest, tol=self.tol
                )
            report.rounds.append(result)
            if violations:
                record_counter("chaos.invariant_violations", len(violations))
                if self.stop_on_violation:
                    raise InvariantError(violations)
            report.violations.extend(violations)
        return report
