"""Chaos injection: seeded randomized fault schedules + invariant checks.

The resilience layer earns its keep only if the mechanism's economics
survive arbitrary interleavings of machine crashes, message loss,
withheld messages, execution slowdowns, and coordinator deaths.  This
module makes that claim testable:

* a :class:`FaultPlan` expands a seed into a fully deterministic
  per-round schedule of :class:`RoundFaults` — the same seed always
  produces the same chaos, so any violation is replayable;
* a :class:`ChaosHarness` drives a
  :class:`~repro.resilience.RoundSupervisor` through the plan and runs
  :func:`~repro.resilience.check_round_invariants` after every round,
  either raising on the first violation or collecting all of them.

A clean harness run is the headline acceptance check of the layer:
*N rounds of mixed chaos, zero invariant violations* (see
``benchmarks/bench_resilience.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.observability.instrumentation import annotate, record_counter, trace_span
from repro.resilience.invariants import (
    InvariantError,
    InvariantViolation,
    check_round_invariants,
)
from repro.resilience.supervisor import RoundResult, RoundSupervisor
from repro.types import AllocationResult, MechanismOutcome, PaymentResult

__all__ = [
    "CHAOS_SCHEMA_VERSION",
    "MachineFault",
    "RoundFaults",
    "FaultPlan",
    "ChaosReport",
    "ChaosHarness",
]

#: Serialisation format of FaultPlan/ChaosReport JSON; bump on
#: incompatible change so stale persisted scenarios fail loudly.
CHAOS_SCHEMA_VERSION = 1


def _check_schema_version(raw: Mapping[str, object], what: str) -> None:
    version = raw.get("schema_version")
    if version != CHAOS_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {what} schema version {version!r} "
            f"(this build reads {CHAOS_SCHEMA_VERSION})"
        )

_FAULT_KINDS = ("crash", "withhold_bid", "withhold_report", "slow_execution")
_CRASH_POINTS = ("immediately", "after_bid")
_COORDINATOR_CRASHES = ("during_bidding", "after_allocation", "mid_payment")


@dataclass(frozen=True)
class MachineFault:
    """One machine's misbehaviour for one round.

    Kinds: ``"crash"`` (dead from ``point`` onward), ``"withhold_bid"``
    / ``"withhold_report"`` (ignore the first ``count`` requests — a
    transient fault the retry layer can heal), and
    ``"slow_execution"`` (execute ``slowdown`` times slower than the
    declared value — the behaviour CUSUM monitoring must catch).
    """

    kind: str
    point: str = "immediately"
    count: int = 1
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"kind must be one of {_FAULT_KINDS}")
        if self.kind == "crash" and self.point not in _CRASH_POINTS:
            raise ValueError(f"point must be one of {_CRASH_POINTS}")
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (capacity constraint)")

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for persistence."""
        return {
            "kind": self.kind,
            "point": self.point,
            "count": self.count,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MachineFault":
        """Inverse of :meth:`to_dict` (re-validates every field)."""
        return cls(
            kind=str(payload["kind"]),
            point=str(payload.get("point", "immediately")),
            count=int(payload.get("count", 1)),
            slowdown=float(payload.get("slowdown", 2.0)),
        )


@dataclass(frozen=True)
class RoundFaults:
    """The full fault configuration of one round."""

    drop_probability: float = 0.0
    machine_faults: dict[str, MachineFault] = field(default_factory=dict)
    coordinator_crash: str | None = None
    crash_after_payments: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if (
            self.coordinator_crash is not None
            and self.coordinator_crash not in _COORDINATOR_CRASHES
        ):
            raise ValueError(
                f"coordinator_crash must be one of {_COORDINATOR_CRASHES}"
            )
        if self.crash_after_payments < 0:
            raise ValueError("crash_after_payments must be non-negative")

    @property
    def is_clean(self) -> bool:
        """True when this round injects nothing at all."""
        return (
            self.drop_probability == 0.0
            and not self.machine_faults
            and self.coordinator_crash is None
        )

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for persistence."""
        return {
            "drop_probability": self.drop_probability,
            "machine_faults": {
                name: fault.to_dict()
                for name, fault in self.machine_faults.items()
            },
            "coordinator_crash": self.coordinator_crash,
            "crash_after_payments": self.crash_after_payments,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RoundFaults":
        """Inverse of :meth:`to_dict` (re-validates every field)."""
        faults = payload.get("machine_faults", {})
        return cls(
            drop_probability=float(payload.get("drop_probability", 0.0)),
            machine_faults={
                str(name): MachineFault.from_dict(fault)
                for name, fault in faults.items()  # type: ignore[union-attr]
            },
            coordinator_crash=(
                None
                if payload.get("coordinator_crash") is None
                else str(payload["coordinator_crash"])
            ),
            crash_after_payments=int(payload.get("crash_after_payments", 1)),
        )


class FaultPlan:
    """A deterministic, replayable sequence of per-round fault schedules."""

    def __init__(self, rounds: list[RoundFaults]) -> None:
        self.rounds = list(rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    def __getitem__(self, index: int) -> RoundFaults:
        return self.rounds[index]

    def __iter__(self):
        return iter(self.rounds)

    @property
    def n_machine_faults(self) -> int:
        """Total machine faults scheduled across all rounds."""
        return sum(len(r.machine_faults) for r in self.rounds)

    @property
    def n_coordinator_crashes(self) -> int:
        """Rounds with a scheduled coordinator crash."""
        return sum(1 for r in self.rounds if r.coordinator_crash is not None)

    def to_json(self) -> str:
        """Serialise the plan so a chaos scenario can be replayed later."""
        return json.dumps(
            {
                "schema_version": CHAOS_SCHEMA_VERSION,
                "rounds": [r.to_dict() for r in self.rounds],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        """Rebuild a plan persisted by :meth:`to_json`."""
        raw = json.loads(payload)
        _check_schema_version(raw, "FaultPlan")
        return cls([RoundFaults.from_dict(r) for r in raw["rounds"]])

    @classmethod
    def generate(
        cls,
        n_rounds: int,
        machine_names: list[str],
        seed: int,
        *,
        p_machine_fault: float = 0.15,
        p_coordinator_crash: float = 0.1,
        p_lossy_round: float = 0.3,
        drop_range: tuple[float, float] = (0.05, 0.3),
        slowdown_range: tuple[float, float] = (2.0, 4.0),
        max_faulty_fraction: float = 0.5,
    ) -> "FaultPlan":
        """Expand a seed into a mixed crash/loss/slowdown schedule.

        Each round: every machine is independently faulted with
        probability ``p_machine_fault`` (kind drawn uniformly from
        crash / withhold-bid / withhold-report / slow-execution),
        capped so at most ``max_faulty_fraction`` of the fleet is
        faulty at once; the round's links are lossy with probability
        ``p_lossy_round``; and the coordinator crashes with
        probability ``p_coordinator_crash`` at a uniformly chosen
        point.  Entirely determined by ``seed``.
        """
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        if not machine_names:
            raise ValueError("machine_names must be non-empty")
        rng = np.random.default_rng(seed)
        max_faulty = max(1, int(max_faulty_fraction * len(machine_names)))
        rounds: list[RoundFaults] = []
        for _ in range(n_rounds):
            faulty = [
                name
                for name in machine_names
                if rng.random() < p_machine_fault
            ]
            if len(faulty) > max_faulty:
                chosen = rng.choice(len(faulty), size=max_faulty, replace=False)
                faulty = [faulty[int(i)] for i in sorted(chosen)]
            machine_faults: dict[str, MachineFault] = {}
            for name in faulty:
                kind = _FAULT_KINDS[int(rng.integers(len(_FAULT_KINDS)))]
                if kind == "crash":
                    point = _CRASH_POINTS[int(rng.integers(len(_CRASH_POINTS)))]
                    machine_faults[name] = MachineFault(kind, point=point)
                elif kind in ("withhold_bid", "withhold_report"):
                    machine_faults[name] = MachineFault(
                        kind, count=int(rng.integers(1, 3))
                    )
                else:
                    machine_faults[name] = MachineFault(
                        kind,
                        slowdown=float(rng.uniform(*slowdown_range)),
                    )
            drop = 0.0
            if rng.random() < p_lossy_round:
                drop = float(rng.uniform(*drop_range))
            coordinator_crash = None
            crash_after_payments = 1
            if rng.random() < p_coordinator_crash:
                coordinator_crash = _COORDINATOR_CRASHES[
                    int(rng.integers(len(_COORDINATOR_CRASHES)))
                ]
                if coordinator_crash == "mid_payment":
                    crash_after_payments = int(
                        rng.integers(1, max(2, len(machine_names)))
                    )
            rounds.append(
                RoundFaults(
                    drop_probability=drop,
                    machine_faults=machine_faults,
                    coordinator_crash=coordinator_crash,
                    crash_after_payments=crash_after_payments,
                )
            )
        return cls(rounds)


def _outcome_to_dict(outcome: MechanismOutcome) -> dict[str, object]:
    """Serialisable form of a mechanism outcome (metadata is dropped)."""
    return {
        "allocation": {
            "loads": [float(x) for x in outcome.allocation.loads],
            "arrival_rate": float(outcome.allocation.arrival_rate),
            "bids": [float(b) for b in outcome.allocation.bids],
            "total_latency": float(outcome.allocation.total_latency),
        },
        "payments": {
            "compensation": [float(x) for x in outcome.payments.compensation],
            "bonus": [float(x) for x in outcome.payments.bonus],
            "valuation": [float(x) for x in outcome.payments.valuation],
        },
        "execution_values": [float(x) for x in outcome.execution_values],
        "true_values": (
            None
            if outcome.true_values is None
            else [float(x) for x in outcome.true_values]
        ),
    }


def _outcome_from_dict(raw: Mapping[str, object]) -> MechanismOutcome:
    allocation = raw["allocation"]
    payments = raw["payments"]
    return MechanismOutcome(
        allocation=AllocationResult(
            loads=np.array(allocation["loads"]),
            arrival_rate=float(allocation["arrival_rate"]),
            bids=np.array(allocation["bids"]),
            total_latency=float(allocation["total_latency"]),
        ),
        payments=PaymentResult(
            compensation=np.array(payments["compensation"]),
            bonus=np.array(payments["bonus"]),
            valuation=np.array(payments["valuation"]),
        ),
        execution_values=np.array(raw["execution_values"]),
        true_values=(
            None
            if raw.get("true_values") is None
            else np.array(raw["true_values"])
        ),
    )


def _round_result_to_dict(result: RoundResult) -> dict[str, object]:
    return {
        "index": result.index,
        "participants": list(result.participants),
        "probes": list(result.probes),
        "quarantined": list(result.quarantined),
        "excluded": list(result.excluded),
        "withheld": list(result.withheld),
        "alerts": list(result.alerts),
        "faulted": list(result.faulted),
        "fault_kinds": dict(result.fault_kinds),
        "voided": result.voided,
        "outcome": (
            None if result.outcome is None else _outcome_to_dict(result.outcome)
        ),
        "loads": dict(result.loads),
        "payments": dict(result.payments),
        "utilities": dict(result.utilities),
        "payment_notices": dict(result.payment_notices),
        "bid_retries": result.bid_retries,
        "report_retries": result.report_retries,
        "coordinator_restarts": result.coordinator_restarts,
        "arrival_rate": result.arrival_rate,
        "jobs_routed": result.jobs_routed,
    }


def _round_result_from_dict(raw: Mapping[str, object]) -> RoundResult:
    return RoundResult(
        index=int(raw["index"]),
        participants=list(raw["participants"]),
        probes=list(raw["probes"]),
        quarantined=list(raw["quarantined"]),
        excluded=list(raw["excluded"]),
        withheld=list(raw["withheld"]),
        alerts=list(raw["alerts"]),
        faulted=list(raw["faulted"]),
        fault_kinds=dict(raw["fault_kinds"]),
        voided=bool(raw["voided"]),
        outcome=(
            None if raw["outcome"] is None else _outcome_from_dict(raw["outcome"])
        ),
        loads={n: float(x) for n, x in raw["loads"].items()},
        payments={n: float(x) for n, x in raw["payments"].items()},
        utilities={n: float(x) for n, x in raw["utilities"].items()},
        payment_notices={n: int(x) for n, x in raw["payment_notices"].items()},
        bid_retries=int(raw["bid_retries"]),
        report_retries=int(raw["report_retries"]),
        coordinator_restarts=int(raw["coordinator_restarts"]),
        arrival_rate=float(raw["arrival_rate"]),
        jobs_routed=int(raw["jobs_routed"]),
    )


@dataclass
class ChaosReport:
    """Outcome of one chaos run: per-round results plus violations."""

    rounds: list[RoundResult] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every round upheld every invariant."""
        return not self.violations

    @property
    def n_rounds(self) -> int:
        """Rounds driven."""
        return len(self.rounds)

    @property
    def n_voided(self) -> int:
        """Rounds voided (coordinator died early or nobody bid)."""
        return sum(1 for r in self.rounds if r.voided)

    @property
    def n_coordinator_restarts(self) -> int:
        """Coordinator crash/restore cycles survived."""
        return sum(r.coordinator_restarts for r in self.rounds)

    @property
    def n_alerts(self) -> int:
        """CUSUM slowdown alerts raised."""
        return sum(len(r.alerts) for r in self.rounds)

    @property
    def n_quarantine_events(self) -> int:
        """Rounds in which at least one machine sat out quarantined."""
        return sum(1 for r in self.rounds if r.quarantined)

    def to_json(self) -> str:
        """Serialise the full run record for offline replay/analysis.

        Outcome ``metadata`` mappings are dropped (they may hold live
        objects); everything a post-mortem or the remediation journal
        needs — loads, bids, payments, execution estimates, violations
        — round-trips losslessly.
        """
        return json.dumps(
            {
                "schema_version": CHAOS_SCHEMA_VERSION,
                "rounds": [_round_result_to_dict(r) for r in self.rounds],
                "violations": [
                    {
                        "round_index": v.round_index,
                        "invariant": v.invariant,
                        "detail": v.detail,
                    }
                    for v in self.violations
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ChaosReport":
        """Rebuild a report persisted by :meth:`to_json`."""
        raw = json.loads(payload)
        _check_schema_version(raw, "ChaosReport")
        return cls(
            rounds=[_round_result_from_dict(r) for r in raw["rounds"]],
            violations=[
                InvariantViolation(
                    round_index=int(v["round_index"]),
                    invariant=str(v["invariant"]),
                    detail=str(v["detail"]),
                )
                for v in raw["violations"]
            ],
        )


class ChaosHarness:
    """Run a supervisor under a fault plan, checking invariants per round.

    Parameters
    ----------
    supervisor:
        The supervised multi-round loop to stress.
    plan:
        The deterministic fault schedule to inject.
    tol:
        Numeric tolerance for the invariant checks.
    stop_on_violation:
        Raise :class:`~repro.resilience.InvariantError` at the first
        violating round (default) instead of collecting violations
        into the report.
    """

    def __init__(
        self,
        supervisor: RoundSupervisor,
        plan: FaultPlan,
        *,
        tol: float = 1e-9,
        stop_on_violation: bool = True,
    ) -> None:
        self.supervisor = supervisor
        self.plan = plan
        self.tol = float(tol)
        self.stop_on_violation = bool(stop_on_violation)

    def run(self) -> ChaosReport:
        """Drive every planned round; return the full chaos report.

        Each round runs inside a ``chaos.round`` span whose annotations
        record exactly what was injected (``fault.injected`` per
        machine, ``fault.lossy_links``, ``fault.coordinator_crash``),
        so an exported trace is a replayable fault timeline.
        """
        report = ChaosReport()
        honest = self.supervisor.honest_names()
        for index, faults in enumerate(self.plan):
            with trace_span("chaos.round", index=index, clean=faults.is_clean):
                for name in sorted(faults.machine_faults):
                    fault = faults.machine_faults[name]
                    annotate("fault.injected", machine=name, kind=fault.kind)
                if faults.drop_probability > 0.0:
                    annotate(
                        "fault.lossy_links",
                        drop_probability=faults.drop_probability,
                    )
                if faults.coordinator_crash is not None:
                    annotate(
                        "fault.coordinator_crash",
                        point=faults.coordinator_crash,
                    )
                if faults.machine_faults:
                    record_counter(
                        "chaos.faults_injected", len(faults.machine_faults)
                    )
                result = self.supervisor.run_round(faults)
                violations = check_round_invariants(
                    result, honest_names=honest, tol=self.tol
                )
            report.rounds.append(result)
            if violations:
                record_counter("chaos.invariant_violations", len(violations))
                if self.stop_on_violation:
                    raise InvariantError(violations)
            report.violations.extend(violations)
        return report
