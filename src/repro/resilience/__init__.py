"""Resilience layer: supervised rounds, quarantine, recovery, chaos.

The protocol layer (``repro.protocol``) runs *one* round of the
verification mechanism and already tolerates individual faults —
message loss, missed bids, missed reports.  This subpackage turns that
single round into a production-shaped *supervised loop* and makes its
fault-tolerance claims falsifiable:

* :class:`RoundSupervisor` drives repeated rounds over the DES
  substrate, retrying missed bids/reports with exponential backoff
  (:class:`BackoffPolicy`) before letting the coordinator exclude or
  impute anybody;
* :class:`QuarantinePolicy` is a per-machine circuit breaker
  (closed → open → half-open) fed by the coordinator's exclusions and
  the CUSUM slowdown alerts; quarantined machines sit out and their
  load is re-spread by the *incremental* PR allocator rather than a
  from-scratch rebuild;
* :class:`SupervisedCoordinator` + :class:`CheckpointStore` give the
  coordinator crash/restore semantics: a write-ahead payment ledger
  guarantees at-most-once payment across restarts;
* :class:`ChaosHarness` + :class:`FaultPlan` inject seeded randomized
  fault schedules and re-check the mechanism's economic invariants
  (:func:`check_round_invariants`) after every round.
"""

from repro.resilience.retry import BackoffPolicy
from repro.resilience.quarantine import (
    CircuitState,
    MachineHealth,
    QuarantinePolicy,
)
from repro.resilience.checkpoint import CheckpointStore, CoordinatorCheckpoint
from repro.resilience.supervisor import (
    CoordinatorCrash,
    RoundResult,
    RoundSupervisor,
    SupervisedCoordinator,
    SupervisorReport,
)
from repro.resilience.invariants import (
    InvariantError,
    InvariantViolation,
    check_round_invariants,
)
from repro.resilience.chaos import (
    ChaosHarness,
    ChaosReport,
    FaultPlan,
    MachineFault,
    RoundFaults,
)

__all__ = [
    "BackoffPolicy",
    "CircuitState",
    "MachineHealth",
    "QuarantinePolicy",
    "CheckpointStore",
    "CoordinatorCheckpoint",
    "CoordinatorCrash",
    "RoundResult",
    "RoundSupervisor",
    "SupervisedCoordinator",
    "SupervisorReport",
    "InvariantError",
    "InvariantViolation",
    "check_round_invariants",
    "ChaosHarness",
    "ChaosReport",
    "FaultPlan",
    "MachineFault",
    "RoundFaults",
]
