"""Independent reference allocator based on :mod:`scipy.optimize`.

This solver exists purely to cross-check the analytic allocators
(:func:`repro.allocation.pr_allocation` and
:func:`repro.allocation.water_filling_allocation`) in the test suite.
It is orders of magnitude slower and should never be used on a hot
path; the benchmarks quantify the gap.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro._validation import check_positive_scalar
from repro.latency.base import LatencyModel
from repro.types import AllocationResult

__all__ = ["scipy_allocation"]


def scipy_allocation(
    model: LatencyModel,
    arrival_rate: float,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-12,
) -> AllocationResult:
    """Minimise the total latency with SLSQP under the feasibility constraints.

    Parameters
    ----------
    model:
        Latency model to optimise over.
    arrival_rate:
        Total rate ``R``.
    x0:
        Optional starting point; defaults to the equal split (scaled
        into the interior of any finite capacities).
    tol:
        SLSQP convergence tolerance.
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    n = model.n_machines
    cap = model.load_capacity()

    if x0 is None:
        x0 = np.full(n, arrival_rate / n)
        finite = np.isfinite(cap)
        if np.any(finite):
            # Keep the start strictly inside finite capacities by
            # shifting surplus onto unconstrained machines if possible,
            # otherwise scaling proportionally to capacity.
            if np.any(x0[finite] >= cap[finite]):
                x0 = np.where(finite, 0.9 * cap, x0)
                slack = arrival_rate - float(x0.sum())
                if slack > 0 and np.any(~finite):
                    x0[~finite] += slack / max(1, int(np.sum(~finite)))
                elif slack != 0:
                    x0 *= arrival_rate / float(x0.sum())

    def objective(x: np.ndarray) -> float:
        # Clip into the open feasible region; SLSQP may probe the boundary.
        eps = 1e-12
        safe = np.clip(x, 0.0, np.where(np.isfinite(cap), cap * (1 - 1e-9), np.inf))
        return model.total_latency(np.maximum(safe, eps * 0))

    bounds = [
        (0.0, c * (1 - 1e-9) if np.isfinite(c) else None) for c in cap
    ]
    constraints = [{"type": "eq", "fun": lambda x: float(np.sum(x)) - arrival_rate}]

    result = optimize.minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        tol=tol,
        options={"maxiter": 500},
    )
    if not result.success:  # pragma: no cover - SLSQP is reliable here
        raise RuntimeError(f"SLSQP failed to converge: {result.message}")

    loads = np.maximum(result.x, 0.0)
    loads *= arrival_rate / float(loads.sum())
    return AllocationResult(
        loads=loads,
        arrival_rate=arrival_rate,
        bids=loads,
        total_latency=model.total_latency(loads),
    )
