"""Optimal load allocation algorithms.

* :func:`pr_allocation` — the paper's PR algorithm (Theorem 2.1): the
  closed-form optimal split for linear latency functions, proportional
  to processing rates.
* :func:`water_filling_allocation` — a general convex allocator for any
  :class:`~repro.latency.LatencyModel` via KKT water-filling; reduces to
  the PR solution on linear models and also solves the M/M/1 and M/G/1
  substrates.
* :func:`scipy_allocation` — an independent SLSQP-based reference solver
  used to cross-check the analytic allocators in tests.
"""

from repro.allocation.pr import (
    pr_allocation,
    pr_loads,
    optimal_total_latency,
    optimal_latency_excluding_each,
    optimal_latency_without,
)
from repro.allocation.kkt import water_filling_allocation
from repro.allocation.reference import scipy_allocation
from repro.allocation.incremental import IncrementalPRState, IncrementalStrategicState
from repro.allocation.baselines import (
    equal_split,
    capacity_proportional_split,
    random_split,
    greedy_marginal_split,
)

__all__ = [
    "pr_allocation",
    "pr_loads",
    "optimal_total_latency",
    "optimal_latency_excluding_each",
    "optimal_latency_without",
    "water_filling_allocation",
    "scipy_allocation",
    "IncrementalPRState",
    "IncrementalStrategicState",
    "equal_split",
    "capacity_proportional_split",
    "random_split",
    "greedy_marginal_split",
]
