"""The PR algorithm: closed-form optimal allocation for linear latencies.

Implements Theorem 2.1 of the paper.  For latency slopes ``t`` (possibly
*declared* values — bids — rather than true ones) and total arrival rate
``R``, the total latency ``L(x) = sum_i t_i x_i^2`` subject to
``sum x_i = R, x >= 0`` is minimised by

    ``x_i* = (1/t_i) / (sum_j 1/t_j) * R``

("allocate in proportion to processing rate", hence *PR*), achieving

    ``L* = R^2 / (sum_j 1/t_j)``.

The mechanism layer additionally needs the optimal latency of every
*leave-one-out* subsystem, ``L_{-i}* = R^2 / (S - 1/t_i)`` with
``S = sum_j 1/t_j``; :func:`optimal_latency_excluding_each` computes all
``n`` of them in one vectorised expression instead of ``n`` solver calls.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.observability.instrumentation import timed_section
from repro.types import AllocationResult

__all__ = [
    "pr_loads",
    "pr_allocation",
    "optimal_total_latency",
    "optimal_latency_excluding_each",
    "optimal_latency_without",
]


def _validated(t: np.ndarray, arrival_rate: float) -> tuple[np.ndarray, float]:
    t = as_float_array(t, "t")
    check_positive(t, "t")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    return t, arrival_rate


def pr_loads(t: np.ndarray, arrival_rate: float) -> np.ndarray:
    """Optimal per-machine loads for linear latency slopes ``t``.

    Parameters
    ----------
    t:
        Latency slopes (declared or true), strictly positive.
    arrival_rate:
        Total job arrival rate ``R`` to split.

    Returns
    -------
    numpy.ndarray
        Loads ``x_i = R (1/t_i) / sum_j (1/t_j)``.

    Examples
    --------
    >>> pr_loads([1.0, 1.0], 10.0)
    array([5., 5.])
    >>> pr_loads([1.0, 3.0], 8.0)
    array([6., 2.])
    """
    t, arrival_rate = _validated(t, arrival_rate)
    inv = 1.0 / t
    return arrival_rate * inv / inv.sum()


def optimal_total_latency(t: np.ndarray, arrival_rate: float) -> float:
    """Minimum total latency ``L* = R^2 / sum_j (1/t_j)`` (Theorem 2.1).

    Examples
    --------
    On the paper's Table 1 system (16 machines, ``R = 20``) this is the
    headline True1 optimum ``L* = 400 / 5.1 = 78.43``:

    >>> from repro.experiments.table1 import TABLE1_TRUE_VALUES
    >>> round(optimal_total_latency(TABLE1_TRUE_VALUES, 20.0), 2)
    78.43
    """
    t, arrival_rate = _validated(t, arrival_rate)
    return arrival_rate**2 / float(np.sum(1.0 / t))


def pr_allocation(t: np.ndarray, arrival_rate: float) -> AllocationResult:
    """Run the PR algorithm and package the result.

    Returns an :class:`~repro.types.AllocationResult` whose
    ``total_latency`` is evaluated at the declared slopes ``t``.

    Examples
    --------
    >>> result = pr_allocation([1.0, 3.0], 8.0)
    >>> result.loads
    array([6., 2.])
    >>> result.total_latency
    48.0

    The Table 1 optimum again, through the packaged interface:

    >>> from repro.experiments.table1 import TABLE1_TRUE_VALUES
    >>> round(pr_allocation(TABLE1_TRUE_VALUES, 20.0).total_latency, 2)
    78.43
    """
    t, arrival_rate = _validated(t, arrival_rate)
    with timed_section("allocation.pr.seconds"):
        inv = 1.0 / t
        total_inv = float(inv.sum())
        loads = arrival_rate * inv / total_inv
    return AllocationResult(
        loads=loads,
        arrival_rate=arrival_rate,
        bids=t,
        total_latency=arrival_rate**2 / total_inv,
    )


def optimal_latency_excluding_each(t: np.ndarray, arrival_rate: float) -> np.ndarray:
    """Optimal latency of every leave-one-out subsystem, vectorised.

    Entry ``i`` is ``L_{-i}* = R^2 / (S - 1/t_i)`` — the minimum total
    latency achievable when machine ``i`` is removed and the full rate
    ``R`` is spread over the remaining machines.  This is the
    ``h_i(b_{-i})`` term of the paper's bonus (Definition 3.3) and of
    the VCG pivot payment.

    Raises
    ------
    ValueError
        If fewer than two machines are present (a leave-one-out system
        would be empty).

    Examples
    --------
    >>> optimal_latency_excluding_each([1.0, 1.0], 10.0)
    array([100., 100.])
    """
    t, arrival_rate = _validated(t, arrival_rate)
    if t.size < 2:
        raise ValueError("leave-one-out latency requires at least two machines")
    inv = 1.0 / t
    remaining = inv.sum() - inv
    return arrival_rate**2 / remaining


def optimal_latency_without(t: np.ndarray, index: int, arrival_rate: float) -> float:
    """Optimal latency when the machine at ``index`` is excluded.

    Examples
    --------
    >>> optimal_latency_without([1.0, 1.0], 0, 10.0)
    100.0
    """
    t, arrival_rate = _validated(t, arrival_rate)
    index = check_index(index, t.size, "index")
    if t.size < 2:
        raise ValueError("leave-one-out latency requires at least two machines")
    inv = 1.0 / t
    return arrival_rate**2 / float(inv.sum() - inv[index])
