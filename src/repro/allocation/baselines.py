"""Naive dispatching baselines: what does the optimal allocation buy?

The paper takes the PR allocation as given; a practitioner's first
question is how much it improves on the dispatchers people actually
deploy.  This module implements the classic naive policies on the same
interface so `bench_dispatchers.py` can price the gap:

* :func:`equal_split` — round-robin in the fluid limit: every machine
  gets ``R/n`` regardless of speed;
* :func:`capacity_proportional_split` — split proportional to the
  processing rates ``1/t`` (equals the PR optimum for linear latencies
  — a coincidence of this latency class, *not* of M/M/1 etc.);
* :func:`random_split` — a Dirichlet-random feasible allocation
  (the "no policy at all" floor);
* :func:`greedy_marginal_split` — dispatch the stream in small chunks,
  each to the machine with the lowest marginal total latency; converges
  to the water-filling optimum as the chunk size shrinks (tested), and
  is the natural *online* implementation of the optimum.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_scalar
from repro.latency.base import LatencyModel
from repro.types import AllocationResult

__all__ = [
    "equal_split",
    "capacity_proportional_split",
    "random_split",
    "greedy_marginal_split",
]


def _package(model: LatencyModel, loads: np.ndarray, rate: float) -> AllocationResult:
    return AllocationResult(
        loads=loads,
        arrival_rate=rate,
        bids=loads,  # baselines carry no declared parameters
        total_latency=model.total_latency(loads),
    )


def equal_split(model: LatencyModel, arrival_rate: float) -> AllocationResult:
    """Round-robin fluid limit: ``R/n`` to every machine.

    Raises if any machine's capacity cannot absorb its equal share
    (the failure mode that makes round-robin dangerous on
    heterogeneous queueing systems).
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    n = model.n_machines
    loads = np.full(n, arrival_rate / n)
    cap = model.load_capacity()
    if np.any(loads >= cap):
        worst = int(np.argmax(loads / cap))
        raise ValueError(
            f"equal split overloads machine {worst}: share "
            f"{loads[worst]:g} >= capacity {cap[worst]:g}"
        )
    return _package(model, loads, arrival_rate)


def capacity_proportional_split(
    model: LatencyModel, arrival_rate: float
) -> AllocationResult:
    """Split proportional to each machine's capacity/speed.

    Uses ``1/t`` for linear/affine models (via their slopes) and ``mu``
    for capacity-bounded queueing models.
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    cap = model.load_capacity()
    if np.all(np.isfinite(cap)):
        weights = cap
    else:
        slopes = getattr(model, "t", None)
        if slopes is None:
            slopes = getattr(model, "slope", None)
        if slopes is None:
            raise TypeError(
                "capacity_proportional_split needs finite capacities or a "
                "slope attribute"
            )
        weights = 1.0 / np.asarray(slopes, dtype=np.float64)
    loads = arrival_rate * weights / float(weights.sum())
    return _package(model, loads, arrival_rate)


def random_split(
    model: LatencyModel,
    arrival_rate: float,
    rng: np.random.Generator,
    *,
    concentration: float = 1.0,
) -> AllocationResult:
    """A Dirichlet-random feasible allocation (the no-policy floor).

    Redraws (up to 1000 times) until the allocation respects finite
    capacities; raises if the system is too loaded for random dispatch
    to ever be feasible in that budget.
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    check_positive_scalar(concentration, "concentration")
    n = model.n_machines
    cap = model.load_capacity()
    for _ in range(1000):
        loads = rng.dirichlet(np.full(n, concentration)) * arrival_rate
        if np.all(loads < cap):
            return _package(model, loads, arrival_rate)
    raise RuntimeError("could not draw a capacity-feasible random allocation")


def greedy_marginal_split(
    model: LatencyModel,
    arrival_rate: float,
    *,
    n_chunks: int = 1000,
) -> AllocationResult:
    """Online greedy: send each chunk to the lowest-marginal machine.

    The marginal total latency is increasing per machine, so the greedy
    water level rises uniformly and the final allocation converges to
    the water-filling optimum as ``n_chunks`` grows — this is the
    dispatcher a deployment would actually run, and its gap to the
    offline optimum is O(chunk size).
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    if n_chunks < 1:
        raise ValueError("n_chunks must be at least 1")
    n = model.n_machines
    cap = model.load_capacity()
    chunk = arrival_rate / n_chunks
    loads = np.zeros(n)
    for _ in range(n_chunks):
        marginals = model.marginal(loads)
        # Never push a machine to (or past) its capacity.
        feasible = loads + chunk < cap
        if not np.any(feasible):
            raise ValueError("no machine can absorb the next chunk")
        marginals = np.where(feasible, marginals, np.inf)
        loads[int(np.argmin(marginals))] += chunk
    return _package(model, loads, arrival_rate)
