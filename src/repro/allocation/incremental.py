"""Incremental PR state: O(1) updates when one bid changes.

The repeated settings (dynamic rounds, best-response dynamics, learning
agents) re-run the mechanism after changing *one* machine's bid.  All
the closed forms depend on the bids only through ``S = sum 1/b_j``, so
a single-bid change is a rank-1 update:

* ``S' = S - 1/b_old + 1/b_new``                    (O(1))
* ``L*' = R^2 / S'``                                 (O(1))
* ``L_{-i}' = R^2 / (S' - 1/b_i)``                   (O(1) per query)
* any individual load ``x_i = R (1/b_i) / S``        (O(1) per query)

This class maintains that state with add/remove/update operations and
serves the aggregate queries without touching the other ``n-1``
machines.  Equivalence with the from-scratch formulas is enforced by
property tests; the speedup (O(1) vs O(n) per step for aggregate
queries) is measured in ``bench_incremental.py``.

Numerical note: repeated add/subtract on ``S`` accumulates rounding at
~1 ulp per operation.  :meth:`refresh` recomputes ``S`` exactly; the
class also refreshes itself automatically every ``refresh_every``
updates, keeping drift below measurable levels (tested at 10^5
updates).
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_index,
    check_positive_scalar,
)

__all__ = ["IncrementalPRState", "IncrementalStrategicState"]


class IncrementalPRState:
    """Mutable PR-allocation state over a changing bid vector."""

    def __init__(
        self,
        bids: np.ndarray,
        arrival_rate: float,
        *,
        refresh_every: int = 4096,
    ) -> None:
        bids = np.array(bids, dtype=np.float64)
        if bids.ndim != 1 or bids.size == 0:
            raise ValueError("bids must be a non-empty 1-D array")
        if np.any(bids <= 0.0) or not np.all(np.isfinite(bids)):
            raise ValueError("bids must be strictly positive and finite")
        self._bids = bids
        self.arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        if refresh_every < 1:
            raise ValueError("refresh_every must be at least 1")
        self._refresh_every = int(refresh_every)
        self._updates_since_refresh = 0
        self._total_inverse = float(np.sum(1.0 / bids))

    # ------------------------------------------------------------ queries

    @property
    def n_machines(self) -> int:
        """Current number of machines."""
        return int(self._bids.size)

    @property
    def bids(self) -> np.ndarray:
        """A copy of the current bid vector."""
        return self._bids.copy()

    @property
    def total_inverse(self) -> float:
        """``S = sum 1/b_j`` (maintained incrementally)."""
        return self._total_inverse

    def optimal_latency(self) -> float:
        """``L* = R^2 / S`` at the current bids (O(1))."""
        return self.arrival_rate**2 / self._total_inverse

    def load_of(self, index: int) -> float:
        """Machine ``index``'s PR load at the current bids (O(1))."""
        index = check_index(index, self._bids.size, "index")
        return (
            self.arrival_rate * (1.0 / self._bids[index]) / self._total_inverse
        )

    def loads(self) -> np.ndarray:
        """The full PR load vector (O(n), provided for convenience)."""
        inv = 1.0 / self._bids
        return self.arrival_rate * inv / self._total_inverse

    def latency_without(self, index: int) -> float:
        """``L_{-i} = R^2 / (S - 1/b_i)`` — the bonus term (O(1))."""
        index = check_index(index, self._bids.size, "index")
        if self._bids.size < 2:
            raise ValueError("leave-one-out latency requires at least two machines")
        remaining = self._total_inverse - 1.0 / self._bids[index]
        return self.arrival_rate**2 / remaining

    # ------------------------------------------------------------ updates

    def update_bid(self, index: int, new_bid: float) -> None:
        """Change one machine's bid: O(1) state update."""
        index = check_index(index, self._bids.size, "index")
        new_bid = check_positive_scalar(new_bid, "new_bid")
        self._total_inverse += 1.0 / new_bid - 1.0 / self._bids[index]
        self._bids[index] = new_bid
        self._tick()

    def add_machine(self, bid: float) -> int:
        """Add a machine; returns its index."""
        bid = check_positive_scalar(bid, "bid")
        self._bids = np.append(self._bids, bid)
        self._total_inverse += 1.0 / bid
        self._tick()
        return self._bids.size - 1

    def remove_machine(self, index: int) -> None:
        """Remove a machine (the remaining indices shift down)."""
        index = check_index(index, self._bids.size, "index")
        if self._bids.size == 1:
            raise ValueError("cannot remove the last machine")
        self._total_inverse -= 1.0 / self._bids[index]
        self._bids = np.delete(self._bids, index)
        self._tick()

    def refresh(self) -> None:
        """Recompute ``S`` from scratch, discarding rounding drift."""
        self._total_inverse = float(np.sum(1.0 / self._bids))
        self._updates_since_refresh = 0

    def _tick(self) -> None:
        self._updates_since_refresh += 1
        if self._updates_since_refresh >= self._refresh_every:
            self.refresh()


class IncrementalStrategicState:
    """Rank-1-updatable sufficient statistics for the strategic layer.

    The closed-form utility kernels (:mod:`repro.agents.kernels`)
    reduce agent ``i``'s whole dependence on the others to two
    aggregates over the current ``(bids, executions)`` profile:

    * ``S = sum_j 1 / b_j`` — the PR allocation normaliser, and
    * ``Q = sum_j t~_j / b_j**2`` — the others' realised-latency mass.

    Best-response dynamics change *one* agent per step, so both
    aggregates admit O(1) rank-1 updates, and the leave-one-out values
    a step needs are O(1) subtractions::

        S_{-i} = S - 1 / b_i
        Q_{-i} = Q - t~_i / b_i**2

    Like :class:`IncrementalPRState`, the state re-sums itself every
    ``refresh_every`` updates to shed floating-point drift.

    Examples
    --------
    >>> state = IncrementalStrategicState([1.0, 2.0, 4.0])
    >>> state.statistics_excluding(0)
    (0.75, 0.75)
    >>> state.update(0, 2.0)
    >>> round(state.total_inverse, 6)
    1.25
    """

    def __init__(
        self,
        bids: np.ndarray,
        executions: np.ndarray | None = None,
        *,
        refresh_every: int = 4096,
    ) -> None:
        bids = np.array(bids, dtype=np.float64)
        if bids.ndim != 1 or bids.size == 0:
            raise ValueError("bids must be a non-empty 1-D array")
        if np.any(bids <= 0.0) or not np.all(np.isfinite(bids)):
            raise ValueError("bids must be strictly positive and finite")
        if executions is None:
            executions = bids.copy()
        else:
            executions = np.array(executions, dtype=np.float64)
            if executions.shape != bids.shape:
                raise ValueError("executions must have one entry per machine")
            if np.any(executions <= 0.0) or not np.all(np.isfinite(executions)):
                raise ValueError("executions must be strictly positive and finite")
        self._bids = bids
        self._executions = executions
        if refresh_every < 1:
            raise ValueError("refresh_every must be at least 1")
        self._refresh_every = int(refresh_every)
        self._updates_since_refresh = 0
        self.refresh()

    # ------------------------------------------------------------ queries

    @property
    def n_machines(self) -> int:
        """Current number of machines."""
        return int(self._bids.size)

    @property
    def bids(self) -> np.ndarray:
        """A copy of the current bid vector."""
        return self._bids.copy()

    @property
    def executions(self) -> np.ndarray:
        """A copy of the current execution-value vector."""
        return self._executions.copy()

    @property
    def total_inverse(self) -> float:
        """``S = sum 1/b_j`` (maintained incrementally)."""
        return self._total_inverse

    @property
    def total_weighted(self) -> float:
        """``Q = sum t~_j / b_j**2`` (maintained incrementally)."""
        return self._total_weighted

    def statistics_excluding(self, index: int) -> tuple[float, float]:
        """``(S_{-i}, Q_{-i})`` for one agent — two O(1) subtractions."""
        index = check_index(index, self._bids.size, "index")
        if self._bids.size < 2:
            raise ValueError("leave-one-out statistics require at least two machines")
        inv = 1.0 / self._bids[index]
        return (
            self._total_inverse - inv,
            self._total_weighted - self._executions[index] * inv * inv,
        )

    # ------------------------------------------------------------ updates

    def update(
        self, index: int, new_bid: float, new_execution: float | None = None
    ) -> None:
        """Change one machine's bid (and execution value): O(1).

        ``new_execution`` defaults to the new bid — the convention of
        the dynamics loops, where every machine is presumed to execute
        exactly as it declared.
        """
        index = check_index(index, self._bids.size, "index")
        new_bid = check_positive_scalar(new_bid, "new_bid")
        if new_execution is None:
            new_execution = new_bid
        else:
            new_execution = check_positive_scalar(new_execution, "new_execution")
        old_inv = 1.0 / self._bids[index]
        new_inv = 1.0 / new_bid
        self._total_inverse += new_inv - old_inv
        self._total_weighted += (
            new_execution * new_inv * new_inv
            - self._executions[index] * old_inv * old_inv
        )
        self._bids[index] = new_bid
        self._executions[index] = new_execution
        self._updates_since_refresh += 1
        if self._updates_since_refresh >= self._refresh_every:
            self.refresh()

    def refresh(self) -> None:
        """Re-sum both aggregates from scratch, discarding drift."""
        inv = 1.0 / self._bids
        self._total_inverse = float(inv.sum())
        self._total_weighted = float(np.sum(self._executions * inv * inv))
        self._updates_since_refresh = 0
