"""Incremental PR state: O(1) updates when one bid changes.

The repeated settings (dynamic rounds, best-response dynamics, learning
agents) re-run the mechanism after changing *one* machine's bid.  All
the closed forms depend on the bids only through ``S = sum 1/b_j``, so
a single-bid change is a rank-1 update:

* ``S' = S - 1/b_old + 1/b_new``                    (O(1))
* ``L*' = R^2 / S'``                                 (O(1))
* ``L_{-i}' = R^2 / (S' - 1/b_i)``                   (O(1) per query)
* any individual load ``x_i = R (1/b_i) / S``        (O(1) per query)

This class maintains that state with add/remove/update operations and
serves the aggregate queries without touching the other ``n-1``
machines.  Equivalence with the from-scratch formulas is enforced by
property tests; the speedup (O(1) vs O(n) per step for aggregate
queries) is measured in ``bench_incremental.py``.

Numerical note: repeated add/subtract on ``S`` accumulates rounding at
~1 ulp per operation.  :meth:`refresh` recomputes ``S`` exactly; the
class also refreshes itself automatically every ``refresh_every``
updates, keeping drift below measurable levels (tested at 10^5
updates).
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    check_index,
    check_positive_scalar,
)

__all__ = ["IncrementalPRState"]


class IncrementalPRState:
    """Mutable PR-allocation state over a changing bid vector."""

    def __init__(
        self,
        bids: np.ndarray,
        arrival_rate: float,
        *,
        refresh_every: int = 4096,
    ) -> None:
        bids = np.array(bids, dtype=np.float64)
        if bids.ndim != 1 or bids.size == 0:
            raise ValueError("bids must be a non-empty 1-D array")
        if np.any(bids <= 0.0) or not np.all(np.isfinite(bids)):
            raise ValueError("bids must be strictly positive and finite")
        self._bids = bids
        self.arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        if refresh_every < 1:
            raise ValueError("refresh_every must be at least 1")
        self._refresh_every = int(refresh_every)
        self._updates_since_refresh = 0
        self._total_inverse = float(np.sum(1.0 / bids))

    # ------------------------------------------------------------ queries

    @property
    def n_machines(self) -> int:
        """Current number of machines."""
        return int(self._bids.size)

    @property
    def bids(self) -> np.ndarray:
        """A copy of the current bid vector."""
        return self._bids.copy()

    @property
    def total_inverse(self) -> float:
        """``S = sum 1/b_j`` (maintained incrementally)."""
        return self._total_inverse

    def optimal_latency(self) -> float:
        """``L* = R^2 / S`` at the current bids (O(1))."""
        return self.arrival_rate**2 / self._total_inverse

    def load_of(self, index: int) -> float:
        """Machine ``index``'s PR load at the current bids (O(1))."""
        index = check_index(index, self._bids.size, "index")
        return (
            self.arrival_rate * (1.0 / self._bids[index]) / self._total_inverse
        )

    def loads(self) -> np.ndarray:
        """The full PR load vector (O(n), provided for convenience)."""
        inv = 1.0 / self._bids
        return self.arrival_rate * inv / self._total_inverse

    def latency_without(self, index: int) -> float:
        """``L_{-i} = R^2 / (S - 1/b_i)`` — the bonus term (O(1))."""
        index = check_index(index, self._bids.size, "index")
        if self._bids.size < 2:
            raise ValueError("leave-one-out latency requires at least two machines")
        remaining = self._total_inverse - 1.0 / self._bids[index]
        return self.arrival_rate**2 / remaining

    # ------------------------------------------------------------ updates

    def update_bid(self, index: int, new_bid: float) -> None:
        """Change one machine's bid: O(1) state update."""
        index = check_index(index, self._bids.size, "index")
        new_bid = check_positive_scalar(new_bid, "new_bid")
        self._total_inverse += 1.0 / new_bid - 1.0 / self._bids[index]
        self._bids[index] = new_bid
        self._tick()

    def add_machine(self, bid: float) -> int:
        """Add a machine; returns its index."""
        bid = check_positive_scalar(bid, "bid")
        self._bids = np.append(self._bids, bid)
        self._total_inverse += 1.0 / bid
        self._tick()
        return self._bids.size - 1

    def remove_machine(self, index: int) -> None:
        """Remove a machine (the remaining indices shift down)."""
        index = check_index(index, self._bids.size, "index")
        if self._bids.size == 1:
            raise ValueError("cannot remove the last machine")
        self._total_inverse -= 1.0 / self._bids[index]
        self._bids = np.delete(self._bids, index)
        self._tick()

    def refresh(self) -> None:
        """Recompute ``S`` from scratch, discarding rounding drift."""
        self._total_inverse = float(np.sum(1.0 / self._bids))
        self._updates_since_refresh = 0

    def _tick(self) -> None:
        self._updates_since_refresh += 1
        if self._updates_since_refresh >= self._refresh_every:
            self.refresh()
