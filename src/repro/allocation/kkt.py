"""General convex allocator via KKT water-filling.

For any latency model whose per-machine total latency is convex and
increasing, the KKT conditions of

    minimise  ``sum_i x_i l_i(x_i)``  s.t.  ``sum x_i = R``, ``x >= 0``

state that there is a single *water level* ``lam`` (the Lagrange
multiplier of the conservation constraint) such that every machine with
positive load has marginal total latency exactly ``lam``, and every
machine at zero load has marginal at zero at least ``lam``.  Since each
machine's marginal is increasing, ``x_i(lam) = marginal_inverse(lam)``
(clipped at zero) is non-decreasing in ``lam``, and the water level is
found by a scalar bisection on ``sum_i x_i(lam) = R``.

On a :class:`~repro.latency.LinearLatencyModel` this reproduces the PR
closed form to machine precision (tested); on M/M/1 and M/G/1 models it
solves the substrates the baseline mechanisms need.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_scalar
from repro.latency.base import LatencyModel
from repro.types import AllocationResult

__all__ = ["water_filling_allocation"]

_MAX_BISECTIONS = 200
_REL_TOL = 1e-13


def _loads_at_level(model: LatencyModel, level: float) -> np.ndarray:
    """Per-machine loads at water level ``level`` (clipped at zero)."""
    if level <= 0.0:
        return np.zeros(model.n_machines)
    return np.maximum(model.marginal_inverse(level), 0.0)


def water_filling_allocation(
    model: LatencyModel,
    arrival_rate: float,
    *,
    check_feasible: bool = True,
) -> AllocationResult:
    """Optimal allocation of ``arrival_rate`` across ``model``'s machines.

    Parameters
    ----------
    model:
        Any latency model with convex increasing per-machine totals.
    arrival_rate:
        Total rate ``R`` to split.
    check_feasible:
        When true (default), reject rates at or above the model's total
        load capacity (relevant for queueing models with finite
        capacity; linear models are always feasible).

    Returns
    -------
    AllocationResult
        With ``bids`` set to the model's marginal at the solution —
        callers needing the declared parameters should use the
        mechanism layer, which tracks them explicitly.
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    capacity = float(np.sum(model.load_capacity()))
    if check_feasible and arrival_rate >= capacity:
        raise ValueError(
            f"arrival_rate {arrival_rate:g} is not below the total capacity "
            f"{capacity:g} of the system"
        )

    # Bracket the water level: grow `hi` geometrically until the total
    # allocatable load at that level covers R.
    lo = 0.0
    hi = 1.0
    for _ in range(200):
        if float(np.sum(_loads_at_level(model, hi))) >= arrival_rate:
            break
        hi *= 2.0
    else:  # pragma: no cover - capacity check above prevents this
        raise RuntimeError("failed to bracket the water level")

    for _ in range(_MAX_BISECTIONS):
        mid = 0.5 * (lo + hi)
        total = float(np.sum(_loads_at_level(model, mid)))
        if total < arrival_rate:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _REL_TOL * max(hi, 1.0):
            break

    loads = _loads_at_level(model, 0.5 * (lo + hi))
    # Remove bisection residue: rescale the positive loads so the
    # conservation constraint holds exactly.  The rescaling is a
    # feasible perturbation of relative size ~1e-13, far below the
    # optimiser's own tolerance.
    positive = loads > 0.0
    total = float(loads.sum())
    if total > 0.0:
        loads[positive] *= arrival_rate / total

    return AllocationResult(
        loads=loads,
        arrival_rate=arrival_rate,
        bids=model.marginal(loads) if np.all(loads < model.load_capacity()) else loads,
        total_latency=model.total_latency(loads),
    )
