"""Online verification: detect execution slowdowns mid-round.

The batch estimator (:mod:`repro.protocol.estimator`) only produces
``t̂`` after all jobs drain.  A long round gives a manipulating machine
a long free ride; this module monitors the stream of per-job sojourn
times *as they complete* and raises a flag as soon as the observed
behaviour is inconsistent with the machine's bid.

Detector: a one-sided CUSUM on standardised sojourn times.  Under the
declared behaviour a job's sojourn has mean ``b_i x_i`` (exponential in
the reference machine model, so standard deviation equals the mean).
For each completion we accumulate

    ``S <- max(0, S + (sojourn / (b_i x_i) - 1) - slack)``

and flag when ``S`` exceeds a threshold.  ``slack`` (kappa) absorbs
in-control noise; the threshold trades detection delay against false
alarms.  The defaults (slack 0.5, threshold 25) were calibrated on the
exponential reference model: ~0 false alarms over 20k honest jobs while
catching a 2x slowdown within ~50 completions (see
``bench_monitoring.py`` for the measured operating curve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_scalar

__all__ = ["SlowdownAlert", "CusumSlowdownDetector", "detection_delay"]


@dataclass(frozen=True)
class SlowdownAlert:
    """Raised evidence that a machine executes slower than declared."""

    jobs_observed: int
    statistic: float
    mean_sojourn: float


class CusumSlowdownDetector:
    """One-sided CUSUM on the standardised sojourn stream of one machine.

    Parameters
    ----------
    declared_value:
        The machine's bid ``b_i`` (the slope it promised).
    allocated_load:
        The arrival rate ``x_i`` routed to it, so the in-control mean
        sojourn is ``b_i * x_i``.
    threshold:
        Alarm level ``h`` for the cumulative statistic; larger values
        mean fewer false alarms but slower detection.
    slack:
        Per-observation drift allowance ``kappa`` (in units of the
        in-control mean); slowdowns inside the slack band are
        undetectable by design.
    """

    def __init__(
        self,
        declared_value: float,
        allocated_load: float,
        *,
        threshold: float = 25.0,
        slack: float = 0.5,
    ) -> None:
        declared_value = check_positive_scalar(declared_value, "declared_value")
        allocated_load = check_positive_scalar(allocated_load, "allocated_load")
        self.expected_sojourn = declared_value * allocated_load
        self.threshold = check_positive_scalar(threshold, "threshold")
        if slack < 0.0:
            raise ValueError("slack must be non-negative")
        self.slack = float(slack)
        self.statistic = 0.0
        self.jobs_observed = 0
        self._sojourn_total = 0.0
        self.alert: SlowdownAlert | None = None

    def observe(self, sojourn: float) -> SlowdownAlert | None:
        """Feed one completed job; returns the alert if it fires now."""
        if sojourn < 0.0:
            raise ValueError("sojourn must be non-negative")
        self.jobs_observed += 1
        self._sojourn_total += sojourn
        standardised = sojourn / self.expected_sojourn - 1.0
        self.statistic = max(0.0, self.statistic + standardised - self.slack)
        if self.alert is None and self.statistic > self.threshold:
            self.alert = SlowdownAlert(
                jobs_observed=self.jobs_observed,
                statistic=self.statistic,
                mean_sojourn=self._sojourn_total / self.jobs_observed,
            )
            return self.alert
        return None

    def observe_many(self, sojourns: np.ndarray) -> SlowdownAlert | None:
        """Feed a batch of completions in order; return the latched alert.

        Contract (pinned by ``tests/protocol/test_monitoring.py``):

        * The detector is **one-shot**: the first threshold crossing
          latches ``self.alert`` permanently.  The batch is consumed
          only up to that first crossing — the remaining observations
          are *not* fed, so ``jobs_observed`` and ``statistic`` freeze
          at the firing point.  A batch whose statistic would cross the
          threshold several times still yields exactly one alert, the
          first.
        * Calling again on an already-alerted detector returns the
          *same* latched :class:`SlowdownAlert` without consuming any
          further observations (``observe`` keeps accumulating if
          called directly, but never fires twice).
        * If no crossing happens in (or before) this batch, returns
          ``None``.
        """
        if self.alert is not None:
            return self.alert
        for sojourn in np.asarray(sojourns, dtype=np.float64):
            alert = self.observe(float(sojourn))
            if alert is not None:
                return alert
        return None

    @property
    def flagged(self) -> bool:
        """Whether the detector has raised an alert."""
        return self.alert is not None


def detection_delay(
    declared_value: float,
    true_execution_value: float,
    allocated_load: float,
    rng: np.random.Generator,
    *,
    threshold: float = 25.0,
    slack: float = 0.5,
    max_jobs: int = 100_000,
) -> int | None:
    """Jobs until detection of a machine running at ``true_execution_value``.

    Simulates the reference machine model (exponential sojourns with
    mean ``t̃ x``) against a detector calibrated to the bid.

    Returns
    -------
    int | None
        The number of completions observed when the alarm fired —
        between 1 and ``max_jobs`` inclusive (a detection exactly on
        the last simulated job counts) — or **explicitly ``None``**
        when the detector never fires within the ``max_jobs`` horizon
        (e.g. an honest machine, or a slowdown inside the slack band).
        ``None`` is a censored observation, not a large delay: callers
        aggregating delays must filter it out (or treat it as
        ``float("inf")``), never coerce it to 0 or to ``max_jobs``.
    """
    if max_jobs < 1:
        raise ValueError("max_jobs must be at least 1")
    true_execution_value = check_positive_scalar(
        true_execution_value, "true_execution_value"
    )
    detector = CusumSlowdownDetector(
        declared_value, allocated_load, threshold=threshold, slack=slack
    )
    mean = true_execution_value * allocated_load
    sojourns = rng.exponential(mean, size=max_jobs)
    alert = detector.observe_many(sojourns)
    return alert.jobs_observed if alert is not None else None
