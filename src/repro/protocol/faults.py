"""Failure injection: lossy links, crashed machines, timeout handling.

The paper's protocol assumes reliable delivery and responsive machines.
This module supplies the failure model a deployment needs:

* :class:`ReliableNetwork` — at-least-once delivery over a lossy link:
  every message is retransmitted until acknowledged, receivers
  de-duplicate, and the overhead (retransmissions, acks) is counted so
  benches can price reliability;
* :class:`CrashingNode` — a machine that silently stops responding at a
  chosen point in the protocol;
* :class:`FaultTolerantCoordinator` — extends the coordinator with bid
  and report timeouts: machines that miss the bid deadline are excluded
  from the round (the allocation is computed over the responders), and
  machines that received load but never report get a pessimistic
  imputed execution value and their payment withheld — they cannot be
  verified, so they are not paid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_positive_scalar
from repro.protocol.coordinator import (
    COORDINATOR_NAME,
    MachineNode,
    MechanismCoordinator,
    ProtocolPhase,
)
from repro.protocol.messages import (
    AllocationNotice,
    BidReply,
    CompletionReport,
    Message,
    PaymentNotice,
)
from repro.protocol.network import SimulatedNetwork
from repro.system.des import Simulator

__all__ = [
    "ReliableNetwork",
    "CrashingNode",
    "FaultTolerantCoordinator",
]


@dataclass(frozen=True)
class _Envelope(Message):
    """A payload message wrapped with a delivery sequence number."""

    seq: int
    payload: Message


class ReliableNetwork:
    """At-least-once delivery with receiver-side de-duplication.

    Wraps a :class:`~repro.protocol.network.SimulatedNetwork` whose
    links drop each transmission independently with probability
    ``drop_probability``.  Senders retransmit every ``rto`` seconds
    until the matching ack arrives; receivers deliver each sequence
    number exactly once, so the protocol logic above never sees
    duplicates.

    Statistics: ``transmissions`` (attempts incl. retransmits and
    acks), ``dropped``, and :meth:`delivered_payloads`.
    """

    def __init__(
        self,
        sim: Simulator,
        drop_probability: float,
        rng: np.random.Generator,
        *,
        rto: float = 0.05,
        max_retries: int = 200,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        self._sim = sim
        self._drop = drop_probability
        self._rng = rng
        self._rto = check_positive_scalar(rto, "rto")
        self._max_retries = int(max_retries)
        self._handlers: dict[str, object] = {}
        self._seq = itertools.count()
        self._acked: set[int] = set()
        self._seen: dict[str, set[int]] = {}
        self.transmissions = 0
        self.dropped = 0
        self._delivered_payloads = 0

    # ------------------------------------------------------------ wiring

    def register(self, name: str, handler) -> None:
        """Attach a node; ``handler(message, sim)`` gets each payload once."""
        if name in self._handlers:
            raise ValueError(f"node {name!r} is already registered")
        self._handlers[name] = handler
        self._seen[name] = set()

    def stats(self):
        """Minimal stats shim (payload count only, like NetworkStats)."""
        return self

    @property
    def total_messages(self) -> int:
        """Distinct payload messages delivered (excludes retransmits/acks)."""
        return self._delivered_payloads

    def delivered_payloads(self) -> int:
        return self._delivered_payloads

    # ------------------------------------------------------------ sending

    def send(self, message: Message) -> None:
        """Send with retransmission until acknowledged."""
        if message.receiver not in self._handlers:
            raise KeyError(f"unknown receiver {message.receiver!r}")
        seq = next(self._seq)
        envelope = _Envelope(
            sender=message.sender, receiver=message.receiver,
            seq=seq, payload=message,
        )
        self._transmit(envelope, retries_left=self._max_retries)

    def _transmit(self, envelope: _Envelope, retries_left: int) -> None:
        if envelope.seq in self._acked:
            return
        if retries_left < 0:
            raise RuntimeError(
                f"message {envelope.seq} to {envelope.receiver} exceeded the "
                "retry budget"
            )
        self.transmissions += 1
        if self._rng.random() < self._drop:
            self.dropped += 1
        else:
            self._sim.schedule(0.0, lambda s, e=envelope: self._deliver(e, s))
        # Arm the retransmission timer regardless; it no-ops once acked.
        self._sim.schedule(
            self._rto,
            lambda s, e=envelope, r=retries_left - 1: self._transmit(e, r),
        )

    def _deliver(self, envelope: _Envelope, sim: Simulator) -> None:
        # Send the ack back (it may itself be dropped; the sender then
        # retransmits and we re-ack).
        self.transmissions += 1
        if self._rng.random() >= self._drop:
            self._acked_later(envelope.seq)
        seen = self._seen[envelope.receiver]
        if envelope.seq in seen:
            return  # duplicate: already delivered
        seen.add(envelope.seq)
        self._delivered_payloads += 1
        handler = self._handlers[envelope.receiver]
        handler(envelope.payload, sim)

    def _acked_later(self, seq: int) -> None:
        self._acked.add(seq)


class CrashingNode:
    """A machine node that silently stops at a chosen protocol point.

    ``crash_after`` selects when the node dies:

    * ``"immediately"`` — never answers the bid request;
    * ``"after_bid"`` — bids, accepts its allocation, but never reports.
    """

    _POINTS = ("immediately", "after_bid")

    def __init__(self, inner: MachineNode, crash_after: str) -> None:
        if crash_after not in self._POINTS:
            raise ValueError(f"crash_after must be one of {self._POINTS}")
        self.inner = inner
        self.crash_after = crash_after

    @property
    def name(self) -> str:
        return self.inner.name

    def handle(self, message: Message, sim: Simulator) -> None:
        if self.crash_after == "immediately":
            return  # dead: drop everything
        self.inner.handle(message, sim)

    def report_completion(self) -> None:
        if self.crash_after in ("immediately", "after_bid"):
            return  # dead before reporting
        self.inner.report_completion()  # pragma: no cover - no such point yet


@dataclass
class FaultTolerantCoordinator(MechanismCoordinator):
    """Coordinator with bid/report timeouts and exclusion.

    * Machines that have not bid when :meth:`close_bidding` is invoked
      are excluded: the allocation is computed over the responders only
      (their names are recorded in ``excluded``).
    * Machines that received load but never report by
      :meth:`close_reporting` get the pessimistic imputed execution
      value ``missing_report_factor * bid`` in the realised latency and
      their payment is **withheld** (a zero ``PaymentNotice``) — an
      unverifiable machine is not paid.
    """

    missing_report_factor: float = 4.0
    excluded: list[str] = field(default_factory=list)
    withheld: list[str] = field(default_factory=list)

    # --------------------------------------------------------- overrides

    def _on_bid(self, reply: BidReply) -> None:
        if self.phase is not ProtocolPhase.BIDDING:
            raise RuntimeError(f"unexpected bid in phase {self.phase}")
        if reply.sender in self._bids:
            raise RuntimeError(f"duplicate bid from {reply.sender}")
        self._record_bid(reply)
        if not self._pending_bid_set():
            self._allocate_to_responders()

    def close_bidding(self, *, void_if_empty: bool = False) -> None:
        """Bid deadline: proceed with whoever has responded.

        With ``void_if_empty`` a deadline that finds zero bids voids
        the round cleanly (phase ``VOIDED``, no allocation, no
        payments) instead of raising; supervised multi-round loops use
        this to skip a dead round and carry on.
        """
        if self.phase is not ProtocolPhase.BIDDING:
            return  # already past bidding (everyone answered in time)
        if not self._bids:
            if void_if_empty:
                self.void_round()
                return
            raise RuntimeError("no machine bid before the deadline")
        self._allocate_to_responders()

    def void_round(self) -> None:
        """Abandon the round before allocation: nothing routed, nobody paid."""
        if self.phase not in (ProtocolPhase.IDLE, ProtocolPhase.BIDDING):
            raise RuntimeError(
                f"cannot void a round in phase {self.phase}: an allocation "
                "has already been announced"
            )
        self.excluded = list(self.machine_names)
        self._set_phase(ProtocolPhase.VOIDED)

    def _allocate_to_responders(self) -> None:
        responders = [n for n in self.machine_names if n in self._bids]
        self.excluded = [n for n in self.machine_names if n not in self._bids]
        self.machine_names = responders
        self._reset_membership_caches()

        bids = self.bids_vector()
        allocation = self.mechanism.allocate(bids, self.arrival_rate)
        self._loads = allocation.loads
        self._set_phase(ProtocolPhase.EXECUTING)
        for name, load in zip(self.machine_names, allocation.loads):
            self.network.send(
                AllocationNotice(
                    sender=COORDINATOR_NAME, receiver=name, load=float(load)
                )
            )
        if self.on_allocated is not None:
            self.on_allocated(allocation.loads)

    def _on_report(self, report: CompletionReport) -> None:
        if self.phase is not ProtocolPhase.EXECUTING:
            raise RuntimeError(f"unexpected completion report in phase {self.phase}")
        if report.sender in self._reports:
            raise RuntimeError(f"duplicate report from {report.sender}")
        # Not a duplicate, so any participating machine is still pending.
        if report.sender not in self._pending_report_set():
            raise RuntimeError(f"report from excluded machine {report.sender}")
        self._record_report(report)
        if not self._pending_report_set():
            self._finish_with_missing(set())

    def close_reporting(self) -> None:
        """Report deadline: impute the silent machines and pay the rest."""
        if self.phase is not ProtocolPhase.EXECUTING:
            return
        self._finish_with_missing(set(self._pending_report_set()))

    def _finish_with_missing(self, missing: set[str]) -> None:
        self._set_phase(ProtocolPhase.VERIFYING)
        bids = self.bids_vector()
        assert self._loads is not None

        estimates = np.empty(len(self.machine_names))
        for k, name in enumerate(self.machine_names):
            if name in missing:
                estimates[k] = self.missing_report_factor * bids[k]
                continue
            report = self._reports[name]
            if report.jobs_completed == 0 or self._loads[k] == 0.0:
                estimates[k] = bids[k]
            else:
                estimates[k] = report.mean_sojourn / self._loads[k]

        self.estimated_execution_values = estimates
        self.outcome = self.mechanism.run(bids, self.arrival_rate, estimates)
        self.withheld = sorted(missing)
        payments = self.outcome.payments
        for k, name in enumerate(self.machine_names):
            if name in missing:
                notice = PaymentNotice(
                    sender=COORDINATOR_NAME, receiver=name,
                    payment=0.0, compensation=0.0, bonus=0.0,
                )
            else:
                notice = PaymentNotice(
                    sender=COORDINATOR_NAME,
                    receiver=name,
                    payment=float(payments.payment[k]),
                    compensation=float(payments.compensation[k]),
                    bonus=float(payments.bonus[k]),
                )
            self.network.send(notice)
        self._set_phase(ProtocolPhase.DONE)
