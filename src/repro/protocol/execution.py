"""Batched job-event execution engine for protocol rounds.

The paper's linear-latency machines serve jobs *concurrently* with
i.i.d. service draws, so per-job event interleaving carries no
information the verification estimator uses: the estimate is a mean of
sojourn times, and each sojourn is exactly the drawn duration.  The
whole job lifecycle is therefore batchable — generate the Poisson
stream in one draw, route it with one vectorised multinomial, sample
every machine's service times in one draw, and advance the simulator
clock with a single *event-horizon* no-op instead of two heap events
per job.  Only the O(n) control messages (bids, allocation, reports,
payments) remain as discrete events, so the coordinator phase machine
and the message-count claim are untouched (DESIGN.md §11).

Contract: with deterministic service the batched engine is
bit-identical to the per-job event engine — same RNG stream, same
per-job sojourn floats (``(arrival + duration) - arrival``), same
per-machine aggregation order, same final clock.  With stochastic
service it consumes the same RNG stream *shape* (one draw per machine
instead of one per job) and matches estimates to statistical
tolerance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.observability.instrumentation import record_gauge
from repro.system.des import Simulator
from repro.system.machine import LinearLatencyMachine

__all__ = ["EXECUTION_MODES", "resolve_execution", "dispatch_batched"]

EXECUTION_MODES = ("event", "batched", "auto")


def resolve_execution(execution: str) -> str:
    """Map an execution request to the engine that will run the jobs.

    ``"event"`` and ``"batched"`` are honoured verbatim.  ``"auto"``
    picks the batched engine whenever the round's machines support
    vectorised submission — true for every
    :class:`~repro.system.machine.LinearLatencyMachine` round today, so
    ``"auto"`` currently always resolves to ``"batched"``; the
    indirection exists so future per-job observation hooks (or machine
    models whose sojourns depend on the event interleaving) can fall
    back to ``"event"`` without changing call sites.
    """
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
        )
    return "batched" if execution == "auto" else execution


def dispatch_batched(
    sim: Simulator,
    machines: Sequence[LinearLatencyMachine],
    arrival_times: np.ndarray,
    assignments: np.ndarray,
) -> int:
    """Execute a routed arrival stream without per-job heap events.

    Parameters
    ----------
    sim:
        The round's simulator; receives one no-op event at the latest
        completion time so the clock advances exactly as far as the
        event engine's last completion event would have taken it.
    machines:
        The round's machines, already ``configure``-d with their loads.
    arrival_times:
        Absolute arrival times (round start already added), in arrival
        order — the same floats the event engine would schedule.
    assignments:
        Machine index per job, from
        :func:`~repro.system.workload.split_assignments`.

    Returns the number of jobs routed.  Records the
    ``protocol.events_skipped`` gauge: the event engine would have
    pushed two heap events per job (arrival + completion) where this
    engine pushes one horizon event total.
    """
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    count = int(arrival_times.size)
    if count == 0:
        return 0
    horizon = -np.inf
    for index, machine in enumerate(machines):
        completions = machine.submit_batch(arrival_times[assignments == index])
        if completions.size:
            horizon = max(horizon, float(completions.max()))
    sim.schedule_at(horizon, lambda s: None)
    record_gauge("protocol.events_skipped", 2 * count - 1)
    return count
