"""A simulated message network with delivery delay and accounting.

The network is the instrument for the paper's complexity claim: it
counts every message so tests can assert the protocol sends O(n)
messages (exactly ``5n`` per round in our implementation).  Delivery
delays are drawn from an injected distribution so the protocol logic is
exercised with out-of-order-in-time deliveries on the event calendar.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.protocol.messages import Message
from repro.system.des import Simulator

__all__ = ["NetworkStats", "SimulatedNetwork"]


@dataclass(frozen=True)
class NetworkStats:
    """Message accounting for one protocol run."""

    total_messages: int
    by_type: dict[str, int]

    def messages_of(self, message_type: type) -> int:
        """Count of messages of a given class."""
        return self.by_type.get(message_type.__name__, 0)


class SimulatedNetwork:
    """Point-to-point network delivering messages over the simulator.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving delivery events.
    delay_sampler:
        Maps the generator to one delivery delay in seconds.  Defaults
        to zero delay (logical time only); pass e.g.
        ``lambda rng: rng.exponential(0.001)`` for jittered delivery.
    rng:
        Generator used by the delay sampler.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        delay_sampler: Callable[[np.random.Generator], float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._sim = sim
        self._delay_sampler = delay_sampler
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._handlers: dict[str, Callable[[Message, Simulator], None]] = {}
        self._sent: Counter[str] = Counter()
        self.delivered: int = 0

    def register(self, name: str, handler: Callable[[Message, Simulator], None]) -> None:
        """Attach a node: ``handler(message, sim)`` runs on delivery."""
        if name in self._handlers:
            raise ValueError(f"node {name!r} is already registered")
        self._handlers[name] = handler

    def send(self, message: Message) -> None:
        """Queue a message for delivery to its receiver."""
        if message.receiver not in self._handlers:
            raise KeyError(f"unknown receiver {message.receiver!r}")
        self._sent[type(message).__name__] += 1
        delay = 0.0
        if self._delay_sampler is not None:
            delay = float(self._delay_sampler(self._rng))
            if delay < 0.0:
                raise ValueError("delay_sampler returned a negative delay")

        handler = self._handlers[message.receiver]

        def deliver(sim: Simulator) -> None:
            self.delivered += 1
            handler(message, sim)

        self._sim.schedule(delay, deliver)

    def stats(self) -> NetworkStats:
        """Message counts so far."""
        return NetworkStats(
            total_messages=int(sum(self._sent.values())),
            by_type=dict(self._sent),
        )
