"""One-call driver wiring the full protocol over the simulator.

``run_protocol`` builds the simulator, network, machine nodes and
coordinator, generates a Poisson job stream, routes it according to the
mechanism's allocation, lets the machines execute, triggers the
verification/payment phases, and returns everything a caller needs to
compare the simulated round against the closed-form mechanism:
the mechanism outcome (with *estimated* execution values), the exact
execution values the agents actually used, the estimation errors, and
the network statistics backing the O(n) message-count claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import check_positive_scalar
from repro.agents.base import Agent
from repro.agents.behaviors import profile_execution_values
from repro.mechanism.base import Mechanism
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.observability.instrumentation import observe_value, trace_span
from repro.protocol.coordinator import (
    COORDINATOR_NAME,
    MachineNode,
    MechanismCoordinator,
    ProtocolPhase,
)
from repro.protocol.execution import dispatch_batched, resolve_execution
from repro.protocol.network import NetworkStats, SimulatedNetwork
from repro.system.des import Simulator
from repro.system.machine import LinearLatencyMachine
from repro.system.workload import PoissonWorkload, split_assignments, split_workload
from repro.types import MechanismOutcome

__all__ = ["ProtocolResult", "run_protocol"]


@dataclass(frozen=True)
class ProtocolResult:
    """Everything observable after one simulated protocol round."""

    outcome: MechanismOutcome
    true_execution_values: np.ndarray
    estimated_execution_values: np.ndarray
    network: NetworkStats
    jobs_routed: int
    simulated_time: float

    @property
    def estimation_relative_error(self) -> np.ndarray:
        """``|t̂ - t̃| / t̃`` per machine (verification noise).

        Entries where the relative error is undefined — a machine whose
        true execution value is 0, or one that was allocated no load
        (so there were no completions to estimate from) — are ``nan``
        rather than raising or emitting divide warnings.
        """
        defined = (self.true_execution_values > 0.0) & (self.outcome.loads > 0.0)
        error = np.full(self.true_execution_values.shape, np.nan)
        np.divide(
            np.abs(self.estimated_execution_values - self.true_execution_values),
            self.true_execution_values,
            out=error,
            where=defined,
        )
        return error


def run_protocol(
    agents: Sequence[Agent],
    arrival_rate: float,
    *,
    duration: float = 200.0,
    mechanism: Mechanism | None = None,
    rng: np.random.Generator | None = None,
    deterministic_service: bool = False,
    drop_probability: float = 0.0,
    execution: str = "auto",
) -> ProtocolResult:
    """Simulate one full round of the load balancing protocol.

    Parameters
    ----------
    agents:
        Strategic machine owners; their bids and execution values drive
        the round.
    arrival_rate:
        Total Poisson job rate ``R``.
    duration:
        Length of the job-generation window (seconds of simulated
        time).  Longer windows mean more completions and tighter
        execution-value estimates.
    mechanism:
        Payment rule; defaults to the paper's
        :class:`~repro.mechanism.VerificationMechanism`.
    rng:
        Randomness source for workload, routing, and service times.
    deterministic_service:
        Make each job's duration exactly its mean (no service noise),
        so the only estimation error left is routing granularity.
        Used by exactness tests.
    drop_probability:
        When positive, control messages travel over a lossy link with
        this per-transmission drop rate; the runtime then uses the
        at-least-once :class:`~repro.protocol.faults.ReliableNetwork`
        (the application still sees exactly-once delivery, and
        ``ProtocolResult.network.total_messages`` counts payloads, not
        retransmissions).
    execution:
        Job execution engine: ``"event"`` schedules two heap events per
        job (the classic discrete-event path), ``"batched"`` runs the
        whole job lifecycle through
        :func:`~repro.protocol.execution.dispatch_batched` (one
        vectorised draw per stage, one horizon event total), and
        ``"auto"`` (default) picks batched whenever the machines
        support it (DESIGN.md §11).  With ``deterministic_service=True``
        the two engines are bit-identical; with stochastic service they
        agree to statistical tolerance.
    """
    if len(agents) == 0:
        raise ValueError(
            "agents must be a non-empty sequence: the protocol needs at "
            "least one machine to allocate to"
        )
    if not 0.0 <= drop_probability < 1.0:
        raise ValueError(
            f"drop_probability must be in [0, 1), got {drop_probability:g} "
            "(1.0 would mean every transmission is lost and the round "
            "could never complete)"
        )
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    duration = check_positive_scalar(duration, "duration")
    execution = resolve_execution(execution)
    if mechanism is None:
        mechanism = VerificationMechanism()
    if rng is None:
        rng = np.random.default_rng(0)

    with trace_span("protocol.round", machines=len(agents)):
        result = _run_round(
            agents,
            arrival_rate,
            duration=duration,
            mechanism=mechanism,
            rng=rng,
            deterministic_service=deterministic_service,
            drop_probability=drop_probability,
            execution=execution,
        )
    observe_value("protocol.jobs_routed", result.jobs_routed)
    return result


def _run_round(
    agents: Sequence[Agent],
    arrival_rate: float,
    *,
    duration: float,
    mechanism: Mechanism,
    rng: np.random.Generator,
    deterministic_service: bool,
    drop_probability: float,
    execution: str,
) -> ProtocolResult:
    """The round body :func:`run_protocol` wraps with instrumentation."""
    sim = Simulator()
    if drop_probability > 0.0:
        from repro.protocol.faults import ReliableNetwork

        network = ReliableNetwork(sim, drop_probability, rng)
    else:
        network = SimulatedNetwork(sim)

    sampler = (lambda mean, _rng: mean) if deterministic_service else None
    batch_sampler = (
        (lambda mean, size, _rng: np.full(size, mean))
        if deterministic_service
        else None
    )
    names = [f"C{i + 1}" for i in range(len(agents))]
    nodes: list[MachineNode] = []
    for name, agent in zip(names, agents):
        machine = LinearLatencyMachine(
            name,
            agent.execution_value(),
            rng,
            service_sampler=sampler,
            batch_service_sampler=batch_sampler,
        )
        node = MachineNode(name=name, agent=agent, machine=machine, network=network)
        network.register(name, node.handle)
        nodes.append(node)

    jobs_routed = 0

    def on_allocated(loads: np.ndarray) -> None:
        nonlocal jobs_routed
        # The machine's contention level reflects the traffic actually
        # routed to it, so the dispatcher configures it directly; the
        # AllocationNotice control message may still be in flight (it
        # can be retransmitted on lossy links) without delaying jobs.
        for node, load in zip(nodes, loads):
            node.machine.configure(float(load))
        workload = PoissonWorkload(arrival_rate, rng)
        start = sim.now
        if execution == "batched":
            times = workload.generate_times(duration)
            assignments = split_assignments(
                int(times.size), loads / loads.sum(), rng
            )
            jobs_routed = dispatch_batched(
                sim, [node.machine for node in nodes], start + times, assignments
            )
            return
        jobs = workload.generate(duration)
        jobs_routed = len(jobs)
        buckets = split_workload(jobs, loads / loads.sum(), rng)
        for node, bucket in zip(nodes, buckets):
            for job in bucket:
                sim.schedule_at(
                    start + job.arrival_time,
                    lambda s, n=node, j=job: n.machine.submit(s, j),
                )

    coordinator = MechanismCoordinator(
        mechanism=mechanism,
        machine_names=names,
        arrival_rate=arrival_rate,
        network=network,
        on_allocated=on_allocated,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)

    # Phase 1: bids, allocation, job execution — run to quiescence.
    coordinator.start()
    sim.run()
    if coordinator.phase is not ProtocolPhase.EXECUTING:
        raise RuntimeError(f"protocol stalled in phase {coordinator.phase}")

    # Phase 2: all jobs have drained; machines report, mechanism pays.
    for node in nodes:
        node.report_completion()
    sim.run()
    if coordinator.phase is not ProtocolPhase.DONE:
        raise RuntimeError(f"protocol did not finish, stuck in {coordinator.phase}")

    assert coordinator.outcome is not None
    assert coordinator.estimated_execution_values is not None
    for node in nodes:
        if node.received_payment is None:
            raise RuntimeError(f"machine {node.name} never received a payment")

    return ProtocolResult(
        outcome=coordinator.outcome,
        true_execution_values=profile_execution_values(list(agents)),
        estimated_execution_values=coordinator.estimated_execution_values,
        network=network.stats(),
        jobs_routed=jobs_routed,
        simulated_time=sim.now,
    )
