"""Estimating a machine's execution value from observed completions.

The paper assumes the verification step outright: "we assume that the
processing rate with which the jobs were actually executed is known to
the mechanism."  In practice the mechanism only sees job completions.
Under the linear latency model the expected sojourn of a job at machine
``i`` is ``t̃_i x_i``, so with the allocated rate ``x_i`` known to the
mechanism, the natural estimator from ``m`` observed sojourn times is

    ``t̂_i = mean(sojourn) / x_i``,

which is unbiased with relative standard error ``~ cv / sqrt(m)``
(``cv`` = coefficient of variation of the sojourn distribution; 1 for
exponential service).  The returned estimate carries a normal-theory
confidence interval so callers can reason about how much payment error
the verification noise induces (benchmarked in
``benchmarks/bench_noisy_verification.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array, check_nonnegative, check_positive_scalar

__all__ = ["ExecutionEstimate", "estimate_execution_value"]

#: two-sided 95% normal quantile
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ExecutionEstimate:
    """Point estimate of ``t̃`` with sampling-uncertainty bounds."""

    value: float
    stderr: float
    n_observations: int

    @property
    def ci95(self) -> tuple[float, float]:
        """Two-sided 95% confidence interval (normal approximation)."""
        return (
            self.value - _Z95 * self.stderr,
            self.value + _Z95 * self.stderr,
        )

    def clamped(self, lower: float) -> "ExecutionEstimate":
        """The estimate with its value clamped from below.

        Used to impose prior knowledge such as a declared bid: under a
        truthful mechanism a machine never executes *faster* than its
        capacity, so an estimate below a trusted lower bound is noise.
        """
        if self.value >= lower:
            return self
        return ExecutionEstimate(
            value=float(lower), stderr=self.stderr, n_observations=self.n_observations
        )


def estimate_execution_value(
    sojourn_times: np.ndarray,
    allocated_load: float,
) -> ExecutionEstimate:
    """Estimate ``t̃`` from per-job sojourn times at a known load.

    Parameters
    ----------
    sojourn_times:
        Observed per-job completion times at one machine (seconds).
    allocated_load:
        The arrival rate ``x_i`` the mechanism routed to the machine.

    Raises
    ------
    ValueError
        On empty observations or a non-positive load: a machine with no
        assigned work produces no evidence about its execution value.
    """
    sojourn_times = as_float_array(sojourn_times, "sojourn_times")
    check_nonnegative(sojourn_times, "sojourn_times")
    allocated_load = check_positive_scalar(allocated_load, "allocated_load")

    n = sojourn_times.size
    mean = float(sojourn_times.mean())
    if n > 1:
        spread = float(sojourn_times.std(ddof=1))
        stderr = spread / (np.sqrt(n) * allocated_load)
    else:
        stderr = float("inf")
    return ExecutionEstimate(
        value=mean / allocated_load,
        stderr=stderr,
        n_observations=int(n),
    )
