"""The centralised load balancing protocol (paper, end of Section 3).

The paper describes the protocol informally: "The mechanism collects
the bids from each computer, computes the allocation using PR algorithm
and allocates the jobs.  Then it waits for the allocated jobs to be
executed.  In this waiting period the mechanism estimates the actual
job processing rate at each computer and use it to determine the
execution value t̃.  After the allocated jobs are completed the
mechanism computes the payments and sends them to the computers."  It
states the message complexity is O(n).

This subpackage implements that protocol end to end over the
discrete-event substrate: typed messages, a counting network, an
execution-value estimator (the verification step the paper assumes),
a coordinator state machine, and a one-call runtime driver.
"""

from repro.protocol.messages import (
    Message,
    BidRequest,
    BidReply,
    AllocationNotice,
    CompletionReport,
    PaymentNotice,
)
from repro.protocol.network import SimulatedNetwork, NetworkStats
from repro.protocol.estimator import ExecutionEstimate, estimate_execution_value
from repro.protocol.coordinator import MechanismCoordinator, ProtocolPhase
from repro.protocol.faults import (
    ReliableNetwork,
    CrashingNode,
    FaultTolerantCoordinator,
)
from repro.protocol.monitoring import (
    SlowdownAlert,
    CusumSlowdownDetector,
    detection_delay,
)
from repro.protocol.horizon import fusible_round, run_horizon
from repro.protocol.runtime import ProtocolResult, run_protocol

__all__ = [
    "Message",
    "BidRequest",
    "BidReply",
    "AllocationNotice",
    "CompletionReport",
    "PaymentNotice",
    "SimulatedNetwork",
    "NetworkStats",
    "ExecutionEstimate",
    "estimate_execution_value",
    "MechanismCoordinator",
    "ProtocolPhase",
    "ReliableNetwork",
    "CrashingNode",
    "FaultTolerantCoordinator",
    "SlowdownAlert",
    "CusumSlowdownDetector",
    "detection_delay",
    "ProtocolResult",
    "run_protocol",
    "fusible_round",
    "run_horizon",
]
