"""Horizon-fused multi-round engine: stacked rounds between event boundaries.

The sequential :class:`~repro.resilience.supervisor.RoundSupervisor`
pays full per-round protocol machinery even when nothing interesting
happens: a fresh discrete-event simulator, ~5n messages through the
network layer, a write-ahead checkpoint per bid (O(n²) dict copies per
round), per-job Python CUSUM loops, and a pile of per-round dataclass
churn.  On a fault-free horizon every one of those rounds computes the
same *kind* of thing — bids, one PR solve, one Poisson window, masked
per-machine sojourn statistics, one mechanism evaluation — so this
module evaluates maximal fault-free runs of rounds as one fused
segment instead.

Fusible-segment model
---------------------
:func:`run_horizon` walks the horizon and partitions it into maximal
**fusible segments**.  A round is fusible (:func:`fusible_round`) iff
nothing about it needs the message-driven machinery:

* its fault entry is ``None`` or clean (no drops, no machine faults,
  no coordinator crash);
* the supervisor has no pending remediation skip (``skip_rounds == 0``)
  and no remediation pipeline at all (the pipeline may mutate
  supervisor state *between* rounds, which only the sequential path
  sequences correctly);
* the monolithic batched execution engine is active (``shards == 1``,
  ``execution == "batched"`` — the per-job event path interleaves its
  service draws with event delivery order and cannot be replayed as a
  batch).

Every non-fusible round **de-fuses**: it is delegated verbatim to
``supervisor.run_round(faults)`` (counted by
``horizon.defused.boundaries``), so chaos, remediation, retry, and
crash-recovery semantics are exactly the sequential code — not a
reimplementation.

A fused segment runs in two phases:

* **Phase A (per round, cheap):** quarantine admission, agent bids
  with remediation overrides, the incremental PR allocate (kept warm
  so later de-fused rounds see identical allocator state), the
  round's workload draw through the *same*
  ``RoundSupervisor._generate_times`` the sequential path uses,
  vectorised per-machine sojourn statistics, a vectorised CUSUM fast
  path, and quarantine bookkeeping.  Membership churn (an alert
  quarantining a machine mid-segment, probes re-admitted) is handled
  naturally because admission still happens round by round.
* **Phase B (stacked):** all live rounds of the segment are grouped
  by machine count and priced as one ``(T_seg, n)`` broadcast that
  mirrors :class:`~repro.mechanism.VerificationMechanism` — the same
  stacked-row evaluation the fused campaign backend uses
  (DESIGN.md §14), built on the two pinned NumPy parity facts:
  C-contiguous last-axis reductions match per-row ``.sum()`` bit for
  bit, and the batched ``(U,1,n) @ (U,n,1)`` product matches per-row
  ``np.dot``.  Other mechanism types are priced per round through
  ``mechanism.run`` while Phase A still skips the protocol tax.

Parity contract
---------------
Results are **bit-identical** to ``supervisor.run(n_rounds)`` on the
same seed — every float in every :class:`RoundResult`, through
``repr`` and back.  Three properties carry the contract:

1. **RNG stream order.**  A clean sequential round consumes, in
   order: the Poisson count draw, the uniform position draws, the
   routing ``choice`` draw, then (stochastic service only) one
   exponential batch per machine with jobs, in machine-index order.
   Phase A replays exactly that order; notably the workload is drawn
   per round (``PoissonWorkload.horizon_times`` documents why a
   single segment-level draw is off the table) and backoff RNG is
   never consumed because clean rounds never retry.
2. **Zero-delay timing.**  The simulated network delivers at delay
   0.0, so allocation fires at ``sim.now == 0.0`` and the dispatched
   arrival times are ``0.0 + times`` — bitwise the raw draw.
   Sojourns are ``(times_k + duration) - times_k`` per machine on the
   same mask-selected subarrays ``dispatch_batched`` builds.
3. **Dual loads.**  The sequential round uses the *incremental
   allocator's* loads for machine configuration, routing fractions,
   and execution-value estimates, but the *mechanism's* fresh PR
   loads for ``RoundResult.loads`` and CUSUM detection.  The fused
   path reproduces both, from the same inputs, in the same order.

The CUSUM fast path is exact, not approximate: the detector statistic
stays at zero iff every standardised excess ``s_j - slack`` is
non-positive, which one vectorised comparison checks; any round that
could move a detector is re-run through the real
:class:`~repro.protocol.monitoring.CusumSlowdownDetector` for that
machine only.

Observability: fused rounds record the sequential counters
(``supervisor.rounds``, ``supervisor.jobs_routed``, quarantine gauge)
plus ``horizon.fused.rounds``; every de-fused round additionally
counts ``horizon.defused.boundaries``.  ``repro metrics --horizon``
surfaces both next to the campaign fusion counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.observability.instrumentation import (
    annotate,
    observe_value,
    record_counter,
    record_gauge,
    trace_span,
)
from repro.protocol.monitoring import CusumSlowdownDetector
from repro.system.workload import split_assignments
from repro.types import AllocationResult, MechanismOutcome, PaymentResult

if TYPE_CHECKING:  # pragma: no cover - cycle guard (resilience imports protocol)
    from repro.resilience.chaos import RoundFaults
    from repro.resilience.supervisor import (
        RoundResult,
        RoundSupervisor,
        SupervisorReport,
    )

__all__ = ["fusible_round", "run_horizon"]


def fusible_round(
    supervisor: "RoundSupervisor", faults: "RoundFaults | None"
) -> bool:
    """Whether the next round can join a fused segment.

    Decided *before* any supervisor state is touched: fault-free (or a
    clean :class:`~repro.resilience.chaos.RoundFaults`), no pending
    remediation skip, no remediation pipeline, monolithic batched
    execution.  Anything else de-fuses to ``supervisor.run_round``.
    """
    if supervisor.shards > 1 or supervisor.remediation is not None:
        return False
    if supervisor.skip_rounds > 0:
        return False
    if supervisor.execution != "batched":
        return False
    if faults is None:
        return True
    return bool(getattr(faults, "is_clean", False))


def _row_dots(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Per-row dots via one batched BLAS call (bit-equal to ``np.dot``).

    Same helper as ``repro.parallel.fusion._row_dots`` — ``einsum`` or
    ``(l*r).sum(axis=1)`` reduce in a different order and break parity.
    """
    return (left[:, None, :] @ right[:, :, None])[:, 0, 0]


def _stacked_verification_outcomes(
    mechanism: VerificationMechanism,
    bids: np.ndarray,
    estimates: np.ndarray,
    rates: np.ndarray,
) -> list[MechanismOutcome]:
    """Price a ``(U, n)`` block of rounds exactly like per-round ``run``.

    Mirrors ``pr_allocation`` + ``VerificationMechanism.payments`` row
    by row: last-axis reductions for the ``S`` totals, the batched
    matmul for realised latencies, everything else elementwise — the
    same three parity facts the campaign fusion backend pins.
    """
    rates_col = rates[:, None]
    inv = 1.0 / bids                                   # (U, n)
    total_inv = inv.sum(axis=1, keepdims=True)         # (U, 1)
    loads = rates_col * inv / total_inv                # (U, n)
    declared_latency = rates**2 / total_inv[:, 0]      # (U,)
    loads_sq = loads**2
    s_minus = total_inv - inv                          # (U, n): S_{-i}
    excluded_latency = rates_col**2 / s_minus
    realised = _row_dots(estimates, loads_sq)          # (U,)
    if mechanism.compensation_mode == "observed":
        compensation = estimates * loads_sq
    else:
        compensation = bids * loads_sq
    bonus = excluded_latency - realised[:, None]
    valuation = -estimates * loads_sq

    outcomes = []
    for r in range(bids.shape[0]):
        allocation = AllocationResult(
            loads=loads[r],
            arrival_rate=float(rates[r]),
            bids=bids[r],
            total_latency=float(declared_latency[r]),
        )
        payments = PaymentResult(
            compensation=compensation[r],
            bonus=bonus[r],
            valuation=valuation[r],
        )
        outcomes.append(
            MechanismOutcome(
                allocation=allocation,
                payments=payments,
                execution_values=estimates[r],
                true_values=None,
                metadata={"mechanism": type(mechanism).__name__},
            )
        )
    return outcomes


def _run_fused_segment(supervisor: "RoundSupervisor", count: int) -> list:
    """Evaluate ``count`` consecutive fusible rounds as one segment."""
    from repro.resilience.quarantine import CircuitState
    from repro.resilience.supervisor import RoundResult

    mechanism = supervisor.mechanism
    exact_stack = type(mechanism) is VerificationMechanism
    slack = supervisor.detector_slack

    results: list = []
    deferred: list[tuple[int, dict]] = []  # (slot in results, phase-A record)

    for _ in range(count):
        index = supervisor._round_index
        supervisor._round_index += 1
        rate = supervisor.round_rate(index)

        admitted = supervisor.quarantine.begin_round()
        probes = [
            n
            for n in admitted
            if supervisor.quarantine.state_of(n) is CircuitState.HALF_OPEN
        ]
        quarantined = supervisor.quarantine.quarantined()

        record_counter("horizon.fused.rounds")
        record_counter("supervisor.rounds")
        record_gauge("resilience.quarantine.open", len(quarantined))

        if len(admitted) < 2:
            # Too few live machines to price: the sequential path voids
            # without touching quarantine outcomes — replicated inline
            # (delegating to run_round would re-run begin_round and
            # corrupt the cooldown clocks).
            record_counter("supervisor.rounds_voided")
            observe_value("supervisor.jobs_routed", 0)
            results.append(
                RoundResult(
                    index=index,
                    participants=list(admitted),
                    probes=probes,
                    quarantined=quarantined,
                    excluded=list(admitted),
                    withheld=[],
                    alerts=[],
                    faulted=[],
                    fault_kinds={},
                    voided=True,
                    outcome=None,
                    loads={},
                    payments={},
                    utilities={},
                    payment_notices={},
                    bid_retries=0,
                    report_retries=0,
                    coordinator_restarts=0,
                    arrival_rate=rate,
                    jobs_routed=0,
                )
            )
            continue

        # -------------------------------------------------- wiring order
        # The sequential round materialises machines (one
        # ``agent.execution_value()`` each, in admitted order) before
        # any bid is requested; stateful agents observe the same call
        # sequence here.
        execution_values = [
            float(supervisor.agents[name].execution_value())
            for name in admitted
        ]
        bid_list = []
        for name in admitted:
            bid = supervisor.agents[name].bid()
            override = supervisor.bid_overrides.get(name)
            if override is not None and override > bid:
                record_counter("remediation.bid_overrides")
                annotate(
                    "remediation.bid_override",
                    machine=name,
                    declared=bid,
                    override=override,
                )
                bid = float(override)
            bid_list.append(bid)
        bids = np.array(bid_list, dtype=np.float64)

        # Incremental allocator loads: configure/routing/estimates use
        # these (the coordinator's ``_loads``); the mechanism's fresh
        # PR loads below are a *different* array used for detection
        # and RoundResult.loads, exactly as in the sequential round.
        allocation = supervisor._allocator.allocate(
            list(admitted), bids, rate
        )
        alloc_loads = allocation.loads

        times = supervisor._generate_times(index)
        jobs_routed = int(times.size)
        assignments = split_assignments(
            jobs_routed, alloc_loads / alloc_loads.sum(), supervisor._rng
        )

        # Per-machine execution statistics on the same mask-selected
        # subarrays dispatch_batched builds (arrivals are 0.0 + times,
        # bitwise the raw draws under the zero-delay network).
        n = len(admitted)
        counts = np.zeros(n, dtype=np.int64)
        mean_sojourns = np.zeros(n)
        machine_sojourns: list[np.ndarray | None] = [None] * n
        for k in range(n):
            sub = times[assignments == k]
            size = int(sub.size)
            counts[k] = size
            if size == 0:
                continue  # submit_batch returns before sampling
            mean = execution_values[k] * float(alloc_loads[k])
            if supervisor.deterministic_service:
                durations = np.full(size, mean)
            else:
                durations = supervisor._rng.exponential(mean, size=size)
            sojourns = (sub + durations) - sub
            machine_sojourns[k] = sojourns
            mean_sojourns[k] = float(sojourns.mean())

        # Execution-value estimates, from the allocator loads (the
        # coordinator's ``_complete_verification`` rule; a machine
        # with no completions reports mean_sojourn 0.0 and falls back
        # to its bid).
        estimates = np.empty(n)
        for k in range(n):
            if counts[k] == 0 or alloc_loads[k] == 0.0:
                estimates[k] = bids[k]
            else:
                estimates[k] = mean_sojourns[k] / alloc_loads[k]

        # ---------------------------------------------------- mechanism
        outcome: MechanismOutcome | None = None
        if (
            exact_stack
            and np.all(bids > 0.0)
            and np.all(estimates > 0.0)
            and np.all(np.isfinite(estimates))
        ):
            # Deferred: priced in the stacked Phase B broadcast.  The
            # detection below only needs the mechanism's PR loads,
            # which are three elementwise ops.
            inv = 1.0 / bids
            total_inv = float(inv.sum())
            mech_loads = rate * inv / total_inv
        else:
            # Non-verification mechanisms (or degenerate inputs, which
            # must raise exactly as the sequential path would) are
            # priced per round; the protocol tax is still skipped.
            outcome = mechanism.run(bids, rate, estimates)
            mech_loads = outcome.loads

        # ---------------------------------------------------- detection
        alerts: list[str] = []
        for k, name in enumerate(admitted):
            load = float(mech_loads[k])
            if load <= 0.0:
                continue
            sojourns = machine_sojourns[k]
            if sojourns is None:
                continue
            declared = float(bids[k])
            expected = declared * load
            standardised = sojourns / expected - 1.0
            if not np.any(standardised - slack > 0.0):
                continue  # the CUSUM statistic provably never leaves 0
            detector = CusumSlowdownDetector(
                declared,
                load,
                threshold=supervisor.detector_threshold,
                slack=supervisor.detector_slack,
            )
            if detector.observe_many(sojourns) is not None:
                alerts.append(name)
                record_counter("supervisor.slowdown_alerts")
                annotate("slowdown.alert", machine=name)

        # --------------------------------------------------- quarantine
        for name in admitted:
            if name in alerts:
                supervisor.quarantine.record_failure(name, "slowdown_alert")
            else:
                supervisor.quarantine.record_success(name)

        observe_value("supervisor.jobs_routed", jobs_routed)

        record = {
            "index": index,
            "rate": rate,
            "admitted": admitted,
            "probes": probes,
            "quarantined": quarantined,
            "alerts": alerts,
            "bids": bids,
            "estimates": estimates,
            "jobs_routed": jobs_routed,
            "outcome": outcome,
        }
        if outcome is None:
            deferred.append((len(results), record))
            results.append(None)  # filled by Phase B
        else:
            results.append(_round_result(RoundResult, record))

    # ---------------------------------------------------------- Phase B
    # Stack the deferred rounds by machine count and price each group
    # as one broadcast.  Rows are independent, so membership may vary
    # within a group; grouping by n only keeps the block rectangular.
    by_width: dict[int, list[tuple[int, dict]]] = {}
    for slot, record in deferred:
        by_width.setdefault(record["bids"].size, []).append((slot, record))
    for members in by_width.values():
        outcomes = _stacked_verification_outcomes(
            mechanism,
            np.array([rec["bids"] for _, rec in members]),
            np.array([rec["estimates"] for _, rec in members]),
            np.array([rec["rate"] for _, rec in members]),
        )
        for (slot, record), outcome in zip(members, outcomes):
            record["outcome"] = outcome
            results[slot] = _round_result(RoundResult, record)
    return results


def _round_result(round_result_cls, record: dict):
    """Assemble one clean fused round's RoundResult from its outcome."""
    outcome = record["outcome"]
    names = record["admitted"]
    payment_vector = outcome.payments.payment
    return round_result_cls(
        index=record["index"],
        participants=list(names),
        probes=record["probes"],
        quarantined=record["quarantined"],
        excluded=[],
        withheld=[],
        alerts=record["alerts"],
        faulted=[],
        fault_kinds={},
        voided=False,
        outcome=outcome,
        loads={n: float(x) for n, x in zip(names, outcome.loads)},
        payments={n: float(x) for n, x in zip(names, payment_vector)},
        utilities={
            n: float(u) for n, u in zip(names, outcome.payments.utility)
        },
        payment_notices={n: 1 for n in names},
        bid_retries=0,
        report_retries=0,
        coordinator_restarts=0,
        arrival_rate=record["rate"],
        jobs_routed=record["jobs_routed"],
    )


def run_horizon(
    supervisor: "RoundSupervisor",
    n_rounds: int,
    fault_plan=None,
) -> "SupervisorReport":
    """Drive ``n_rounds`` rounds, fusing every maximal fault-free run.

    Bit-identical to ``supervisor.run(n_rounds, fault_plan)`` on the
    same seed (the A27 bench asserts this before timing anything);
    every non-fusible round de-fuses to ``supervisor.run_round`` so
    chaos and remediation semantics are the sequential code itself.
    """
    from repro.resilience.supervisor import SupervisorReport

    if n_rounds < 1:
        raise ValueError("n_rounds must be at least 1")
    report = SupervisorReport()
    k = 0
    while k < n_rounds:
        faults = fault_plan[k] if fault_plan is not None else None
        if not fusible_round(supervisor, faults):
            record_counter("horizon.defused.boundaries")
            report.rounds.append(supervisor.run_round(faults))
            k += 1
            continue
        end = k + 1
        while end < n_rounds and fusible_round(
            supervisor, fault_plan[end] if fault_plan is not None else None
        ):
            end += 1
        with trace_span("horizon.segment", rounds=end - k):
            report.rounds.extend(_run_fused_segment(supervisor, end - k))
        k = end
    return report
