"""Coordinator and machine-node state machines for the protocol.

The control plane is message-driven: the coordinator advances through
the protocol phases as replies arrive over the simulated network, never
by peeking at other nodes' state.  The data plane (individual jobs) is
routed directly by the runtime — the paper's O(n) message complexity
refers to the control messages, and the network statistics count
exactly those.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.agents.base import Agent
from repro.mechanism.base import Mechanism
from repro.observability.instrumentation import annotate, record_counter
from repro.protocol.messages import (
    AllocationNotice,
    BidReply,
    BidRequest,
    CompletionReport,
    Message,
    PaymentNotice,
)
from repro.protocol.network import SimulatedNetwork
from repro.system.des import Simulator
from repro.system.machine import LinearLatencyMachine
from repro.types import MechanismOutcome

__all__ = ["ProtocolPhase", "MachineNode", "MechanismCoordinator"]

COORDINATOR_NAME = "mechanism"


class ProtocolPhase(enum.Enum):
    """Phases of the centralised protocol, in order.

    ``VOIDED`` is a terminal phase outside the normal sequence: the
    round was abandoned before any allocation was decided (e.g. no
    machine bid before the deadline, or a restarted coordinator could
    not recover enough state to continue).  A voided round routes no
    jobs and pays nobody.
    """

    IDLE = "idle"
    BIDDING = "bidding"
    EXECUTING = "executing"
    VERIFYING = "verifying"
    DONE = "done"
    VOIDED = "voided"


@dataclass
class MachineNode:
    """Network-facing wrapper around one machine and its strategic owner.

    Responds to the coordinator's control messages; the actual job
    execution happens in the wrapped :class:`LinearLatencyMachine`
    (whose execution value is the *agent's* choice — that is the
    behaviour the mechanism must verify).
    """

    name: str
    agent: Agent
    machine: LinearLatencyMachine
    network: SimulatedNetwork
    allocated_load: float | None = None
    received_payment: PaymentNotice | None = None

    def handle(self, message: Message, sim: Simulator) -> None:
        """Dispatch one delivered control message."""
        if isinstance(message, BidRequest):
            self.network.send(
                BidReply(
                    sender=self.name,
                    receiver=COORDINATOR_NAME,
                    bid=self.agent.bid(),
                )
            )
        elif isinstance(message, AllocationNotice):
            self.allocated_load = message.load
            self.machine.configure(message.load)
        elif isinstance(message, PaymentNotice):
            self.received_payment = message
        else:
            raise TypeError(f"machine {self.name} cannot handle {type(message).__name__}")

    def report_completion(self) -> None:
        """Send the coordinator this machine's execution summary."""
        stats = self.machine.stats()
        self.network.send(
            CompletionReport(
                sender=self.name,
                receiver=COORDINATOR_NAME,
                jobs_completed=stats.completed,
                mean_sojourn=stats.mean_sojourn if stats.completed else 0.0,
            )
        )


@dataclass
class MechanismCoordinator:
    """The central mechanism: collects bids, allocates, verifies, pays.

    Parameters
    ----------
    mechanism:
        Payment rule (normally :class:`~repro.mechanism.VerificationMechanism`).
    machine_names:
        Control-plane identities of the participating machines.
    arrival_rate:
        Total job rate ``R`` to allocate.
    network:
        The simulated network to communicate over.
    on_allocated:
        Runtime callback fired once the allocation is decided; receives
        the load vector in ``machine_names`` order (the runtime uses it
        to start routing jobs).
    """

    mechanism: Mechanism
    machine_names: list[str]
    arrival_rate: float
    network: SimulatedNetwork
    on_allocated: Callable[[np.ndarray], None] | None = None

    phase: ProtocolPhase = ProtocolPhase.IDLE
    outcome: MechanismOutcome | None = None
    estimated_execution_values: np.ndarray | None = None

    _bids: dict[str, float] = field(default_factory=dict)
    _reports: dict[str, CompletionReport] = field(default_factory=dict)
    _loads: np.ndarray | None = None
    # Membership/caching state, maintained incrementally: the pending
    # sets are lazily derived from (machine_names, _bids/_reports) on
    # first use — so a coordinator restored from a checkpoint (which
    # assigns ``_bids``/``_reports`` wholesale on a fresh instance)
    # rebuilds them correctly — then updated by discard as replies
    # arrive, replacing the per-message O(n) rescans.
    _pending_bids: set[str] | None = field(default=None, repr=False)
    _pending_reports: set[str] | None = field(default=None, repr=False)
    _bids_cache: np.ndarray | None = field(default=None, repr=False)

    def _set_phase(self, phase: ProtocolPhase) -> None:
        """Advance the state machine, recording the transition.

        All phase *transitions* funnel through here so the
        observability layer sees every one (a counter per (src, dst)
        edge plus a span annotation); restoring a checkpointed phase
        wholesale bypasses it deliberately — that is state recovery,
        not a transition.
        """
        previous = self.phase
        self.phase = phase
        if previous is not phase:
            record_counter(
                "protocol.phase_transitions", src=previous.value, dst=phase.value
            )
            annotate("protocol.phase", src=previous.value, dst=phase.value)

    def start(self) -> None:
        """Begin a round: request a bid from every machine."""
        if self.phase is not ProtocolPhase.IDLE:
            raise RuntimeError(f"cannot start from phase {self.phase}")
        self._set_phase(ProtocolPhase.BIDDING)
        for name in self.machine_names:
            self.network.send(BidRequest(sender=COORDINATOR_NAME, receiver=name))

    def handle(self, message: Message, sim: Simulator) -> None:
        """Dispatch one delivered control message."""
        if isinstance(message, BidReply):
            self._on_bid(message)
        elif isinstance(message, CompletionReport):
            self._on_report(message)
        else:
            raise TypeError(f"coordinator cannot handle {type(message).__name__}")

    # ------------------------------------------------------------ phases

    def _on_bid(self, reply: BidReply) -> None:
        if self.phase is not ProtocolPhase.BIDDING:
            raise RuntimeError(f"unexpected bid in phase {self.phase}")
        if reply.sender in self._bids:
            raise RuntimeError(f"duplicate bid from {reply.sender}")
        self._record_bid(reply)
        if self._pending_bid_set():
            return

        bids = self.bids_vector()
        allocation = self.mechanism.allocate(bids, self.arrival_rate)
        self._loads = allocation.loads
        self._set_phase(ProtocolPhase.EXECUTING)
        for name, load in zip(self.machine_names, allocation.loads):
            self.network.send(
                AllocationNotice(
                    sender=COORDINATOR_NAME, receiver=name, load=float(load)
                )
            )
        if self.on_allocated is not None:
            self.on_allocated(allocation.loads)

    def _on_report(self, report: CompletionReport) -> None:
        if self.phase is not ProtocolPhase.EXECUTING:
            raise RuntimeError(f"unexpected completion report in phase {self.phase}")
        if report.sender in self._reports:
            raise RuntimeError(f"duplicate report from {report.sender}")
        self._record_report(report)
        if self._pending_report_set():
            return

        self._set_phase(ProtocolPhase.VERIFYING)
        self._verify_and_pay()

    def _verify_and_pay(self) -> None:
        bids = self.bids_vector()
        assert self._loads is not None
        estimates = np.empty(len(self.machine_names))
        for k, name in enumerate(self.machine_names):
            report = self._reports[name]
            if report.jobs_completed == 0 or self._loads[k] == 0.0:
                # No executed jobs means no evidence against the bid;
                # the mechanism falls back to the declared value.
                estimates[k] = bids[k]
            else:
                # t̂ = mean sojourn / allocated rate (see estimator.py);
                # the report carries the pre-aggregated mean.
                estimates[k] = report.mean_sojourn / self._loads[k]

        self.estimated_execution_values = estimates
        self.outcome = self.mechanism.run(bids, self.arrival_rate, estimates)
        payments = self.outcome.payments
        for k, name in enumerate(self.machine_names):
            self.network.send(
                PaymentNotice(
                    sender=COORDINATOR_NAME,
                    receiver=name,
                    payment=float(payments.payment[k]),
                    compensation=float(payments.compensation[k]),
                    bonus=float(payments.bonus[k]),
                )
            )
        self._set_phase(ProtocolPhase.DONE)

    # ------------------------------------------------------------ helpers

    def _record_bid(self, reply: BidReply) -> None:
        """Store one bid and update the incremental membership state."""
        self._bids[reply.sender] = reply.bid
        self._bids_cache = None
        self._pending_bid_set().discard(reply.sender)

    def _record_report(self, report: CompletionReport) -> None:
        """Store one report and update the incremental membership state."""
        self._reports[report.sender] = report
        self._pending_report_set().discard(report.sender)

    def _pending_bid_set(self) -> set[str]:
        if self._pending_bids is None:
            self._pending_bids = set(self.machine_names) - self._bids.keys()
        return self._pending_bids

    def _pending_report_set(self) -> set[str]:
        if self._pending_reports is None:
            self._pending_reports = set(self.machine_names) - self._reports.keys()
        return self._pending_reports

    def _reset_membership_caches(self) -> None:
        """Invalidate the derived state after ``machine_names`` changes."""
        self._pending_bids = None
        self._pending_reports = None
        self._bids_cache = None

    @property
    def pending_bidders(self) -> list[str]:
        """Machines whose bid has not arrived yet (``machine_names`` order)."""
        pending = self._pending_bid_set()
        if not pending:
            return []
        return [n for n in self.machine_names if n in pending]

    @property
    def pending_reporters(self) -> list[str]:
        """Machines whose completion report has not arrived yet."""
        pending = self._pending_report_set()
        if not pending:
            return []
        return [n for n in self.machine_names if n in pending]

    def bids_vector(self) -> np.ndarray:
        """Collected bids in ``machine_names`` order.

        The vector is assembled once per phase and cached (a new bid or
        a membership change invalidates it); callers get a copy, so the
        cache can never be mutated from outside.
        """
        cache = self._bids_cache
        if cache is not None and cache.size == len(self.machine_names):
            return cache.copy()
        if self._pending_bid_set():
            raise RuntimeError("bids are not complete yet")
        self._bids_cache = np.array(
            [self._bids[name] for name in self.machine_names]
        )
        return self._bids_cache.copy()
