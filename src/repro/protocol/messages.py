"""Typed protocol messages.

Each phase of the centralised protocol exchanges exactly one message
per machine, which is how the O(n) total message count arises:
``BidRequest``/``BidReply`` (2n), ``AllocationNotice`` (n),
``CompletionReport`` (n), ``PaymentNotice`` (n) — 5n messages per round.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Message",
    "BidRequest",
    "BidReply",
    "AllocationNotice",
    "CompletionReport",
    "PaymentNotice",
]


@dataclass(frozen=True)
class Message:
    """Base protocol message: sender and receiver identifiers.

    The coordinator uses the reserved name ``"mechanism"``.
    """

    sender: str
    receiver: str


@dataclass(frozen=True)
class BidRequest(Message):
    """Mechanism asks a machine to declare its latency slope."""


@dataclass(frozen=True)
class BidReply(Message):
    """A machine's declared latency slope (its bid ``b_i``)."""

    bid: float

    def __post_init__(self) -> None:
        if self.bid <= 0.0:
            raise ValueError(f"bid must be positive, got {self.bid:g}")


@dataclass(frozen=True)
class AllocationNotice(Message):
    """Mechanism tells a machine the job rate routed to it."""

    load: float

    def __post_init__(self) -> None:
        if self.load < 0.0:
            raise ValueError(f"load must be non-negative, got {self.load:g}")


@dataclass(frozen=True)
class CompletionReport(Message):
    """A machine reports summary statistics of its executed jobs.

    The mechanism uses the report to *estimate* the machine's execution
    value; the machine cannot directly declare ``t̃`` (that would defeat
    verification), it can only influence the observable completions.
    """

    jobs_completed: int
    mean_sojourn: float

    def __post_init__(self) -> None:
        if self.jobs_completed < 0:
            raise ValueError("jobs_completed must be non-negative")


@dataclass(frozen=True)
class PaymentNotice(Message):
    """Mechanism hands a machine its payment (compensation + bonus)."""

    payment: float
    compensation: float
    bonus: float
