"""Affine latency model ``l_i(x) = a_i + t_i x``.

The linear model the paper uses is the zero-intercept special case.
The affine generalisation matters for the selfish-routing comparison
(:mod:`repro.analysis.wardrop`): with zero intercepts the selfish
(Wardrop) allocation coincides with the system optimum, while with
intercepts the two separate and the price of anarchy is bounded by 4/3
(Roughgarden & Tardos — the paper's ref [19] line of work).
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_nonnegative, check_positive
from repro.latency.base import LatencyModel
from repro.latency.linear import LinearLatencyModel

__all__ = ["AffineLatencyModel"]


class AffineLatencyModel(LatencyModel):
    """Affine per-job latency ``l_i(x) = a_i + t_i x``.

    Parameters
    ----------
    intercept:
        Load-independent latency components ``a_i >= 0`` (e.g. fixed
        service or network time).
    slope:
        Load-dependent slopes ``t_i > 0``.
    """

    def __init__(self, intercept: np.ndarray, slope: np.ndarray) -> None:
        a = as_float_array(intercept, "intercept")
        t = as_float_array(slope, "slope")
        check_nonnegative(a, "intercept")
        check_positive(t, "slope")
        if a.size != t.size:
            raise ValueError("intercept and slope must have equal length")
        self._a = a
        self._t = t
        self._a.setflags(write=False)
        self._t.setflags(write=False)
        self.n_machines = int(t.size)

    @property
    def intercept(self) -> np.ndarray:
        """Per-machine constant latency terms (read-only)."""
        return self._a

    @property
    def slope(self) -> np.ndarray:
        """Per-machine latency slopes (read-only)."""
        return self._t

    # ---------------------------------------------------------------- core

    def per_job(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        return self._a + self._t * loads

    def marginal(self, loads: np.ndarray) -> np.ndarray:
        # d/dx [x (a + t x)] = a + 2 t x
        loads = self._check_loads(loads)
        return self._a + 2.0 * self._t * loads

    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        slope = np.asarray(slope, dtype=np.float64)
        if np.any(slope < 0.0):
            raise ValueError("slope must be non-negative")
        return np.maximum((slope - self._a) / (2.0 * self._t), 0.0)

    def load_capacity(self) -> np.ndarray:
        return np.full(self.n_machines, np.inf)

    # ------------------------------------------------------------ utilities

    def per_job_inverse(self, level: float | np.ndarray) -> np.ndarray:
        """Load at which each machine's *per-job* latency equals ``level``.

        Clipped at zero where the intercept already exceeds the level.
        This is the primitive the Wardrop equilibrium solver needs: at
        equilibrium every used machine has equal per-job latency.
        """
        level = np.asarray(level, dtype=np.float64)
        return np.maximum((level - self._a) / self._t, 0.0)

    def without_intercepts(self) -> LinearLatencyModel:
        """The paper's linear model with the same slopes."""
        return LinearLatencyModel(self._t)

    def restricted_to(self, mask: np.ndarray) -> "AffineLatencyModel":
        """A model over the machine subset selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_machines:
            raise ValueError("mask length does not match the number of machines")
        if not np.any(mask):
            raise ValueError("the restricted model must keep at least one machine")
        return AffineLatencyModel(self._a[mask], self._t[mask])

    def __repr__(self) -> str:
        return (
            f"AffineLatencyModel(intercept={np.array2string(self._a, threshold=8)}, "
            f"slope={np.array2string(self._t, threshold=8)})"
        )
