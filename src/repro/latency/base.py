"""Abstract base class for vectorised per-machine latency models."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._validation import as_float_array, check_nonnegative

__all__ = ["LatencyModel"]


class LatencyModel(ABC):
    """A family of load-dependent latency functions, one per machine.

    Subclasses hold per-machine parameter arrays and implement the three
    primitives the allocation solvers need:

    * :meth:`per_job` — ``l_i(x_i)``: the expected time to complete one
      job at machine ``i`` when jobs arrive at rate ``x_i``;
    * :meth:`marginal` — ``d/dx [x l_i(x)]``: marginal increase of the
      machine's *total* latency with load;
    * :meth:`marginal_inverse` — functional inverse of :meth:`marginal`,
      used by the water-filling optimiser.

    The total (system) objective the paper minimises is
    ``L(x) = sum_i x_i l_i(x_i)``.
    """

    #: number of machines this model describes
    n_machines: int

    # ---------------------------------------------------------------- core

    @abstractmethod
    def per_job(self, loads: np.ndarray) -> np.ndarray:
        """Per-job latency ``l_i(x_i)`` for each machine."""

    @abstractmethod
    def marginal(self, loads: np.ndarray) -> np.ndarray:
        """Derivative of per-machine total latency ``d/dx [x l_i(x)]``."""

    @abstractmethod
    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        """Load at which each machine's marginal total latency equals ``slope``.

        Must return 0 where the marginal at zero load already exceeds
        ``slope`` (the machine is priced out at that water level).
        """

    @abstractmethod
    def load_capacity(self) -> np.ndarray:
        """Per-machine supremum of feasible load (``inf`` if unbounded)."""

    # ------------------------------------------------------------ derived

    def total(self, loads: np.ndarray) -> np.ndarray:
        """Per-machine total latency contribution ``x_i l_i(x_i)``."""
        loads = self._check_loads(loads)
        return loads * self.per_job(loads)

    def total_latency(self, loads: np.ndarray) -> float:
        """System objective ``L(x) = sum_i x_i l_i(x_i)``."""
        return float(np.sum(self.total(loads)))

    # ------------------------------------------------------------ helpers

    def _check_loads(self, loads: np.ndarray) -> np.ndarray:
        """Validate a load vector against this model's machine count."""
        loads = as_float_array(loads, "loads")
        if loads.size != self.n_machines:
            raise ValueError(
                f"loads has {loads.size} entries but the model describes "
                f"{self.n_machines} machines"
            )
        check_nonnegative(loads, "loads")
        cap = self.load_capacity()
        if np.any(loads >= cap):
            bad = int(np.argmax(loads >= cap))
            raise ValueError(
                f"load {loads[bad]:g} at machine {bad} is not below its "
                f"capacity {cap[bad]:g}"
            )
        return loads

    def __len__(self) -> int:
        return self.n_machines
