"""M/M/1 sojourn-time latency model ``l_i(x) = 1/(mu_i - x)``.

This is the delay model used by the companion truthful-mechanism paper
(Grosu & Chronopoulos, CLUSTER 2002 — ref [8] of the reproduced paper)
and the classical static load-balancing literature (ref [10]).  It is
included both as a substrate for the Archer–Tardos baseline mechanism
and as a validation target for the discrete-event queue simulator.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_positive
from repro.latency.base import LatencyModel

__all__ = ["MM1LatencyModel"]


class MM1LatencyModel(LatencyModel):
    """Expected sojourn time of an M/M/1 queue, per machine.

    For service rate ``mu_i`` and Poisson arrivals at rate ``x < mu_i``,
    the expected time a job spends at machine ``i`` is
    ``l_i(x) = 1 / (mu_i - x)``.  The per-machine total latency
    ``x / (mu_i - x)`` is the expected number of jobs in the system
    (Little's law), and the system objective ``L(x)`` is the expected
    total number of jobs in flight.

    Parameters
    ----------
    mu:
        Strictly positive per-machine service rates.
    """

    def __init__(self, mu: np.ndarray) -> None:
        mu = as_float_array(mu, "mu")
        check_positive(mu, "mu")
        self._mu = mu
        self._mu.setflags(write=False)
        self.n_machines = int(mu.size)

    @property
    def mu(self) -> np.ndarray:
        """Per-machine service rates (read-only)."""
        return self._mu

    # ---------------------------------------------------------------- core

    def per_job(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        return 1.0 / (self._mu - loads)

    def marginal(self, loads: np.ndarray) -> np.ndarray:
        # d/dx [x/(mu-x)] = mu / (mu - x)^2
        loads = self._check_loads(loads)
        return self._mu / (self._mu - loads) ** 2

    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        # mu/(mu-x)^2 = g  =>  x = mu - sqrt(mu/g), clipped at 0 when the
        # marginal at zero load (1/mu) already exceeds g.
        slope = np.asarray(slope, dtype=np.float64)
        if np.any(slope <= 0.0):
            raise ValueError("slope must be strictly positive for M/M/1")
        x = self._mu - np.sqrt(self._mu / slope)
        return np.maximum(x, 0.0)

    def load_capacity(self) -> np.ndarray:
        return self._mu.copy()

    # ------------------------------------------------------------ utilities

    def utilisation(self, loads: np.ndarray) -> np.ndarray:
        """Per-machine utilisation ``rho_i = x_i / mu_i``."""
        loads = self._check_loads(loads)
        return loads / self._mu

    def restricted_to(self, mask: np.ndarray) -> "MM1LatencyModel":
        """A model over the machine subset selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_machines:
            raise ValueError("mask length does not match the number of machines")
        if not np.any(mask):
            raise ValueError("the restricted model must keep at least one machine")
        return MM1LatencyModel(self._mu[mask])

    def with_values(self, mu: np.ndarray) -> "MM1LatencyModel":
        """A new model of the same class with different service rates."""
        return MM1LatencyModel(mu)

    def __repr__(self) -> str:
        return f"MM1LatencyModel(mu={np.array2string(self._mu, threshold=8)})"
