"""Load-dependent latency models for heterogeneous machines.

The paper models each computer ``i`` by a *linear* load-dependent latency
function ``l_i(x) = t_i x`` (Section 2).  This subpackage provides that
model plus the two queueing-theoretic models the paper points to as its
justification and as related work:

* :class:`LinearLatencyModel` — the paper's model (refs [1, 19] therein);
* :class:`MM1LatencyModel` — M/M/1 delay ``1/(mu - x)`` used by the
  companion mechanism paper (ref [8]);
* :class:`MG1LatencyModel` — M/G/1 sojourn time via Pollaczek–Khinchine,
  whose light-load waiting time is linear in the arrival rate — the
  paper's stated physical interpretation of the linear model.

All models are vectorised over machines: a model holds the parameter
array for a whole cluster and evaluates per-machine latencies for a load
vector in one shot.
"""

from repro.latency.base import LatencyModel
from repro.latency.linear import LinearLatencyModel
from repro.latency.mm1 import MM1LatencyModel
from repro.latency.mg1 import MG1LatencyModel
from repro.latency.affine import AffineLatencyModel
from repro.latency.kingman import KingmanLatencyModel

__all__ = [
    "LatencyModel",
    "LinearLatencyModel",
    "MM1LatencyModel",
    "MG1LatencyModel",
    "AffineLatencyModel",
    "KingmanLatencyModel",
]
