"""The paper's linear load-dependent latency model ``l_i(x) = t_i x``."""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_positive
from repro.latency.base import LatencyModel

__all__ = ["LinearLatencyModel"]


class LinearLatencyModel(LatencyModel):
    """Linear latency ``l_i(x) = t_i x`` (paper, eq. 1).

    ``t_i`` is inversely proportional to machine ``i``'s processing
    rate: a small ``t_i`` is a fast machine.  The per-machine total
    latency is the quadratic ``t_i x^2``, so the system objective is
    ``L(x) = sum_i t_i x_i^2``.

    Parameters
    ----------
    t:
        Strictly positive per-machine latency slopes.

    Examples
    --------
    >>> model = LinearLatencyModel([1.0, 2.0])
    >>> model.per_job([3.0, 1.0])
    array([3., 2.])
    >>> model.total_latency([3.0, 1.0])
    11.0
    """

    def __init__(self, t: np.ndarray) -> None:
        t = as_float_array(t, "t")
        check_positive(t, "t")
        self._t = t
        self._t.setflags(write=False)
        self.n_machines = int(t.size)

    @property
    def t(self) -> np.ndarray:
        """Per-machine latency slopes (read-only)."""
        return self._t

    @property
    def processing_rates(self) -> np.ndarray:
        """Per-machine processing rates ``1 / t_i``."""
        return 1.0 / self._t

    # ---------------------------------------------------------------- core

    def per_job(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        return self._t * loads

    def marginal(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        return 2.0 * self._t * loads

    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        slope = np.asarray(slope, dtype=np.float64)
        if np.any(slope < 0.0):
            raise ValueError("slope must be non-negative")
        return slope / (2.0 * self._t)

    def load_capacity(self) -> np.ndarray:
        return np.full(self.n_machines, np.inf)

    # ------------------------------------------------------------ utilities

    def per_job_inverse(self, level: float | np.ndarray) -> np.ndarray:
        """Load at which each machine's *per-job* latency equals ``level``.

        Broadcastable (a ``(G, 1)`` level column yields a ``(G, n)``
        load matrix), which is what lets the Wardrop sweep bisect every
        arrival-rate grid point at once.
        """
        level = np.asarray(level, dtype=np.float64)
        return np.maximum(level / self._t, 0.0)

    def restricted_to(self, mask: np.ndarray) -> "LinearLatencyModel":
        """A model over the machine subset selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_machines:
            raise ValueError("mask length does not match the number of machines")
        if not np.any(mask):
            raise ValueError("the restricted model must keep at least one machine")
        return LinearLatencyModel(self._t[mask])

    def with_values(self, t: np.ndarray) -> "LinearLatencyModel":
        """A new model of the same class with different slopes."""
        return LinearLatencyModel(t)

    def __repr__(self) -> str:
        return f"LinearLatencyModel(t={np.array2string(self._t, threshold=8)})"
