"""G/G/1 waiting time via Kingman's heavy-traffic approximation.

Completes the latency-model family: the paper's linear model is the
light-load limit of M/G/1 (see :mod:`repro.latency.mg1`); Kingman's
formula covers general arrival processes,

    ``W_q(x) ≈ (rho / (1 - rho)) * ((c_a^2 + c_s^2) / 2) * E[S]``

with ``rho = x E[S]`` and ``c_a, c_s`` the coefficients of variation of
interarrival and service times.  It is *exact* for M/M/1
(``c_a = c_s = 1``) and reproduces Pollaczek–Khinchine for M/G/1
(``c_a = 1``), both verified in the tests together with a direct G/G/1
validation against the Lindley-recursion simulator at high utilisation.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_nonnegative, check_positive
from repro.latency.base import LatencyModel

__all__ = ["KingmanLatencyModel"]


class KingmanLatencyModel(LatencyModel):
    """Kingman waiting-time model, per machine.

    Parameters
    ----------
    mean_service:
        Per-machine ``E[S]`` (strictly positive).
    arrival_scv:
        Squared coefficient of variation ``c_a^2`` of interarrival
        times (scalar or per machine; 1 for Poisson arrivals, 0 for a
        deterministic clock).
    service_scv:
        Squared coefficient of variation ``c_s^2`` of service times
        (1 exponential, 0 deterministic).
    """

    def __init__(
        self,
        mean_service: np.ndarray,
        arrival_scv: float | np.ndarray = 1.0,
        service_scv: float | np.ndarray = 1.0,
    ) -> None:
        es = as_float_array(mean_service, "mean_service")
        check_positive(es, "mean_service")
        ca2 = np.broadcast_to(
            np.asarray(arrival_scv, dtype=np.float64), es.shape
        ).copy()
        cs2 = np.broadcast_to(
            np.asarray(service_scv, dtype=np.float64), es.shape
        ).copy()
        check_nonnegative(ca2, "arrival_scv")
        check_nonnegative(cs2, "service_scv")
        self._es = es
        self._variability = (ca2 + cs2) / 2.0
        self._es.setflags(write=False)
        self._variability.setflags(write=False)
        self.n_machines = int(es.size)

    @property
    def mean_service(self) -> np.ndarray:
        """Per-machine mean service time (read-only)."""
        return self._es

    @property
    def variability(self) -> np.ndarray:
        """The Kingman variability factor ``(c_a^2 + c_s^2)/2``."""
        return self._variability

    # ---------------------------------------------------------------- core

    def per_job(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        rho = loads * self._es
        return rho / (1.0 - rho) * self._variability * self._es

    def marginal(self, loads: np.ndarray) -> np.ndarray:
        # total = K E[S]^2 x^2 / (1 - x E[S]);
        # d/dx = K E[S]^2 x (2 - x E[S]) / (1 - x E[S])^2
        loads = self._check_loads(loads)
        one_minus = 1.0 - loads * self._es
        return (
            self._variability
            * self._es**2
            * loads
            * (2.0 - loads * self._es)
            / one_minus**2
        )

    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        """Vectorised bisection (same monotone structure as M/G/1)."""
        slope = np.broadcast_to(
            np.asarray(slope, dtype=np.float64), (self.n_machines,)
        ).copy()
        if np.any(slope < 0.0):
            raise ValueError("slope must be non-negative")

        # Machines with zero variability never wait: their total
        # latency is identically zero, so any positive slope saturates.
        degenerate = self._variability == 0.0

        lo = np.zeros(self.n_machines)
        hi = (1.0 / self._es) * (1.0 - 1e-12)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            one_minus = 1.0 - mid * self._es
            g = (
                self._variability
                * self._es**2
                * mid
                * (2.0 - mid * self._es)
                / one_minus**2
            )
            too_low = g < slope
            lo = np.where(too_low, mid, lo)
            hi = np.where(too_low, hi, mid)
        out = 0.5 * (lo + hi)
        return np.where(degenerate & (slope > 0), hi, out)

    def load_capacity(self) -> np.ndarray:
        return 1.0 / self._es

    # ------------------------------------------------------------ utilities

    @classmethod
    def mm1(cls, mu: np.ndarray) -> "KingmanLatencyModel":
        """M/M/1 instance (exact, not approximate, at c_a = c_s = 1)."""
        mu = as_float_array(mu, "mu")
        check_positive(mu, "mu")
        return cls(1.0 / mu, arrival_scv=1.0, service_scv=1.0)

    def restricted_to(self, mask: np.ndarray) -> "KingmanLatencyModel":
        """A model over the machine subset selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_machines:
            raise ValueError("mask length does not match the number of machines")
        if not np.any(mask):
            raise ValueError("the restricted model must keep at least one machine")
        restricted = KingmanLatencyModel(self._es[mask])
        restricted._variability = self._variability[mask].copy()
        restricted._variability.setflags(write=False)
        return restricted

    def __repr__(self) -> str:
        return (
            f"KingmanLatencyModel(mean_service={np.array2string(self._es, threshold=8)}, "
            f"variability={np.array2string(self._variability, threshold=8)})"
        )
