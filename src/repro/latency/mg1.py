"""M/G/1 latency via Pollaczek–Khinchine, and its light-load linearisation.

The paper motivates the linear model ``l(x) = t x`` as "the expected
waiting time in a M/G/1 queue, under light load conditions (considering
t as the variance of the service time)" (Section 2, citing Altman et
al.).  This module implements the exact M/G/1 expected waiting time and
exposes the light-load linearisation explicitly, so tests can verify the
paper's claimed correspondence: as the load goes to zero the M/G/1
waiting time approaches ``x * E[S^2] / 2``, i.e. a linear latency with
slope ``t = E[S^2]/2``.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_positive
from repro.latency.base import LatencyModel
from repro.latency.linear import LinearLatencyModel

__all__ = ["MG1LatencyModel"]


class MG1LatencyModel(LatencyModel):
    """Expected M/G/1 *waiting* time per job, per machine.

    For Poisson arrivals at rate ``x`` and i.i.d. service times ``S``
    with first two moments ``E[S]`` and ``E[S^2]``, the
    Pollaczek–Khinchine formula gives the expected waiting time in queue

    ``W_q(x) = x E[S^2] / (2 (1 - x E[S]))``  for ``x E[S] < 1``.

    We use the waiting time (not the sojourn time) as the per-job
    latency because that is the quantity the paper linearises: at light
    load ``W_q(x) ≈ x E[S^2]/2``, exactly the paper's ``l(x) = t x``.

    Parameters
    ----------
    mean_service:
        Per-machine ``E[S]`` (strictly positive).
    second_moment:
        Per-machine ``E[S^2]``; must satisfy ``E[S^2] >= E[S]^2``.
    """

    def __init__(self, mean_service: np.ndarray, second_moment: np.ndarray) -> None:
        es = as_float_array(mean_service, "mean_service")
        es2 = as_float_array(second_moment, "second_moment")
        check_positive(es, "mean_service")
        check_positive(es2, "second_moment")
        if es.size != es2.size:
            raise ValueError("mean_service and second_moment must have equal length")
        if np.any(es2 < es**2):
            raise ValueError("second_moment must be at least mean_service**2")
        self._es = es
        self._es2 = es2
        self._es.setflags(write=False)
        self._es2.setflags(write=False)
        self.n_machines = int(es.size)

    @property
    def mean_service(self) -> np.ndarray:
        """Per-machine mean service time ``E[S]`` (read-only)."""
        return self._es

    @property
    def second_moment(self) -> np.ndarray:
        """Per-machine second moment ``E[S^2]`` (read-only)."""
        return self._es2

    # ---------------------------------------------------------------- core

    def per_job(self, loads: np.ndarray) -> np.ndarray:
        loads = self._check_loads(loads)
        return loads * self._es2 / (2.0 * (1.0 - loads * self._es))

    def marginal(self, loads: np.ndarray) -> np.ndarray:
        # total = x^2 es2 / (2 (1 - x es));
        # d/dx = es2 * (2x(1-x es) + x^2 es) / (2 (1 - x es)^2)
        #      = es2 * x (2 - x es) / (2 (1 - x es)^2)
        loads = self._check_loads(loads)
        one_minus = 1.0 - loads * self._es
        return self._es2 * loads * (2.0 - loads * self._es) / (2.0 * one_minus**2)

    def marginal_inverse(self, slope: float | np.ndarray) -> np.ndarray:
        """Invert the marginal numerically with a vectorised bisection.

        The marginal is strictly increasing from 0 (at zero load) to
        infinity (as the load approaches capacity), so the inverse is
        well defined for every non-negative slope.
        """
        slope = np.broadcast_to(
            np.asarray(slope, dtype=np.float64), (self.n_machines,)
        ).copy()
        if np.any(slope < 0.0):
            raise ValueError("slope must be non-negative")

        lo = np.zeros(self.n_machines)
        hi = (1.0 / self._es) * (1.0 - 1e-12)
        # Bisection on the (monotone) marginal; 80 iterations gives
        # ~1e-24 relative bracketing error, far below float64 noise.
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            one_minus = 1.0 - mid * self._es
            g = self._es2 * mid * (2.0 - mid * self._es) / (2.0 * one_minus**2)
            too_low = g < slope
            lo = np.where(too_low, mid, lo)
            hi = np.where(too_low, hi, mid)
        return 0.5 * (lo + hi)

    def load_capacity(self) -> np.ndarray:
        return 1.0 / self._es

    # ------------------------------------------------------------ utilities

    def light_load_linearization(self) -> LinearLatencyModel:
        """The paper's linear model this queue reduces to at light load.

        ``W_q(x) -> x E[S^2]/2`` as ``x -> 0``, so the linear slope is
        ``t_i = E[S_i^2] / 2``.
        """
        return LinearLatencyModel(self._es2 / 2.0)

    @classmethod
    def exponential(cls, mu: np.ndarray) -> "MG1LatencyModel":
        """M/G/1 with exponential service at rates ``mu`` (i.e. M/M/1).

        For ``S ~ Exp(mu)``: ``E[S] = 1/mu``, ``E[S^2] = 2/mu^2``.
        """
        mu = as_float_array(mu, "mu")
        check_positive(mu, "mu")
        return cls(1.0 / mu, 2.0 / mu**2)

    @classmethod
    def deterministic(cls, service_time: np.ndarray) -> "MG1LatencyModel":
        """M/D/1 with fixed service times (``E[S^2] = E[S]^2``)."""
        s = as_float_array(service_time, "service_time")
        check_positive(s, "service_time")
        return cls(s, s**2)

    def restricted_to(self, mask: np.ndarray) -> "MG1LatencyModel":
        """A model over the machine subset selected by boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self.n_machines:
            raise ValueError("mask length does not match the number of machines")
        if not np.any(mask):
            raise ValueError("the restricted model must keep at least one machine")
        return MG1LatencyModel(self._es[mask], self._es2[mask])

    def __repr__(self) -> str:
        return (
            f"MG1LatencyModel(mean_service={np.array2string(self._es, threshold=8)}, "
            f"second_moment={np.array2string(self._es2, threshold=8)})"
        )
