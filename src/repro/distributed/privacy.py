"""Agent privacy via additive secret sharing.

The distributed mechanism only ever needs *sums* of per-machine private
quantities (``sum 1/b_j`` for the allocation, ``sum t̃_j x_j^2`` for the
payments).  Additive secret sharing lets the machines reveal those sums
without revealing any individual term to any single party:

* each machine splits its value ``v`` into ``k`` shares
  ``v = s_1 + ... + s_k`` with ``s_1..s_{k-1}`` drawn uniformly from a
  wide interval and ``s_k`` the residual;
* share ``j`` goes to aggregator ``j``; each aggregator sums the shares
  it received across machines;
* the aggregator subtotals are summed publicly — the result is the
  exact global sum, while any single aggregator's view of one machine
  is a uniform random number carrying (statistically) no information
  about ``v``.

An honest-but-curious adversary must control **all** ``k`` aggregators
to learn an individual value — the standard threshold for this
construction; the tests include a statistical leak check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array

__all__ = ["share_additively", "reconstruct_sum", "SecureSumAggregation"]


def share_additively(
    value: float,
    n_shares: int,
    rng: np.random.Generator,
    *,
    mask_scale: float = 1e6,
) -> np.ndarray:
    """Split ``value`` into ``n_shares`` additive shares.

    The first ``n_shares - 1`` shares are uniform on
    ``[-mask_scale, mask_scale]``; the last is the residual.  The scale
    should dominate the magnitude of the secrets (statistical rather
    than information-theoretic hiding over the reals; over a finite
    field this construction is perfectly hiding).
    """
    if n_shares < 1:
        raise ValueError("n_shares must be at least 1")
    if mask_scale <= 0.0:
        raise ValueError("mask_scale must be positive")
    shares = np.empty(n_shares)
    shares[:-1] = rng.uniform(-mask_scale, mask_scale, size=n_shares - 1)
    shares[-1] = value - shares[:-1].sum()
    return shares


def reconstruct_sum(aggregator_subtotals: np.ndarray) -> float:
    """Combine the aggregators' subtotals into the global sum."""
    subtotals = as_float_array(aggregator_subtotals, "aggregator_subtotals")
    return float(subtotals.sum())


@dataclass
class SecureSumAggregation:
    """One secure-sum round across ``n_aggregators`` independent parties.

    Usage::

        round_ = SecureSumAggregation(n_aggregators=3, rng=rng)
        for v in private_values:
            round_.contribute(v)
        total = round_.result()
    """

    n_aggregators: int
    rng: np.random.Generator
    mask_scale: float = 1e6

    def __post_init__(self) -> None:
        if self.n_aggregators < 1:
            raise ValueError("n_aggregators must be at least 1")
        self._subtotals = np.zeros(self.n_aggregators)
        self._contributions = 0

    def contribute(self, value: float) -> None:
        """Split ``value`` and deliver one share to each aggregator."""
        shares = share_additively(
            float(value), self.n_aggregators, self.rng, mask_scale=self.mask_scale
        )
        self._subtotals += shares
        self._contributions += 1

    @property
    def n_contributions(self) -> int:
        """How many machines have contributed so far."""
        return self._contributions

    def aggregator_view(self, index: int) -> float:
        """What aggregator ``index`` alone sees (its running subtotal)."""
        return float(self._subtotals[index])

    def result(self) -> float:
        """The exact global sum (requires combining all aggregators)."""
        return reconstruct_sum(self._subtotals)

    def messages_sent(self) -> int:
        """Share-delivery messages so far (k per contribution)."""
        return self._contributions * self.n_aggregators
