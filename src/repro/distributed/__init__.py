"""Distributed handling of payments and agent privacy.

The paper closes with: "Future work will address the problem of
distributed handling of payments and the agents privacy."  This
subpackage implements both, in the style of the distributed algorithmic
mechanism design line the paper cites (Feigenbaum et al., refs [4-6]):

* :mod:`repro.distributed.topology` — overlay topologies (star, k-ary
  tree, random spanning tree) built on :mod:`networkx`;
* :mod:`repro.distributed.aggregation` — convergecast/broadcast rounds
  computing global sums over a spanning tree with exactly ``2(n-1)``
  messages per round;
* :mod:`repro.distributed.privacy` — additive secret sharing so that no
  single aggregator learns any individual bid or cost;
* :mod:`repro.distributed.mechanism` — the distributed verification
  mechanism: every machine computes its *own* payment from two global
  aggregates (``S = sum 1/b_j`` and the realised latency ``L``), with
  no central trusted payment computer.  Its outcome equals the
  centralised mechanism's to machine precision (tested);
* :mod:`repro.distributed.shard` / :mod:`~repro.distributed.gather` /
  :mod:`~repro.distributed.service` — the sharded coordinator service:
  agents partitioned across long-lived coordinator workers, rounds run
  as staged fan-outs, only the (S, Q) partial sums crossing shard
  boundaries, per-shard crash recovery through the checkpoint/ledger
  path.  Operator's guide: ``docs/distributed.md``.
"""

from repro.distributed.topology import (
    Overlay,
    star_overlay,
    tree_overlay,
    random_tree_overlay,
)
from repro.distributed.aggregation import AggregationStats, tree_sum
from repro.distributed.privacy import (
    share_additively,
    reconstruct_sum,
    SecureSumAggregation,
)
from repro.distributed.mechanism import (
    DistributedOutcome,
    DistributedVerificationMechanism,
)
from repro.distributed.audit import (
    TamperingCheck,
    tree_sum_with_relay_faults,
    double_tree_check,
)
from repro.distributed.gather import (
    PartialSum,
    ShardPartial,
    aggregate_shards,
    concatenate_payload,
)
from repro.distributed.shard import (
    CoordinatorShard,
    ShardCrash,
    partition_names,
)
from repro.distributed.service import (
    AGGREGATION_MODES,
    SHARD_EXECUTORS,
    WORKLOAD_MODES,
    ShardedCoordinatorService,
    ShardedRound,
    ShardedRoundResult,
)

__all__ = [
    "Overlay",
    "star_overlay",
    "tree_overlay",
    "random_tree_overlay",
    "AggregationStats",
    "tree_sum",
    "share_additively",
    "reconstruct_sum",
    "SecureSumAggregation",
    "DistributedOutcome",
    "DistributedVerificationMechanism",
    "TamperingCheck",
    "tree_sum_with_relay_faults",
    "double_tree_check",
    "PartialSum",
    "ShardPartial",
    "aggregate_shards",
    "concatenate_payload",
    "CoordinatorShard",
    "ShardCrash",
    "partition_names",
    "AGGREGATION_MODES",
    "SHARD_EXECUTORS",
    "WORKLOAD_MODES",
    "ShardedCoordinatorService",
    "ShardedRound",
    "ShardedRoundResult",
]
