"""Detecting tampered aggregation: the Byzantine boundary.

The tree aggregation of :mod:`repro.distributed.aggregation` trusts
internal nodes to add honestly.  A single corrupt *relay* can shift the
global sum — and with it everyone's payments.  This module implements
the classic cheap countermeasure and maps its boundary:

* **double-tree cross-check** — run the aggregation over two
  independently drawn random trees.  A relay whose corruption depends
  on the subtotal it forwards (multiplicative skimming, truncation,
  any non-constant distortion) roots a *different* subtree in each
  tree, so the two totals disagree and the tampering is *detected*
  (not attributed).

* **the undetectable residue** — corruption that is *independent of
  position* escapes: a machine lying about its own input, or a relay
  adding a constant, shifts both runs identically.  That residue is
  exactly input corruption, and input integrity is what the paper's
  *verification* step (observing execution) and the mechanism's
  incentives are for — the aggregation layer cannot and need not police
  it.  The tests pin both sides of this boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.distributed.aggregation import tree_sum
from repro.distributed.topology import ROOT, Overlay, random_tree_overlay

__all__ = ["TamperingCheck", "tree_sum_with_relay_faults", "double_tree_check"]


@dataclass(frozen=True)
class TamperingCheck:
    """Result of a double-tree aggregation cross-check."""

    total_first: float
    total_second: float
    tolerance: float

    @property
    def consistent(self) -> bool:
        """Whether the two independent aggregations agree."""
        scale = max(abs(self.total_first), abs(self.total_second), 1.0)
        return abs(self.total_first - self.total_second) <= self.tolerance * scale

    @property
    def agreed_total(self) -> float:
        """The common total (only meaningful when :attr:`consistent`)."""
        return 0.5 * (self.total_first + self.total_second)


def tree_sum_with_relay_faults(
    overlay: Overlay,
    values: np.ndarray,
    relay_bias: dict[int, Callable[[float], float]] | None = None,
) -> float:
    """Convergecast where corrupt relays may distort forwarded sums.

    ``relay_bias`` maps a machine index to a function applied to the
    subtree partial sum it forwards to its parent (identity for honest
    nodes).  A corrupt *leaf* can only distort its own contribution —
    pass that through ``values`` instead; the bias hook models relay
    (aggregation-level) corruption specifically.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size != overlay.n_machines:
        raise ValueError("values must have one entry per machine")
    relay_bias = relay_bias or {}

    partial: dict[int | str, float] = {}
    for node in overlay.bottom_up_order():
        own = 0.0 if node == ROOT else float(values[node])
        subtotal = own + sum(partial[c] for c in overlay.children(node))
        if node != ROOT and node in relay_bias:
            subtotal = float(relay_bias[node](subtotal))
        partial[node] = subtotal
    return partial[ROOT]


def double_tree_check(
    values: np.ndarray,
    rng: np.random.Generator,
    *,
    relay_bias: dict[int, Callable[[float], float]] | None = None,
    tolerance: float = 1e-9,
) -> TamperingCheck:
    """Aggregate over two independent random trees and compare totals.

    Parameters
    ----------
    values:
        The per-machine contributions (a corrupt leaf's lie lives here
        and is — by design — not detectable at this layer).
    rng:
        Source for the two independent tree draws.
    relay_bias:
        Corrupt relays, as in :func:`tree_sum_with_relay_faults`.
    tolerance:
        Relative agreement tolerance (floating-point headroom).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    first_overlay = random_tree_overlay(n, rng)
    second_overlay = random_tree_overlay(n, rng)
    total_first = tree_sum_with_relay_faults(first_overlay, values, relay_bias)
    total_second = tree_sum_with_relay_faults(second_overlay, values, relay_bias)
    return TamperingCheck(
        total_first=total_first,
        total_second=total_second,
        tolerance=float(tolerance),
    )
