"""Convergecast / broadcast aggregation over an overlay tree.

One aggregation round computes a global sum of per-machine values and
makes it known to every node:

1. **convergecast** — leaves send their values up; every internal node
   adds its own value to its children's partial sums and forwards one
   message to its parent (``n`` messages over machine edges... exactly
   one per edge);
2. **broadcast** — the root sends the total back down, one message per
   edge.

Total: ``2 * (#edges) = 2n`` messages per round, independent of the
tree shape; the shape only affects the number of sequential hops
(the overlay depth).  This is the distributed substitute for the
centralised protocol's report-to-root phases, and the building block of
:class:`repro.distributed.mechanism.DistributedVerificationMechanism`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.topology import ROOT, Overlay

__all__ = ["AggregationStats", "tree_sum"]


@dataclass(frozen=True)
class AggregationStats:
    """Accounting for one aggregation round."""

    messages_up: int
    messages_down: int
    rounds_of_latency: int

    @property
    def total_messages(self) -> int:
        """Messages over the wire for the full round."""
        return self.messages_up + self.messages_down


def tree_sum(
    overlay: Overlay,
    values: np.ndarray,
    root_value: float = 0.0,
) -> tuple[float, AggregationStats]:
    """One convergecast + broadcast round: every node learns ``sum(values)``.

    Parameters
    ----------
    overlay:
        The spanning tree to aggregate over.
    values:
        One value per machine node (indexed ``0 .. n-1``).
    root_value:
        Optional contribution of the root itself (e.g. none for bids).

    Returns
    -------
    (total, stats):
        The global sum (as the root — and, after broadcast, every
        node — knows it) and the message accounting.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size != overlay.n_machines:
        raise ValueError(
            f"values must have one entry per machine ({overlay.n_machines}), "
            f"got shape {values.shape}"
        )

    # Convergecast: process children before parents.
    partial: dict[int | str, float] = {}
    messages_up = 0
    for node in overlay.bottom_up_order():
        own = root_value if node == ROOT else float(values[node])
        subtotal = own + sum(partial[c] for c in overlay.children(node))
        partial[node] = subtotal
        if node != ROOT:
            messages_up += 1  # one message to the parent

    total = partial[ROOT]

    # Broadcast: one message down every edge.
    messages_down = overlay.n_edges

    return total, AggregationStats(
        messages_up=messages_up,
        messages_down=messages_down,
        rounds_of_latency=2 * overlay.depth(),
    )
