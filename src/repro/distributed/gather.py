"""Partial-sum gathering for the sharded coordinator service.

The mechanism needs exactly two global scalars per round (DESIGN.md §13,
``docs/distributed.md``):

* ``S = sum_j 1/b_j`` — fixes the PR allocation ``x_i = R (1/b_i) / S``
  and the leave-one-out optima ``L_{-i} = R^2 / (S - 1/b_i)``;
* ``Q = sum_j t̂_j / b_j^2`` — fixes the realised latency through
  ``L = (R/S)^2 Q``, hence every bonus ``B_i = L_{-i} - L``.

Both are plain sums, so each shard contributes one :class:`PartialSum`
and the existing aggregation tree (:mod:`repro.distributed.topology`)
combines them with the same message count as
:func:`~repro.distributed.aggregation.tree_sum`: one message per edge
up (convergecast), one per edge down (broadcast).

Floating-point care: a sum's value depends on association order, so a
naive partial-sum merge would make payments depend on how agents were
partitioned.  Two measures bound that dependence:

* within a shard the partial is one vectorised ``np.sum`` (pairwise
  summation);
* across shards the partials merge with Neumaier's compensated two-sum,
  carrying the rounding error of every merge explicitly, so the merged
  value is order-insensitive to ~1 ulp regardless of the tree shape.

This makes ``aggregation="scalar"`` mode accurate to ~1e-12 relative
for any partition (property-tested in
``tests/properties/test_hypothesis_sharding.py``); when *bit*-identity
with the monolithic coordinator is required, shards attach their raw
vectors as payload (``aggregation="exact"``) and the root reduces the
reassembled arrays with the exact same NumPy reductions the
single-coordinator path uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributed.aggregation import AggregationStats
from repro.distributed.topology import ROOT, Overlay

__all__ = [
    "PartialSum",
    "ShardPartial",
    "aggregate_shards",
    "concatenate_payload",
]


@dataclass
class PartialSum:
    """A compensated running sum that merges order-robustly.

    ``total`` carries the rounded sum and ``compensation`` the
    accumulated rounding error (Neumaier's variant of Kahan summation),
    so merging partials in any association order yields the same value
    to ~1 ulp.
    """

    total: float = 0.0
    compensation: float = 0.0

    @classmethod
    def of(cls, values: np.ndarray) -> "PartialSum":
        """One shard's contribution: a single vectorised reduction."""
        return cls(total=float(np.sum(np.asarray(values, dtype=np.float64))))

    def merge(self, other: "PartialSum") -> "PartialSum":
        """Combine two partials, carrying both rounding residues.

        The core is the exact two-sum: ``s = a + b`` rounds, but the
        error ``(a - s') + (b - (s - s'))`` is representable and is
        folded into the compensation term instead of being lost.
        """
        a, b = self.total, other.total
        s = a + b
        if abs(a) >= abs(b):
            err = (a - s) + b
        else:
            err = (b - s) + a
        return PartialSum(
            total=s,
            compensation=self.compensation + other.compensation + err,
        )

    @property
    def value(self) -> float:
        """The best available estimate of the true sum."""
        return self.total + self.compensation


@dataclass
class ShardPartial:
    """Everything one shard sends up the aggregation tree for a phase.

    Attributes
    ----------
    shard_id:
        Originating shard (``-1`` once partials have been merged).
    n_agents:
        Live agents covered by this partial.
    inverse_sum:
        Partial ``S`` contribution (``sum 1/b_j`` over the shard).
    quotient_sum:
        Partial ``Q`` contribution (``sum t̂_j/b_j^2``); ``None``
        during the bidding phase, before estimates exist.
    payload:
        Optional per-shard named vectors (``shard_id -> {key: array}``)
        riding along for ``aggregation="exact"`` mode; merging partials
        unions the dicts, so the root receives every shard's vectors
        and can reassemble the canonical global arrays.
    """

    shard_id: int
    n_agents: int
    inverse_sum: PartialSum = field(default_factory=PartialSum)
    quotient_sum: PartialSum | None = None
    payload: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)

    def merge(self, other: "ShardPartial") -> "ShardPartial":
        """Combine two partials (an internal node of the tree)."""
        if self.quotient_sum is None or other.quotient_sum is None:
            quotient = None
        else:
            quotient = self.quotient_sum.merge(other.quotient_sum)
        overlap = self.payload.keys() & other.payload.keys()
        if overlap:
            raise ValueError(f"duplicate shard payloads: {sorted(overlap)}")
        return ShardPartial(
            shard_id=-1,
            n_agents=self.n_agents + other.n_agents,
            inverse_sum=self.inverse_sum.merge(other.inverse_sum),
            quotient_sum=quotient,
            payload={**self.payload, **other.payload},
        )


def aggregate_shards(
    overlay: Overlay,
    partials: Sequence[ShardPartial],
) -> tuple[ShardPartial, AggregationStats]:
    """Convergecast shard partials up the overlay tree to the root.

    The overlay's machine nodes ``0 .. k-1`` stand for the ``k``
    coordinator shards; walking :meth:`Overlay.bottom_up_order`, every
    internal node merges its children's partials into its own before
    forwarding one message to its parent — the exact communication
    pattern of :func:`~repro.distributed.aggregation.tree_sum`, with a
    :class:`ShardPartial` as the message body instead of a float.

    Returns the fully merged partial as the root sees it, plus the
    message accounting (one message per edge per direction; the
    broadcast leg carries the globals back down to the shards).
    """
    if len(partials) != overlay.n_machines:
        raise ValueError(
            f"need one partial per shard ({overlay.n_machines}), "
            f"got {len(partials)}"
        )
    by_shard = {p.shard_id: p for p in partials}
    if sorted(by_shard) != list(range(overlay.n_machines)):
        raise ValueError("shard ids must be exactly 0 .. n_shards-1")

    merged: dict[int | str, ShardPartial] = {}
    messages_up = 0
    for node in overlay.bottom_up_order():
        if node == ROOT:
            own = ShardPartial(shard_id=-1, n_agents=0)
            if all(p.quotient_sum is not None for p in partials):
                own.quotient_sum = PartialSum()
        else:
            own = by_shard[node]
            messages_up += 1
        for child in overlay.children(node):
            own = own.merge(merged[child])
        merged[node] = own

    stats = AggregationStats(
        messages_up=messages_up,
        messages_down=overlay.n_edges,
        rounds_of_latency=2 * overlay.depth(),
    )
    return merged[ROOT], stats


def concatenate_payload(partial: ShardPartial, key: str) -> np.ndarray:
    """Reassemble one named vector in canonical (ascending-shard) order.

    Shards hold contiguous slices of the global agent order, so
    concatenating their payload vectors by ascending ``shard_id``
    restores the exact array the monolithic coordinator would have
    built — the root then applies the identical NumPy reductions,
    which is what makes ``aggregation="exact"`` bit-identical.
    """
    if not partial.payload:
        raise ValueError("partial carries no payload vectors")
    pieces = [partial.payload[sid][key] for sid in sorted(partial.payload)]
    return np.concatenate(pieces) if len(pieces) > 1 else pieces[0].copy()
