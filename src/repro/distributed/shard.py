"""One coordinator shard: a worker owning a slice of the agents.

The sharded service (:mod:`repro.distributed.service`) partitions the
agent population into contiguous slices and gives each slice to a
:class:`CoordinatorShard`.  A shard is the single-coordinator round
logic (:class:`~repro.protocol.MechanismCoordinator`) restricted to its
members: it collects their bids, executes their share of the routed
jobs through the batched execution engine, estimates their execution
values with the identical estimator, and issues their payments through
the identical write-ahead checkpoint/ledger discipline
(:mod:`repro.resilience.checkpoint`) — so a crashed shard restores
mid-phase and never pays a member twice.

What a shard does *not* do is hold any global state: the cross-shard
quantities it needs (``S = sum 1/b_j`` for loads, ``Q = sum t̂_j/b_j^2``
for latency) arrive as two scalars from the aggregation tree
(:mod:`repro.distributed.gather`), which is what the paper's
sufficient-statistic structure buys (docs/distributed.md).

Membership caching mirrors the monolithic coordinator: the shard's
bids vector is cached per phase and invalidated through
:meth:`CoordinatorShard._reset_membership_caches` whenever membership
changes.  The sharded analogue of the PR-4 reset-path bug is that a
mid-round churn must invalidate the cache on **every** shard, not just
the one that lost members — the service guarantees this by calling
:meth:`set_membership` on all shards (see
``tests/distributed/test_shard.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.protocol.coordinator import ProtocolPhase
from repro.protocol.execution import dispatch_batched
from repro.protocol.monitoring import CusumSlowdownDetector
from repro.resilience.checkpoint import CheckpointStore, CoordinatorCheckpoint
from repro.system.des import Simulator
from repro.system.machine import LinearLatencyMachine

__all__ = ["ShardCrash", "CoordinatorShard", "partition_names"]


class ShardCrash(RuntimeError):
    """Injected shard failure: the worker process died mid-phase."""


def _deterministic_sampler(mean: float, _rng: np.random.Generator) -> float:
    """Noise-free service: each job takes exactly its mean (picklable)."""
    return mean


def _deterministic_batch_sampler(
    mean: float, size: int, _rng: np.random.Generator
) -> np.ndarray:
    """Vectorised twin of :func:`_deterministic_sampler` (picklable)."""
    return np.full(size, mean)


def partition_names(names: Sequence[str], n_shards: int) -> list[list[str]]:
    """Split ``names`` into ``n_shards`` contiguous, balanced slices.

    Contiguity is load-bearing: concatenating shard slices in shard-id
    order restores the global order, which is what lets the exact
    aggregation mode rebuild the monolithic coordinator's arrays
    bit-for-bit (:func:`~repro.distributed.gather.concatenate_payload`).
    The first ``len(names) % n_shards`` shards get one extra member.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards > len(names):
        raise ValueError(
            f"cannot spread {len(names)} agents over {n_shards} shards "
            "(every shard needs at least one member)"
        )
    base, extra = divmod(len(names), n_shards)
    slices: list[list[str]] = []
    start = 0
    for k in range(n_shards):
        size = base + (1 if k < extra else 0)
        slices.append(list(names[start : start + size]))
        start += size
    return slices


class CoordinatorShard:
    """Round logic for one slice of the agent population.

    Parameters
    ----------
    shard_id:
        Position in the service's shard list (and in the overlay tree).
    names / agents:
        This shard's members, in global order, and their strategic
        owners (one per name).
    arrival_rate:
        Total system rate ``R`` (needed locally for scalar-mode
        payments: ``x_i = R (1/b_i)/S``).
    rng:
        Randomness source for service-time draws (and local workload
        generation).  The serial executor passes the service's shared
        generator so stochastic rounds consume the monolithic RNG
        stream; process workers get spawned child streams.
    deterministic_service:
        Noise-free service times (each job takes exactly its mean), as
        in the supervisor's default mode.
    bid_overrides:
        Remediation-imposed effective declared values; an override only
        ever *raises* a recorded bid (same contract as
        :class:`~repro.resilience.SupervisedCoordinator`).
    detector_threshold / detector_slack:
        When a threshold is given, the shard runs the per-machine CUSUM
        slowdown detectors over its members' sojourns after execution
        — detection shards trivially because each detector only reads
        one machine's sojourns.
    checkpoint_store:
        Durable slot for this shard's write-ahead checkpoints; in
        process-executor mode the parent owns the store and the worker
        ships serialised checkpoints back instead.
    fail_after_payments:
        Chaos hook: raise :class:`ShardCrash` once this many payments
        were issued (mirrors the supervised coordinator's hook).
    """

    def __init__(
        self,
        shard_id: int,
        names: Sequence[str],
        agents: Sequence[Agent],
        arrival_rate: float,
        *,
        rng: np.random.Generator,
        duration: float = 40.0,
        deterministic_service: bool = True,
        bid_overrides: Mapping[str, float] | None = None,
        detector_threshold: float | None = None,
        detector_slack: float = 0.25,
        checkpoint_store: CheckpointStore | None = None,
        fail_after_payments: int | None = None,
    ) -> None:
        if len(names) != len(agents):
            raise ValueError("names and agents must match in length")
        if len(names) == 0:
            raise ValueError("a shard needs at least one member")
        self.shard_id = int(shard_id)
        self.agents: dict[str, Agent] = dict(zip(names, agents))
        self.arrival_rate = float(arrival_rate)
        self.duration = float(duration)
        self.deterministic_service = bool(deterministic_service)
        self.bid_overrides = dict(bid_overrides or {})
        self.detector_threshold = detector_threshold
        self.detector_slack = float(detector_slack)
        self.checkpoint_store = checkpoint_store
        self.fail_after_payments = fail_after_payments
        self._rng = rng

        # Long-lived state: machines persist across rounds (that is the
        # point of a *service* — per-round object churn is what the
        # monolithic runtime pays for at n=10^6) and are re-configured
        # and stat-reset at every round start.
        sampler = _deterministic_sampler if deterministic_service else None
        batch_sampler = (
            _deterministic_batch_sampler if deterministic_service else None
        )
        self.machines: dict[str, LinearLatencyMachine] = {
            name: LinearLatencyMachine(
                name,
                agent.execution_value(),
                rng,
                service_sampler=sampler,
                batch_service_sampler=batch_sampler,
            )
            for name, agent in self.agents.items()
        }

        # Per-round state.
        self.machine_names: list[str] = list(names)
        self.phase = ProtocolPhase.IDLE
        self.payments_sent: dict[str, tuple[float, float, float]] = {}
        self.payment_notices: dict[str, int] = {name: 0 for name in names}
        self._bids: dict[str, float] = {}
        self._loads: np.ndarray | None = None
        self._reports: dict[str, tuple[int, float]] = {}
        self._estimates: np.ndarray | None = None
        self._simulated_time = 0.0
        self._bids_cache: np.ndarray | None = None

    # ------------------------------------------------------------- round

    def begin_round(self) -> None:
        """Reset per-round state; membership resets to all members."""
        self.machine_names = list(self.agents)
        self.phase = ProtocolPhase.IDLE
        self.payments_sent = {}
        self._bids = {}
        self._loads = None
        self._reports = {}
        self._estimates = None
        self._simulated_time = 0.0
        self._reset_membership_caches()
        for machine in self.machines.values():
            machine.sojourn_times.clear()
            machine._busy_time = 0.0

    def collect_bids(self) -> np.ndarray:
        """Ask every member for its bid; returns the local bid vector.

        Overrides apply at recording time and only ever raise a bid, so
        allocation, payments, and checkpoints all see one value — the
        same contract as the supervised coordinator.
        """
        self.phase = ProtocolPhase.BIDDING
        for name in self.machine_names:
            bid = float(self.agents[name].bid())
            override = self.bid_overrides.get(name)
            if override is not None and override > bid:
                bid = float(override)
            self._bids[name] = bid
        self._bids_cache = None
        self._save_checkpoint()
        return self.bids_vector()

    # -------------------------------------------------------- membership

    def set_membership(self, live: Iterable[str]) -> list[str]:
        """Restrict the round to ``live`` members; returns those dropped.

        Called on **every** shard when the service learns of mid-round
        churn — including shards that lost nobody — so no shard can
        serve a stale cached bids vector (the sharded analogue of the
        monolithic coordinator's ``_reset_membership_caches`` call in
        ``_allocate_to_responders``).
        """
        live_set = set(live)
        dropped = [n for n in self.machine_names if n not in live_set]
        self.machine_names = [n for n in self.machine_names if n in live_set]
        for name in dropped:
            self._bids.pop(name, None)
        self._reset_membership_caches()
        self._save_checkpoint()
        return dropped

    def _reset_membership_caches(self) -> None:
        """Invalidate derived state after ``machine_names`` changes."""
        self._bids_cache = None

    def bids_vector(self) -> np.ndarray:
        """Recorded bids in local member order (cached per phase)."""
        cache = self._bids_cache
        if cache is not None and cache.size == len(self.machine_names):
            return cache.copy()
        missing = [n for n in self.machine_names if n not in self._bids]
        if missing:
            raise RuntimeError(f"bids are not complete yet: missing {missing}")
        self._bids_cache = np.array(
            [self._bids[name] for name in self.machine_names]
        )
        return self._bids_cache.copy()

    def inverse_bids(self) -> np.ndarray:
        """``1/b_i`` per member — the shard's contribution to ``S``."""
        return 1.0 / self.bids_vector()

    # -------------------------------------------------------- allocation

    def apply_allocation(self, loads: np.ndarray) -> np.ndarray:
        """Accept this shard's load slice (exact mode: root decided)."""
        loads = np.asarray(loads, dtype=np.float64)
        if loads.size != len(self.machine_names):
            raise ValueError(
                f"expected {len(self.machine_names)} loads, got {loads.size}"
            )
        self._loads = loads
        self.phase = ProtocolPhase.EXECUTING
        self._save_checkpoint()
        return loads

    def allocate_from_total(self, total_inverse: float) -> np.ndarray:
        """Compute the local loads from the broadcast global ``S``.

        Scalar mode: ``x_i = R (1/b_i) / S`` needs only each member's
        own bid plus the one global scalar, so allocation never leaves
        the shard.
        """
        loads = self.arrival_rate * self.inverse_bids() / float(total_inverse)
        return self.apply_allocation(loads)

    # --------------------------------------------------------- execution

    def execute(
        self,
        arrivals: Sequence[np.ndarray],
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Run this shard's slice of the routed stream; report estimates.

        ``arrivals`` holds one absolute-arrival-time array per live
        member (the service routed the global stream).  Jobs run
        through :func:`~repro.protocol.execution.dispatch_batched` on a
        shard-local simulator — per-agent control messages stay inside
        the shard as function calls; only the aggregation-tree messages
        cross shard boundaries.

        Returns a dict with the local ``estimates`` vector, the
        ``quotients`` (``t̂_i / b_i^2``, the shard's ``Q`` contribution),
        per-member job counts and mean sojourns, CUSUM ``alerts`` (when
        a detector threshold is configured), and the local clock.
        """
        if self._loads is None:
            raise RuntimeError("no allocation applied yet")
        if len(arrivals) != len(self.machine_names):
            raise ValueError(
                f"expected {len(self.machine_names)} arrival arrays, "
                f"got {len(arrivals)}"
            )
        if rng is not None:
            for name in self.machine_names:
                self.machines[name]._rng = rng

        sim = Simulator()
        live_machines = [self.machines[name] for name in self.machine_names]
        for machine, load in zip(live_machines, self._loads):
            machine.configure(float(load))
        times = (
            np.concatenate([np.asarray(a, dtype=np.float64) for a in arrivals])
            if arrivals
            else np.empty(0)
        )
        assignments = np.concatenate(
            [np.full(np.asarray(a).size, k, dtype=np.int64)
             for k, a in enumerate(arrivals)]
        ) if arrivals else np.empty(0, dtype=np.int64)
        dispatch_batched(sim, live_machines, times, assignments)
        sim.run()
        self._simulated_time = sim.now

        for name in self.machine_names:
            stats = self.machines[name].stats()
            self._reports[name] = (
                stats.completed,
                stats.mean_sojourn if stats.completed else 0.0,
            )
        self._save_checkpoint()
        return self._report_payload()

    def execute_local(self, rng: np.random.Generator | None = None) -> dict:
        """Deployment-mode execution: the shard draws its own substream.

        Poisson thinning makes the members' joint substream a Poisson
        process at rate ``sum(local loads)``, so each shard can generate
        its own arrivals without the root ever materialising the global
        stream — statistically equivalent to :meth:`execute`, not
        bit-identical (the RNG streams differ by construction).
        """
        from repro.system.workload import PoissonWorkload, split_assignments

        if self._loads is None:
            raise RuntimeError("no allocation applied yet")
        rng = rng if rng is not None else self._rng
        local_rate = float(self._loads.sum())
        arrivals: list[np.ndarray] = [
            np.empty(0) for _ in self.machine_names
        ]
        if local_rate > 0.0:
            times = PoissonWorkload(local_rate, rng).generate_times(self.duration)
            assignments = split_assignments(
                int(times.size), self._loads / local_rate, rng
            )
            arrivals = [
                times[assignments == k] for k in range(len(self.machine_names))
            ]
        return self.execute(arrivals, rng=rng)

    def _derive_estimates(self) -> np.ndarray:
        """The monolithic coordinator's estimator, verbatim.

        Pure function of (bids, loads, reports), so a shard restored
        from a checkpoint re-derives the identical vector.
        """
        assert self._loads is not None
        bids = self.bids_vector()
        estimates = np.empty(len(self.machine_names))
        for k, name in enumerate(self.machine_names):
            jobs, mean_sojourn = self._reports[name]
            if jobs == 0 or self._loads[k] == 0.0:
                estimates[k] = bids[k]
            else:
                estimates[k] = mean_sojourn / self._loads[k]
        return estimates

    def _report_payload(self) -> dict:
        assert self._loads is not None
        self._estimates = self._derive_estimates()
        bids = self.bids_vector()
        alerts: list[str] = []
        if self.detector_threshold is not None:
            for k, name in enumerate(self.machine_names):
                if self._loads[k] <= 0.0:
                    continue
                sojourns = self.machines[name].sojourn_times
                if not sojourns:
                    continue
                detector = CusumSlowdownDetector(
                    float(bids[k]),
                    float(self._loads[k]),
                    threshold=self.detector_threshold,
                    slack=self.detector_slack,
                )
                if detector.observe_many(np.asarray(sojourns)) is not None:
                    alerts.append(name)
        return {
            "names": list(self.machine_names),
            "estimates": self._estimates,
            "quotients": self._estimates / bids**2,
            "jobs": np.array([self._reports[n][0] for n in self.machine_names]),
            "mean_sojourns": np.array(
                [self._reports[n][1] for n in self.machine_names]
            ),
            "alerts": alerts,
            "simulated_time": self._simulated_time,
        }

    # ---------------------------------------------------------- payments

    def local_payments(
        self, total_inverse: float, total_quotient: float
    ) -> dict[str, tuple[float, float, float]]:
        """Per-member payments from the two global scalars (scalar mode).

        With ``S`` and ``Q`` broadcast down the tree, each member's
        amounts follow from its own bid and estimate alone:

        * load ``x_i = R (1/b_i) / S``,
        * realised latency ``L = (R/S)^2 Q``,
        * leave-one-out optimum ``L_{-i} = R^2 / (S - 1/b_i)``,
        * compensation ``C_i = t̂_i x_i^2``, bonus ``B_i = L_{-i} - L``.
        """
        if self._estimates is None:
            raise RuntimeError("no execution reports yet")
        bids = self.bids_vector()
        inv = 1.0 / bids
        rate = self.arrival_rate
        loads = rate * inv / total_inverse
        realised = (rate / total_inverse) ** 2 * total_quotient
        excluded = rate**2 / (total_inverse - inv)
        compensation = self._estimates * loads**2
        bonus = excluded - realised
        payment = compensation + bonus
        return {
            name: (float(payment[k]), float(compensation[k]), float(bonus[k]))
            for k, name in enumerate(self.machine_names)
        }

    def settle(
        self, amounts: Mapping[str, tuple[float, float, float]]
    ) -> dict[str, tuple[float, float, float]]:
        """Issue payments with write-ahead, at-most-once semantics.

        Each amount is recorded in the ledger and checkpointed *before*
        its notice goes out; members already in ``payments_sent`` (from
        a pre-crash attempt) are skipped, so a restored shard completes
        the round without ever double-paying — the exact discipline of
        :class:`~repro.resilience.SupervisedCoordinator`.  Returns the
        full round ledger, so a re-settle after recovery still reports
        every member's amounts.

        Persistence is snapshot-plus-journal: the execution stage's
        snapshot is the base, and each payment is an O(1) ledger append
        on top of it.  A per-payment snapshot would make settling O(n²)
        and is exactly what the A24 benchmark would catch.
        """
        self.phase = ProtocolPhase.VERIFYING
        if self.checkpoint_store is not None and not (
            self.checkpoint_store.has_snapshot
        ):
            self._save_checkpoint()  # no prior stage ran: journal base
        for name in self.machine_names:
            if name in self.payments_sent:
                continue  # issued before a crash: never pay twice
            if (
                self.fail_after_payments is not None
                and len(self.payments_sent) >= self.fail_after_payments
            ):
                self._save_checkpoint()
                raise ShardCrash(
                    f"shard {self.shard_id} died after issuing "
                    f"{len(self.payments_sent)} payments"
                )
            payment, compensation, bonus = amounts[name]
            entry = (float(payment), float(compensation), float(bonus))
            # Write-ahead: record and persist the intent, then send.
            self.payments_sent[name] = entry
            self._append_payment(name, entry)
            self.payment_notices[name] = self.payment_notices.get(name, 0) + 1
        self.phase = ProtocolPhase.DONE
        # No closing snapshot: the ledger lives in the journal until the
        # next stage snapshot compacts it, and a post-settle restore
        # (stale EXECUTING phase + complete ledger) re-settles to a
        # no-op — every member is already ledgered.
        return dict(self.payments_sent)

    # ------------------------------------------------------ stage wrappers
    #
    # One entry point per protocol phase, shaped so an executor needs a
    # single worker round-trip per stage: the shard does its local work
    # and hands back exactly the message that travels up the
    # aggregation tree (a ShardPartial), nothing more in scalar mode.

    def run_bidding(self, include_payload: bool = True):
        """Bidding stage: collect bids, return the shard's ``S`` partial.

        With ``include_payload`` (exact mode) the raw local bid vector
        rides along so the root can reassemble the canonical global
        array; without it (scalar mode) only the compensated partial
        sum and the member count leave the shard.
        """
        self.collect_bids()
        return self.bid_partial(include_payload)

    def bid_partial(self, include_payload: bool = True):
        """The ``S`` partial for the *current* membership.

        Built from the recorded bids without re-asking the agents — the
        service calls this after mid-round churn, when the partials
        gathered at bidding time described a stale membership.
        """
        from repro.distributed.gather import PartialSum, ShardPartial

        bids = self.bids_vector()
        payload = {self.shard_id: {"bids": bids}} if include_payload else {}
        return ShardPartial(
            shard_id=self.shard_id,
            n_agents=len(self.machine_names),
            inverse_sum=PartialSum.of(1.0 / bids) if bids.size else PartialSum(),
            payload=payload,
        )

    def run_execution(
        self,
        arrivals: Sequence[np.ndarray] | None = None,
        include_payload: bool = True,
        rng: np.random.Generator | None = None,
    ):
        """Execution stage: run jobs, return the shard's ``Q`` partial.

        ``arrivals=None`` selects deployment-mode local workload
        generation (:meth:`execute_local`); otherwise the service
        routed the global stream and passes this shard's slice.
        """
        from repro.distributed.gather import PartialSum, ShardPartial

        if arrivals is None:
            report = self.execute_local(rng=rng)
        else:
            report = self.execute(arrivals, rng=rng)
        payload = (
            {self.shard_id: {"estimates": report["estimates"]}}
            if include_payload
            else {}
        )
        partial = ShardPartial(
            shard_id=self.shard_id,
            n_agents=len(self.machine_names),
            inverse_sum=(
                PartialSum.of(1.0 / self.bids_vector())
                if self.machine_names
                else PartialSum()
            ),
            quotient_sum=PartialSum.of(report["quotients"]),
            payload=payload,
        )
        return partial, {
            "alerts": report["alerts"],
            "jobs": report["jobs"],
            "simulated_time": report["simulated_time"],
            "loads": None if self._loads is None else self._loads.copy(),
        }

    def settle_from_totals(
        self, total_inverse: float, total_quotient: float
    ) -> dict[str, tuple[float, float, float]]:
        """Payment stage, scalar mode: price locally from (S, Q), pay."""
        return self.settle(self.local_payments(total_inverse, total_quotient))

    def get_payment_notices(self) -> dict[str, int]:
        """Per-member payment-notice counts (at-most-once observability)."""
        return dict(self.payment_notices)

    def arm_crash(self, after_payments: int | None) -> None:
        """Arm (or disarm) the chaos hook on a live shard."""
        self.fail_after_payments = after_payments

    # ------------------------------------------------------- persistence

    def checkpoint(self) -> CoordinatorCheckpoint:
        """Snapshot this shard's round inputs (the coordinator format)."""
        return CoordinatorCheckpoint(
            phase=self.phase.value,
            machine_names=list(self.machine_names),
            arrival_rate=self.arrival_rate,
            bids=dict(self._bids),
            loads=None if self._loads is None else self._loads.tolist(),
            reports=dict(self._reports),
            payments_sent=dict(self.payments_sent),
        )

    def _save_checkpoint(self) -> None:
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(self.checkpoint())

    def _append_payment(
        self, name: str, entry: tuple[float, float, float]
    ) -> None:
        if self.checkpoint_store is not None:
            self.checkpoint_store.append_payment(name, entry)

    @classmethod
    def restore(
        cls,
        checkpoint: CoordinatorCheckpoint,
        *,
        shard_id: int,
        agents: Mapping[str, Agent],
        rng: np.random.Generator,
        duration: float = 40.0,
        deterministic_service: bool = True,
        bid_overrides: Mapping[str, float] | None = None,
        detector_threshold: float | None = None,
        detector_slack: float = 0.25,
        checkpoint_store: CheckpointStore | None = None,
    ) -> "CoordinatorShard":
        """Rebuild a shard worker from its checkpoint after a crash.

        The chaos hook is cleared (the replacement worker is assumed
        healthy); estimates are re-derived from the checkpointed
        reports when the crash hit at or after verification.
        """
        member_names = list(agents)
        shard = cls(
            shard_id,
            member_names,
            [agents[n] for n in member_names],
            checkpoint.arrival_rate,
            rng=rng,
            duration=duration,
            deterministic_service=deterministic_service,
            bid_overrides=bid_overrides,
            detector_threshold=detector_threshold,
            detector_slack=detector_slack,
            checkpoint_store=checkpoint_store,
        )
        shard.phase = ProtocolPhase(checkpoint.phase)
        shard.machine_names = list(checkpoint.machine_names)
        shard._bids = dict(checkpoint.bids)
        shard._loads = (
            None if checkpoint.loads is None else np.array(checkpoint.loads)
        )
        shard._reports = dict(checkpoint.reports)
        shard.payments_sent = dict(checkpoint.payments_sent)
        if shard._loads is not None and len(shard._reports) == len(
            checkpoint.machine_names
        ):
            shard._estimates = shard._derive_estimates()
        return shard
