"""The distributed verification mechanism.

Key observation enabling full distribution: under Definition 3.3, every
machine can compute its own allocation and payment from just **two
global sums** plus its local state —

* ``S = sum_j 1/b_j`` (from the bidding phase) gives machine ``i`` its
  own load ``x_i = R (1/b_i) / S`` *and* its leave-one-out term
  ``L_{-i} = R^2 / (S - 1/b_i)``;
* ``L = sum_j t̃_j x_j^2`` (from the execution phase) completes its
  bonus ``B_i = L_{-i} - L``; with the locally known compensation
  ``t̃_i x_i^2`` the payment is ``P_i = C_i + B_i``.

So the protocol is two tree-aggregation rounds (4 messages per machine
on any spanning tree) and zero central computation — the root only
relays sums.  With privacy enabled, each contribution to the two sums
is additively secret-shared across ``k`` aggregators, so no single
party (root included) learns any machine's bid or observed cost.

The outcome provably equals the centralised mechanism's; the test suite
asserts equality to machine precision, and ``bench_distributed.py``
compares message counts and latency across overlay shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_positive,
    check_positive_scalar,
    check_same_length,
)
from repro.distributed.aggregation import AggregationStats, tree_sum
from repro.distributed.privacy import SecureSumAggregation
from repro.distributed.topology import Overlay, tree_overlay
from repro.types import AllocationResult, MechanismOutcome, PaymentResult

__all__ = ["DistributedOutcome", "DistributedVerificationMechanism"]


@dataclass(frozen=True)
class DistributedOutcome:
    """Result of one distributed mechanism round."""

    outcome: MechanismOutcome
    total_messages: int
    rounds_of_latency: int
    privacy_shares_sent: int

    @property
    def messages_per_machine(self) -> float:
        """Control messages per participating machine (constant in n)."""
        return self.total_messages / self.outcome.allocation.n_machines


class DistributedVerificationMechanism:
    """Definition 3.3 computed by the machines themselves over a tree.

    Parameters
    ----------
    overlay:
        The spanning tree to aggregate over; defaults to a binary tree.
    n_aggregators:
        When > 0, the two global sums are computed through additive
        secret sharing across this many independent aggregators
        (privacy mode); 0 disables sharing (plain tree sums).
    rng:
        Randomness source for the privacy masks (required when
        ``n_aggregators > 0``).
    """

    def __init__(
        self,
        overlay: Overlay | None = None,
        *,
        n_aggregators: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.overlay = overlay
        if n_aggregators < 0:
            raise ValueError("n_aggregators must be non-negative")
        if n_aggregators > 0 and rng is None:
            raise ValueError("privacy mode requires an rng for the masks")
        self.n_aggregators = n_aggregators
        self._rng = rng

    # ------------------------------------------------------------ protocol

    def _aggregate(
        self, overlay: Overlay, values: np.ndarray
    ) -> tuple[float, AggregationStats, int]:
        """One global-sum round, optionally through secret sharing."""
        if self.n_aggregators == 0:
            total, stats = tree_sum(overlay, values)
            return total, stats, 0

        # Privacy mode: machines secret-share their contributions; the
        # tree then carries k masked sums instead of one plain sum (the
        # per-round message count is unchanged: shares ride in one
        # message), and the aggregators combine at the end.
        assert self._rng is not None
        secure = SecureSumAggregation(self.n_aggregators, self._rng)
        for value in values:
            secure.contribute(float(value))
        # The masked subtotals still travel the same tree (same message
        # count); reuse tree_sum on a zero vector for the accounting.
        _, stats = tree_sum(overlay, np.zeros_like(values))
        return secure.result(), stats, secure.messages_sent()

    def run(
        self,
        bids: np.ndarray,
        arrival_rate: float,
        execution_values: np.ndarray | None = None,
        *,
        true_values: np.ndarray | None = None,
    ) -> DistributedOutcome:
        """Execute the two-round distributed protocol."""
        bids = as_float_array(bids, "bids")
        check_positive(bids, "bids")
        arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        if bids.size < 2:
            raise ValueError("the distributed mechanism needs at least two machines")
        if execution_values is None:
            execution_values = bids.copy()
        else:
            execution_values = as_float_array(execution_values, "execution_values")
            check_positive(execution_values, "execution_values")
            check_same_length("bids", bids, "execution_values", execution_values)

        overlay = self.overlay or tree_overlay(bids.size)
        if overlay.n_machines != bids.size:
            raise ValueError(
                f"overlay has {overlay.n_machines} machines but {bids.size} bids given"
            )

        # --- Round 1: aggregate S = sum 1/b_j; every node learns it. ---
        inverse_bids = 1.0 / bids
        total_inverse, stats1, shares1 = self._aggregate(overlay, inverse_bids)

        # Each machine now computes its own load locally.
        loads = arrival_rate * inverse_bids / total_inverse

        # --- Execution happens; each machine knows t̃_i x_i^2 locally. ---
        local_costs = execution_values * loads**2

        # --- Round 2: aggregate L = sum t̃_j x_j^2. ---
        realised_latency, stats2, shares2 = self._aggregate(overlay, local_costs)

        # --- Local payment computation at every machine. ---
        excluded = arrival_rate**2 / (total_inverse - inverse_bids)
        compensation = local_costs
        bonus = excluded - realised_latency
        valuation = -local_costs

        allocation = AllocationResult(
            loads=loads,
            arrival_rate=arrival_rate,
            bids=bids,
            total_latency=float(np.dot(bids, loads**2)),
        )
        payments = PaymentResult(
            compensation=compensation, bonus=bonus, valuation=valuation
        )
        outcome = MechanismOutcome(
            allocation=allocation,
            payments=payments,
            execution_values=execution_values,
            true_values=true_values,
            metadata={
                "mechanism": "DistributedVerificationMechanism",
                "overlay_depth": overlay.depth(),
                "privacy": self.n_aggregators,
            },
        )
        return DistributedOutcome(
            outcome=outcome,
            total_messages=stats1.total_messages + stats2.total_messages,
            rounds_of_latency=stats1.rounds_of_latency + stats2.rounds_of_latency,
            privacy_shares_sent=shares1 + shares2,
        )
