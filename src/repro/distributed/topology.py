"""Overlay topologies for the distributed protocol.

An overlay is a rooted spanning tree over the participating machines
plus the mechanism root.  The tree shape determines the protocol's
latency (its depth) but not its message count (always one message per
edge per direction per round) — the trade-off quantified by
``bench_distributed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["Overlay", "star_overlay", "tree_overlay", "random_tree_overlay"]

ROOT = "root"


@dataclass(frozen=True)
class Overlay:
    """A rooted spanning tree over ``n`` machine nodes (``0 .. n-1``).

    Attributes
    ----------
    graph:
        The underlying undirected tree, containing the machine nodes
        and the distinguished ``"root"`` node.
    parent:
        Parent of each machine node on the path to the root (the root
        itself has no entry).
    """

    graph: nx.Graph
    parent: dict[int | str, int | str]

    def __post_init__(self) -> None:
        if not nx.is_tree(self.graph):
            raise ValueError("overlay must be a tree")
        if ROOT not in self.graph:
            raise ValueError("overlay must contain the root node")

    @property
    def n_machines(self) -> int:
        """Number of machine nodes (root excluded)."""
        return self.graph.number_of_nodes() - 1

    @property
    def n_edges(self) -> int:
        """Number of tree edges (= number of nodes - 1)."""
        return self.graph.number_of_edges()

    def children(self, node: int | str) -> list[int | str]:
        """Children of ``node`` in the rooted tree."""
        return [
            neighbour
            for neighbour in self.graph.neighbors(node)
            if self.parent.get(neighbour) == node
        ]

    def depth(self) -> int:
        """Longest root-to-leaf path (protocol latency in hops)."""
        lengths = nx.single_source_shortest_path_length(self.graph, ROOT)
        return max(lengths.values())

    def bottom_up_order(self) -> list[int | str]:
        """Nodes ordered so every child precedes its parent (root last)."""
        order = list(nx.bfs_tree(self.graph, ROOT).nodes())
        order.reverse()
        return order

    def top_down_order(self) -> list[int | str]:
        """Nodes ordered so every parent precedes its children."""
        return list(nx.bfs_tree(self.graph, ROOT).nodes())


def _rooted(graph: nx.Graph) -> Overlay:
    parent: dict[int | str, int | str] = {}
    for child, p in nx.bfs_predecessors(graph, ROOT):
        parent[child] = p
    return Overlay(graph=graph, parent=parent)


def star_overlay(n_machines: int) -> Overlay:
    """Every machine talks directly to the root (the centralised shape)."""
    if n_machines < 1:
        raise ValueError("n_machines must be at least 1")
    graph = nx.Graph()
    graph.add_node(ROOT)
    graph.add_edges_from((ROOT, i) for i in range(n_machines))
    return _rooted(graph)


def tree_overlay(n_machines: int, arity: int = 2) -> Overlay:
    """Balanced ``arity``-ary tree rooted at the mechanism node."""
    if n_machines < 1:
        raise ValueError("n_machines must be at least 1")
    if arity < 1:
        raise ValueError("arity must be at least 1")
    graph = nx.Graph()
    graph.add_node(ROOT)
    # The first `arity` machines attach to the root; machine k >= arity
    # attaches to machine (k - arity) // arity, filling levels in order.
    for k in range(n_machines):
        if k < arity:
            graph.add_edge(ROOT, k)
        else:
            graph.add_edge((k - arity) // arity, k)
    return _rooted(graph)


def random_tree_overlay(n_machines: int, rng: np.random.Generator) -> Overlay:
    """Uniform random recursive tree: node k attaches to a random earlier node."""
    if n_machines < 1:
        raise ValueError("n_machines must be at least 1")
    graph = nx.Graph()
    graph.add_node(ROOT)
    nodes: list[int | str] = [ROOT]
    for k in range(n_machines):
        attach = nodes[int(rng.integers(0, len(nodes)))]
        graph.add_edge(attach, k)
        nodes.append(k)
    return _rooted(graph)
