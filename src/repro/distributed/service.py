"""The sharded coordinator service: a horizontally scalable runtime.

``run_protocol`` drives one synchronous coordinator object per round —
every agent is a message through one Python event loop, which caps
campaigns far below the ROADMAP's "millions of users" target.  This
module composes the pieces that already existed
(:mod:`repro.distributed.topology` overlays,
:mod:`repro.distributed.gather` partial sums,
:mod:`repro.resilience.checkpoint` write-ahead recovery, the batched
execution engine) into a long-lived service:

* the agent population is partitioned into contiguous slices, one
  :class:`~repro.distributed.shard.CoordinatorShard` per slice;
* each round runs as four staged fan-outs — bidding, allocation,
  execution, payment — over a pluggable executor (``serial`` for
  deterministic tests, ``async`` for asyncio/thread stages,
  ``process`` for one long-lived worker process per shard);
* the only cross-shard traffic is the aggregation tree carrying the
  two sufficient statistics ``S = sum 1/b_j`` and ``Q = sum t̂_j/b_j²``
  (plus, in ``aggregation="exact"`` mode, the raw per-shard vectors as
  payload so the root reproduces the monolithic floats bit-for-bit);
* every shard write-ahead-checkpoints through the coordinator's
  checkpoint/ledger path, so a shard that crashes mid-payment is
  restored and completes the round with at-most-once payments.

Parity contract (tested in ``tests/distributed/test_service.py``): with
``aggregation="exact"``, ``workload="global"`` and the serial executor,
a service round is **bit-identical** to :func:`~repro.protocol.run_protocol`
on the same seed — same loads, payments, estimates, jobs and clock —
for any shard count, because the root reassembles the canonical arrays
and applies the identical NumPy reductions while the workload and
service draws consume the identical RNG stream.  ``aggregation="scalar"``
trades that for O(1) per-shard uplink bandwidth and agrees to ~1e-12.

Operator's guide: ``docs/distributed.md``.  Design: DESIGN.md §13.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._validation import check_positive_scalar
from repro.agents.base import Agent
from repro.distributed.aggregation import AggregationStats
from repro.distributed.gather import (
    ShardPartial,
    aggregate_shards,
    concatenate_payload,
)
from repro.distributed.shard import (
    CoordinatorShard,
    ShardCrash,
    partition_names,
)
from repro.distributed.topology import Overlay, star_overlay, tree_overlay
from repro.mechanism.base import Mechanism
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.observability.instrumentation import (
    observe_value,
    record_counter,
    trace_span,
)
from repro.resilience.checkpoint import CheckpointStore, CoordinatorCheckpoint
from repro.system.workload import PoissonWorkload, split_assignments
from repro.types import AllocationResult, MechanismOutcome

__all__ = [
    "AGGREGATION_MODES",
    "WORKLOAD_MODES",
    "SHARD_EXECUTORS",
    "ShardedRoundResult",
    "ShardedRound",
    "ShardedCoordinatorService",
]

AGGREGATION_MODES = ("exact", "scalar")
WORKLOAD_MODES = ("global", "local")
SHARD_EXECUTORS = ("serial", "async", "process")


class _ShardFailure(RuntimeError):
    """Internal: shard ``shard_id`` crashed; its checkpoint is saved."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


# ----------------------------------------------------------- executors


class _SerialShardExecutor:
    """All shards in-process, stages run sequentially in shard order.

    The default and the parity baseline: with the service's shared RNG
    threaded through every shard, a stochastic round consumes exactly
    the monolithic coordinator's random stream.
    """

    def __init__(
        self,
        shards: Sequence[CoordinatorShard],
        rebuild: Callable[[int, CoordinatorCheckpoint], CoordinatorShard],
    ) -> None:
        self.shards = list(shards)
        self._rebuild = rebuild

    def map(
        self,
        method: str,
        args_per_shard: Sequence[tuple],
        only: set[int] | None = None,
    ) -> dict[int, tuple[str, object]]:
        picked = sorted(only) if only is not None else range(len(self.shards))
        outcomes: dict[int, tuple[str, object]] = {}
        for k in picked:
            try:
                value = getattr(self.shards[k], method)(*args_per_shard[k])
                outcomes[k] = ("ok", value)
            except ShardCrash as exc:
                outcomes[k] = ("crash", str(exc))
        return outcomes

    def restore(self, shard_id: int, checkpoint: CoordinatorCheckpoint) -> None:
        self.shards[shard_id] = self._rebuild(shard_id, checkpoint)

    def close(self) -> None:
        pass


class _AsyncShardExecutor(_SerialShardExecutor):
    """Stages fan out as asyncio tasks over a thread pool.

    Shards are independent within a stage (they share no mutable
    state — each owns its members, machines, and RNG), so running the
    per-shard stage bodies concurrently is safe; results come back in
    shard order regardless of completion order.
    """

    def __init__(self, shards, rebuild) -> None:
        super().__init__(shards, rebuild)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.shards)),
            thread_name_prefix="repro-shard",
        )

    def map(self, method, args_per_shard, only=None):
        picked = sorted(only) if only is not None else list(range(len(self.shards)))

        def _one(k: int) -> tuple[str, object]:
            try:
                return ("ok", getattr(self.shards[k], method)(*args_per_shard[k]))
            except ShardCrash as exc:
                return ("crash", str(exc))

        async def _stage() -> list[tuple[str, object]]:
            loop = asyncio.get_running_loop()
            futures = [loop.run_in_executor(self._pool, _one, k) for k in picked]
            return await asyncio.gather(*futures)

        return dict(zip(picked, asyncio.run(_stage())))

    def close(self) -> None:
        self._pool.shutdown(wait=False)


def _shard_worker(conn, spec: dict) -> None:
    """Long-lived worker-process loop: one shard, command-driven.

    Commands over the pipe: ``("call", method, args)`` runs one stage
    and replies ``("ok", result, checkpoint_json)`` — the parent owns
    the durable store, so every reply ships the post-stage checkpoint;
    a :class:`ShardCrash` replies ``("crash", checkpoint_json, msg)``;
    ``("restore", checkpoint_json)`` rebuilds the shard from the
    parent's copy of the checkpoint; ``("close",)`` exits.
    """
    make_kwargs = dict(
        rng=np.random.default_rng(spec["seed_seq"]),
        duration=spec["duration"],
        deterministic_service=spec["deterministic_service"],
        bid_overrides=spec["bid_overrides"],
        detector_threshold=spec["detector_threshold"],
        detector_slack=spec["detector_slack"],
    )
    agents = dict(zip(spec["names"], spec["agents"]))
    shard = CoordinatorShard(
        spec["shard_id"],
        spec["names"],
        spec["agents"],
        spec["arrival_rate"],
        **make_kwargs,
    )
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "close":
            break
        if kind == "restore":
            shard = CoordinatorShard.restore(
                CoordinatorCheckpoint.from_json(message[1]),
                shard_id=spec["shard_id"],
                agents=agents,
                **make_kwargs,
            )
            conn.send(("ok", None, shard.checkpoint().to_json()))
            continue
        _, method, args = message
        try:
            result = getattr(shard, method)(*args)
            conn.send(("ok", result, shard.checkpoint().to_json()))
        except ShardCrash as exc:
            conn.send(("crash", shard.checkpoint().to_json(), str(exc)))
        except Exception as exc:  # surface worker-side failures verbatim
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class _ProcessShardExecutor:
    """One long-lived ``multiprocessing.Process`` per shard.

    Stage fan-out is send-all-then-receive-all, so shards genuinely
    run concurrently on multi-core hosts.  The parent persists every
    returned checkpoint into the shard's
    :class:`~repro.resilience.checkpoint.CheckpointStore`, so shard
    recovery works exactly as in-process: restore from the parent's
    durable copy, replay nothing, pay at most once.
    """

    def __init__(self, specs: Sequence[dict], stores: Sequence[CheckpointStore]):
        import multiprocessing as mp

        ctx = mp.get_context()
        self._stores = list(stores)
        self._conns = []
        self._processes = []
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker, args=(child_conn, spec), daemon=True
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)

    def _receive(self, k: int) -> tuple[str, object]:
        reply = self._conns[k].recv()
        if reply[0] == "ok":
            self._stores[k].save(CoordinatorCheckpoint.from_json(reply[2]))
            return ("ok", reply[1])
        if reply[0] == "crash":
            self._stores[k].save(CoordinatorCheckpoint.from_json(reply[1]))
            return ("crash", reply[2])
        raise RuntimeError(f"shard {k} worker failed: {reply[1]}")

    def map(self, method, args_per_shard, only=None):
        picked = sorted(only) if only is not None else range(len(self._conns))
        picked = list(picked)
        for k in picked:
            self._conns[k].send(("call", method, tuple(args_per_shard[k])))
        return {k: self._receive(k) for k in picked}

    def restore(self, shard_id: int, checkpoint: CoordinatorCheckpoint) -> None:
        self._conns[shard_id].send(("restore", checkpoint.to_json()))
        status, _ = self._receive(shard_id)
        if status != "ok":
            raise RuntimeError(f"shard {shard_id} failed to restore")

    def close(self) -> None:
        for conn, process in zip(self._conns, self._processes):
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()


# -------------------------------------------------------------- results


@dataclass(frozen=True)
class ShardedRoundResult:
    """Everything observable after one sharded service round."""

    index: int
    names: list[str]
    outcome: MechanismOutcome | None
    estimated_execution_values: np.ndarray | None
    loads: dict[str, float]
    payments: dict[str, tuple[float, float, float]]
    payment_notices: dict[str, int]
    alerts: list[str]
    dropped: list[str]
    jobs_routed: int
    simulated_time: float
    aggregation: list[AggregationStats] = field(default_factory=list)
    shard_restarts: int = 0

    @property
    def total_messages(self) -> int:
        """Cross-shard control messages (aggregation tree, both legs)."""
        return sum(stats.total_messages for stats in self.aggregation)

    @property
    def payment_totals(self) -> dict[str, float]:
        """Per-member total payment (compensation + bonus)."""
        return {name: amounts[0] for name, amounts in self.payments.items()}


# --------------------------------------------------------------- rounds


class ShardedRound:
    """One in-flight round, stage by stage.

    Normal use is :meth:`ShardedCoordinatorService.run_round`, which
    drives all four stages; the step-wise surface exists so tests (and
    the supervisor's churn path) can interleave membership changes with
    the phases — the scenario satellite 3 of ISSUE 7 guards: churn
    between bidding and allocation must invalidate the cached bids
    vector on **every** shard.
    """

    def __init__(self, service: "ShardedCoordinatorService", index: int) -> None:
        self._service = service
        self.index = index
        self.restarts = 0
        self._live: list[list[str]] = [list(part) for part in service.partition]
        self._dropped: list[str] = []
        self._partials: list[ShardPartial] | None = None
        self._stats: list[AggregationStats] = []
        self._names: list[str] | None = None
        self._bids_full: np.ndarray | None = None
        self._loads_full: np.ndarray | None = None
        self._total_inverse: float | None = None
        self._estimates_full: np.ndarray | None = None
        self._total_quotient: float | None = None
        self._alerts: list[str] = []
        self._jobs_routed = 0
        self._simulated_time = 0.0
        self._payments: dict[str, tuple[float, float, float]] = {}
        self._outcome: MechanismOutcome | None = None
        service._run_stage(self, "begin_round", [() for _ in service.partition])

    # ----------------------------------------------------------- helpers

    @property
    def live_names(self) -> list[str]:
        """Live members in canonical (partition-concatenation) order."""
        return [name for members in self._live for name in members]

    def _exact(self) -> bool:
        return self._service.aggregation == "exact"

    # ------------------------------------------------------------ stages

    def restrict(self, participants: Sequence[str]) -> list[str]:
        """Limit the round to ``participants`` (pre-bidding membership).

        The supervisor feeds its quarantine-admitted set through here;
        agents outside it sit the round out on every shard.
        """
        keep = set(participants)
        return self.remove_agents(
            [name for name in self.live_names if name not in keep]
        )

    def collect_bids(self) -> None:
        """Stage 1: every shard asks its members for bids."""
        payload = self._exact()
        self._partials = self._service._stage_values(
            self, "run_bidding", [(payload,) for _ in self._live]
        )

    def remove_agents(self, names: Sequence[str]) -> list[str]:
        """Membership churn, mid-round safe.

        Propagates the new live set to **every** shard — including
        shards that lost nobody — so no shard can serve a stale cached
        bids vector, and drops any already-gathered bid partials (they
        described the old membership).
        """
        gone = set(names)
        if not gone:
            return []
        dropped = [name for name in self.live_names if name in gone]
        for k in range(len(self._live)):
            self._live[k] = [n for n in self._live[k] if n not in gone]
        self._service._run_stage(
            self, "set_membership", [(list(part),) for part in self._live]
        )
        self._dropped.extend(dropped)
        self._partials = None  # stale: described the old membership
        return dropped

    def allocate(self) -> np.ndarray:
        """Stage 2: aggregate ``S`` up the tree, decide and apply loads."""
        service = self._service
        if self._partials is None:
            # Bids were collected but membership churned since: rebuild
            # the partials from each shard's (invalidated, hence fresh)
            # bids vector without re-asking the agents.
            self._partials = service._stage_values(
                self, "bid_partial", [(self._exact(),) for _ in self._live]
            )
        root, stats = aggregate_shards(service.overlay, self._partials)
        self._stats.append(stats)
        self._names = self.live_names
        self._total_inverse = root.inverse_sum.value
        if self._exact():
            bids = concatenate_payload(root, "bids")
            allocation = service._allocate(self._names, bids)
            loads = np.asarray(allocation.loads, dtype=np.float64)
            offsets = np.cumsum([0] + [len(part) for part in self._live])
            service._run_stage(
                self,
                "apply_allocation",
                [
                    (loads[offsets[k] : offsets[k + 1]],)
                    for k in range(len(self._live))
                ],
            )
            self._bids_full = bids
            self._loads_full = loads
        else:
            slices = self._service._stage_values(
                self,
                "allocate_from_total",
                [(self._total_inverse,) for _ in self._live],
            )
            self._loads_full = (
                np.concatenate(slices) if slices else np.empty(0)
            )
        return self._loads_full

    def execute(self) -> None:
        """Stage 3: route jobs, run shards, aggregate ``Q`` up the tree."""
        service = self._service
        if self._loads_full is None:
            raise RuntimeError("allocate() must run before execute()")
        payload = self._exact()
        if service.workload == "global":
            workload = PoissonWorkload(service.arrival_rate, service._rng)
            times = workload.generate_times(service.duration)
            total = float(self._loads_full.sum())
            assignments = split_assignments(
                int(times.size), self._loads_full / total, service._rng
            )
            self._jobs_routed = int(times.size)
            # One stable sort splits the stream into per-machine slices
            # (bit-identical to the monolithic per-machine masking: the
            # stable order preserves each machine's arrival sequence)
            # instead of n_machines full-array comparisons.
            n_live = sum(len(members) for members in self._live)
            order = np.argsort(assignments, kind="stable")
            counts = np.bincount(assignments, minlength=n_live)
            pieces = np.split(times[order], np.cumsum(counts)[:-1])
            args = []
            cursor = 0
            for members in self._live:
                args.append((pieces[cursor : cursor + len(members)], payload))
                cursor += len(members)
        else:
            args = [(None, payload) for _ in self._live]
        results = service._stage_values(self, "run_execution", args)
        partials = [partial for partial, _meta in results]
        root, stats = aggregate_shards(service.overlay, partials)
        self._stats.append(stats)
        assert root.quotient_sum is not None
        self._total_quotient = root.quotient_sum.value
        if self._exact():
            self._estimates_full = concatenate_payload(root, "estimates")
        for _partial, meta in results:
            self._alerts.extend(meta["alerts"])
            self._simulated_time = max(
                self._simulated_time, float(meta["simulated_time"])
            )
            if service.workload == "local":
                self._jobs_routed += int(np.sum(meta["jobs"]))

    def settle(self) -> None:
        """Stage 4: price and pay, surviving shard crashes.

        Exact mode prices at the root from the reassembled canonical
        arrays (the monolithic coordinator's floats); scalar mode
        broadcasts (S, Q) and each shard prices its members locally.
        Either way the per-shard settle runs under crash recovery: a
        shard that dies mid-payment is restored from its checkpoint
        and re-settled — the ledger makes that idempotent.
        """
        service = self._service
        assert self._names is not None and self._loads_full is not None
        if self._exact():
            assert self._bids_full is not None
            assert self._estimates_full is not None
            self._outcome = service.mechanism.run(
                self._bids_full, service.arrival_rate, self._estimates_full
            )
            payments = self._outcome.payments
            # tolist() hands back plain Python floats in one C pass;
            # indexing the property arrays per member is 3n attribute
            # lookups on the hot path.
            paid = payments.payment.tolist()
            comp = payments.compensation.tolist()
            bonus = payments.bonus.tolist()
            amounts = {
                name: (paid[k], comp[k], bonus[k])
                for k, name in enumerate(self._names)
            }
            args = [
                ({name: amounts[name] for name in members},)
                for members in self._live
            ]
            ledgers = service._stage_values(self, "settle", args, recover=True)
        else:
            assert self._total_inverse is not None
            assert self._total_quotient is not None
            ledgers = service._stage_values(
                self,
                "settle_from_totals",
                [
                    (self._total_inverse, self._total_quotient)
                    for _ in self._live
                ],
                recover=True,
            )
        for ledger in ledgers:
            self._payments.update(ledger)

    # ------------------------------------------------------------ result

    def result(self) -> ShardedRoundResult:
        """Package the completed round."""
        assert self._names is not None and self._loads_full is not None
        notices = self._service._payment_notices()
        return ShardedRoundResult(
            index=self.index,
            names=list(self._names),
            outcome=self._outcome,
            estimated_execution_values=self._estimates_full,
            loads={
                name: float(load)
                for name, load in zip(self._names, self._loads_full)
            },
            payments=dict(self._payments),
            payment_notices=notices,
            alerts=list(self._alerts),
            dropped=list(self._dropped),
            jobs_routed=self._jobs_routed,
            simulated_time=self._simulated_time,
            aggregation=list(self._stats),
            shard_restarts=self.restarts,
        )


# -------------------------------------------------------------- service


class ShardedCoordinatorService:
    """Long-lived sharded coordinator over a fixed agent population.

    Parameters
    ----------
    agents:
        The machine owners; partitioned into ``shards`` contiguous
        slices in the given order (machine ``k`` is ``C{k+1}`` unless
        ``machine_names`` overrides it).
    arrival_rate:
        Total job rate ``R`` allocated every round.
    shards:
        Number of coordinator workers.
    mechanism:
        Payment rule; defaults to the paper's
        :class:`~repro.mechanism.VerificationMechanism`.
    aggregation:
        ``"exact"`` (default) — shards attach their raw vectors to the
        tree messages and the root computes with the monolithic
        coordinator's reductions: bit-identical results for any
        partition.  ``"scalar"`` — only the compensated (S, Q) partial
        sums travel (O(1) per-shard uplink) and shards price their own
        members from the broadcast totals; agrees to ~1e-12.
    workload:
        ``"global"`` (default) — the service draws one Poisson stream
        and routes it, consuming exactly the monolithic RNG stream
        (the parity mode).  ``"local"`` — each shard draws its own
        substream at rate ``sum(local loads)`` (Poisson thinning); the
        deployment mode, statistically equivalent.
    executor:
        ``"serial"`` (default), ``"async"`` (asyncio over a thread
        pool), or ``"process"`` (one long-lived worker process per
        shard).  Bit-parity holds on every executor under
        deterministic service; with stochastic service it holds only
        for ``"serial"`` (shared RNG stream).
    overlay_arity:
        Fan-in of the aggregation tree over the shards.
    allocator:
        Optional ``(names, bids, R) -> AllocationResult`` override used
        at the root in exact mode (the supervisor passes its
        incremental PR allocator).
    bid_overrides / detector_threshold / detector_slack:
        Forwarded to every shard (remediation overrides, CUSUM
        slowdown detection).
    max_shard_restarts:
        Crash-recovery budget per stage before giving up.
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        arrival_rate: float,
        *,
        shards: int = 4,
        mechanism: Mechanism | None = None,
        duration: float = 40.0,
        aggregation: str = "exact",
        workload: str = "global",
        executor: str = "serial",
        overlay_arity: int = 2,
        deterministic_service: bool = True,
        rng: np.random.Generator | None = None,
        machine_names: Sequence[str] | None = None,
        allocator: (
            Callable[[list[str], np.ndarray, float], AllocationResult] | None
        ) = None,
        bid_overrides: Mapping[str, float] | None = None,
        detector_threshold: float | None = None,
        detector_slack: float = 0.25,
        max_shard_restarts: int = 2,
    ) -> None:
        if len(agents) == 0:
            raise ValueError("the service needs at least one agent")
        if aggregation not in AGGREGATION_MODES:
            raise ValueError(
                f"aggregation must be one of {AGGREGATION_MODES}, "
                f"got {aggregation!r}"
            )
        if workload not in WORKLOAD_MODES:
            raise ValueError(
                f"workload must be one of {WORKLOAD_MODES}, got {workload!r}"
            )
        if executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"executor must be one of {SHARD_EXECUTORS}, got {executor!r}"
            )
        if machine_names is None:
            machine_names = [f"C{i + 1}" for i in range(len(agents))]
        if len(machine_names) != len(agents):
            raise ValueError("machine_names must match agents in length")
        self.arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        self.duration = check_positive_scalar(duration, "duration")
        self.mechanism = (
            mechanism if mechanism is not None else VerificationMechanism()
        )
        self.aggregation = aggregation
        self.workload = workload
        self.executor_kind = executor
        self.deterministic_service = bool(deterministic_service)
        self.max_shard_restarts = int(max_shard_restarts)
        self._allocator = allocator
        self._bid_overrides = dict(bid_overrides or {})
        self._detector_threshold = detector_threshold
        self._detector_slack = float(detector_slack)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._agents: dict[str, Agent] = dict(zip(machine_names, agents))
        self.partition = partition_names(list(machine_names), shards)
        self.overlay: Overlay = (
            tree_overlay(shards, arity=overlay_arity)
            if shards > 1
            else star_overlay(1)
        )
        self.stores = [CheckpointStore() for _ in range(shards)]
        self.restarts_total = 0
        self._round_index = 0
        self._closed = False

        # Worker RNGs: the serial executor threads the service's own
        # generator through every shard so a stochastic round consumes
        # the monolithic stream; concurrent executors get independent
        # child streams spawned from it (which never advance the
        # parent, so deterministic-service parity is unaffected).
        if executor == "serial":
            shard_rngs = [self._rng] * shards
        else:
            seed_seqs = self._spawn_seeds(shards)
            shard_rngs = [np.random.default_rng(seq) for seq in seed_seqs]
        self._shard_rngs = shard_rngs

        if executor == "process":
            seed_seqs = self._spawn_seeds(shards)
            specs = [
                dict(
                    shard_id=k,
                    names=list(self.partition[k]),
                    agents=[self._agents[n] for n in self.partition[k]],
                    arrival_rate=self.arrival_rate,
                    seed_seq=seed_seqs[k],
                    duration=self.duration,
                    deterministic_service=self.deterministic_service,
                    bid_overrides=self._bid_overrides,
                    detector_threshold=self._detector_threshold,
                    detector_slack=self._detector_slack,
                )
                for k in range(shards)
            ]
            self._executor: object = _ProcessShardExecutor(specs, self.stores)
        else:
            built = [self._build_shard(k) for k in range(shards)]
            executor_cls = (
                _SerialShardExecutor if executor == "serial" else _AsyncShardExecutor
            )
            self._executor = executor_cls(built, self._rebuild_shard)

    # ------------------------------------------------------ construction

    def _spawn_seeds(self, count: int) -> list[np.random.SeedSequence]:
        """Child seed sequences that do not advance the parent stream."""
        seed_seq = self._rng.bit_generator.seed_seq
        assert isinstance(seed_seq, np.random.SeedSequence)
        return seed_seq.spawn(count)

    def _shard_kwargs(self, k: int) -> dict:
        return dict(
            rng=self._shard_rngs[k],
            duration=self.duration,
            deterministic_service=self.deterministic_service,
            bid_overrides=self._bid_overrides,
            detector_threshold=self._detector_threshold,
            detector_slack=self._detector_slack,
            checkpoint_store=self.stores[k],
        )

    def _build_shard(self, k: int) -> CoordinatorShard:
        names = self.partition[k]
        return CoordinatorShard(
            k,
            names,
            [self._agents[n] for n in names],
            self.arrival_rate,
            **self._shard_kwargs(k),
        )

    def _rebuild_shard(
        self, k: int, checkpoint: CoordinatorCheckpoint
    ) -> CoordinatorShard:
        return CoordinatorShard.restore(
            checkpoint,
            shard_id=k,
            agents={n: self._agents[n] for n in self.partition[k]},
            **self._shard_kwargs(k),
        )

    # ----------------------------------------------------------- queries

    @property
    def n_shards(self) -> int:
        """Number of coordinator workers."""
        return len(self.partition)

    @property
    def machine_names(self) -> list[str]:
        """All managed machine names, in canonical global order."""
        return list(self._agents)

    @property
    def shards(self) -> list[CoordinatorShard]:
        """The in-process shard objects (serial/async executors only)."""
        if isinstance(self._executor, _SerialShardExecutor):
            return self._executor.shards
        raise RuntimeError(
            "shard objects live in worker processes under the process "
            "executor; inspect their checkpoint stores instead"
        )

    # ------------------------------------------------------------ stages

    def _allocate(self, names: list[str], bids: np.ndarray) -> AllocationResult:
        if self._allocator is not None:
            return self._allocator(list(names), bids, self.arrival_rate)
        return self.mechanism.allocate(bids, self.arrival_rate)

    def _run_stage(
        self,
        round_: ShardedRound,
        method: str,
        args_per_shard: Sequence[tuple],
        recover: bool = False,
    ) -> dict[int, object]:
        """Fan one stage out over all shards, with crash recovery.

        A shard reported crashed has its checkpoint in the parent-side
        store (shards save directly in-process; process workers ship
        the serialised checkpoint with the crash reply); recovery
        restores it and re-runs the stage for the crashed shards only.
        Only ledger-protected stages opt in (``recover=True``) — they
        are idempotent by construction.
        """
        results: dict[int, object] = {}
        pending = set(range(self.n_shards))
        attempts = 0
        while pending:
            outcomes = self._executor.map(method, args_per_shard, only=pending)
            crashed: list[tuple[int, str]] = []
            for k in sorted(pending):
                status, value = outcomes[k]
                if status == "ok":
                    results[k] = value
                else:
                    crashed.append((k, str(value)))
            pending = set()
            for k, message in crashed:
                if not recover or attempts >= self.max_shard_restarts:
                    raise ShardCrash(message)
                checkpoint = self.stores[k].load()
                assert checkpoint is not None, "no checkpoint to restore from"
                self._executor.restore(k, checkpoint)
                round_.restarts += 1
                self.restarts_total += 1
                record_counter("service.shard_restarts")
                pending.add(k)
            attempts += 1
        return results

    def _stage_values(
        self,
        round_: ShardedRound,
        method: str,
        args_per_shard: Sequence[tuple],
        recover: bool = False,
    ) -> list:
        results = self._run_stage(round_, method, args_per_shard, recover)
        return [results[k] for k in range(self.n_shards)]

    def _payment_notices(self) -> dict[str, int]:
        counts = self._stage_values(None, "get_payment_notices", [
            () for _ in self.partition
        ])
        merged: dict[str, int] = {}
        for per_shard in counts:
            merged.update(per_shard)
        return merged

    # ------------------------------------------------------------ rounds

    def begin_round(self) -> ShardedRound:
        """Start a round; drive it stage by stage (tests, churn paths)."""
        if self._closed:
            raise RuntimeError("service is closed")
        index = self._round_index
        self._round_index += 1
        return ShardedRound(self, index)

    def run_round(
        self, participants: Sequence[str] | None = None
    ) -> ShardedRoundResult:
        """Drive one full round through all four stages."""
        with trace_span("service.round", shards=self.n_shards):
            round_ = self.begin_round()
            if participants is not None:
                round_.restrict(participants)
            round_.collect_bids()
            round_.allocate()
            round_.execute()
            round_.settle()
            result = round_.result()
        record_counter("service.rounds")
        observe_value("service.jobs_routed", result.jobs_routed)
        return result

    def run(self, n_rounds: int) -> list[ShardedRoundResult]:
        """Drive ``n_rounds`` consecutive rounds."""
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        return [self.run_round() for _ in range(n_rounds)]

    # --------------------------------------------------------- lifecycle

    def arm_shard_crash(self, shard_id: int, after_payments: int) -> None:
        """Chaos hook: make one shard die after issuing that many payments."""
        self._run_stage(
            None,
            "arm_crash",
            [
                ((after_payments if k == shard_id else None),)
                for k in range(self.n_shards)
            ],
        )

    def close(self) -> None:
        """Shut the executor down (terminates worker processes)."""
        if not self._closed:
            self._executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedCoordinatorService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
