"""The repeated mechanism: staleness vs re-bid traffic.

Each epoch the machines' true values drift.  The mechanism re-collects
bids every ``rebid_period`` epochs (a full protocol round, 5n control
messages); between rounds it keeps routing on the last collected bids.
Machines always *execute* at their current true speed — truthfulness
makes reporting honest whenever asked, and execution faster than
capacity is impossible, so between rounds the realised latency is
``sum_j t_j(now) x_j(stale bids)^2``.

The per-epoch inefficiency (realised latency over the clairvoyant
optimum at the current truth) is the *staleness cost*; the bench maps
it against the re-bid period for both drift models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.allocation.pr import optimal_total_latency, pr_loads

__all__ = ["EpochRecord", "RepeatedMechanismSimulation"]


@dataclass(frozen=True)
class EpochRecord:
    """State of one epoch of the repeated mechanism."""

    epoch: int
    rebid: bool
    realised_latency: float
    optimal_latency: float
    control_messages: int

    @property
    def staleness_ratio(self) -> float:
        """Realised over clairvoyant-optimal latency (>= 1)."""
        return self.realised_latency / self.optimal_latency


class RepeatedMechanismSimulation:
    """Run the mechanism repeatedly under a drift process.

    Parameters
    ----------
    initial_true_values:
        Slopes at epoch 0.
    arrival_rate:
        Per-epoch job rate ``R``.
    drift:
        Object with a ``step(true_values) -> true_values`` method.
    rebid_period:
        Collect fresh bids every this many epochs (1 = every epoch).
    messages_per_round:
        Control messages charged per protocol round (5 per machine in
        the centralised protocol).
    """

    def __init__(
        self,
        initial_true_values: np.ndarray,
        arrival_rate: float,
        drift,
        *,
        rebid_period: int = 1,
        messages_per_round: int | None = None,
    ) -> None:
        self._t0 = as_float_array(initial_true_values, "initial_true_values")
        check_positive(self._t0, "initial_true_values")
        self.arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
        if rebid_period < 1:
            raise ValueError("rebid_period must be at least 1")
        self.rebid_period = int(rebid_period)
        self.drift = drift
        self.messages_per_round = (
            5 * self._t0.size if messages_per_round is None else int(messages_per_round)
        )

    def run(self, n_epochs: int) -> list[EpochRecord]:
        """Simulate ``n_epochs`` epochs; epoch 0 always collects bids."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be at least 1")

        records: list[EpochRecord] = []
        truth = self._t0.copy()
        stale_bids = truth.copy()
        loads = pr_loads(stale_bids, self.arrival_rate)

        for epoch in range(n_epochs):
            rebid = epoch % self.rebid_period == 0
            if rebid:
                # Truthful mechanism: asked agents report their truth.
                stale_bids = truth.copy()
                loads = pr_loads(stale_bids, self.arrival_rate)

            realised = float(np.dot(truth, loads**2))
            optimum = optimal_total_latency(truth, self.arrival_rate)
            records.append(
                EpochRecord(
                    epoch=epoch,
                    rebid=rebid,
                    realised_latency=realised,
                    optimal_latency=optimum,
                    control_messages=self.messages_per_round if rebid else 0,
                )
            )
            truth = self.drift.step(truth)

        return records

    # ------------------------------------------------------------ summary

    @staticmethod
    def mean_staleness(records: list[EpochRecord]) -> float:
        """Average staleness ratio over a run."""
        if not records:
            raise ValueError("records must be non-empty")
        return float(np.mean([r.staleness_ratio for r in records]))

    @staticmethod
    def total_messages(records: list[EpochRecord]) -> int:
        """Control messages spent over a run."""
        return int(sum(r.control_messages for r in records))
