"""Repeated mechanism rounds under drifting machine speeds.

The paper's mechanism is one-shot: bids are collected once and the
allocation is computed for a stationary system.  Real machines change
speed (co-located load, thermal throttling, upgrades).  This subpackage
models that as a discrete-time process:

* :mod:`repro.dynamic.drift` — per-epoch true-value processes
  (geometric random walk, regime switching);
* :mod:`repro.dynamic.rounds` — a repeated mechanism: every epoch the
  system's true values move, and the mechanism either re-collects bids
  (a protocol round, 5n messages) or keeps routing on stale bids.

Because the mechanism is truthful, agents re-bid their current truth
whenever asked — so the only design question left is *how often to
ask*, trading staleness latency against control traffic.  The
``bench_dynamic.py`` ablation maps that trade-off.
"""

from repro.dynamic.drift import (
    DriftSweepResult,
    GeometricRandomWalkDrift,
    RegimeSwitchDrift,
    drift_sweep,
)
from repro.dynamic.rounds import EpochRecord, RepeatedMechanismSimulation

__all__ = [
    "GeometricRandomWalkDrift",
    "RegimeSwitchDrift",
    "DriftSweepResult",
    "drift_sweep",
    "EpochRecord",
    "RepeatedMechanismSimulation",
]
