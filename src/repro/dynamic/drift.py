"""True-value drift processes for the repeated mechanism.

Besides the drift processes themselves, :func:`drift_sweep` measures
what a drifting horizon *costs*: machines bid once (round 0), their
true speeds then wander, and every subsequent round is priced on the
stale profile.  The whole horizon is scored as one stacked broadcast
over the batched-unit kernel axis
(:func:`repro.agents.kernels.sufficient_statistics_units` /
:func:`repro.agents.kernels.grid_argmax_units`) — one row per round —
so thousand-round sweeps cost a handful of NumPy calls.  This is the
drift row of the A27 horizon bench and the ``repro campaign
--variant drift`` backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_positive,
    check_positive_scalar,
)

__all__ = [
    "GeometricRandomWalkDrift",
    "RegimeSwitchDrift",
    "DriftSweepResult",
    "drift_sweep",
]


class GeometricRandomWalkDrift:
    """Each machine's slope follows a reflected geometric random walk.

    ``log t`` takes a Normal(0, sigma) step per epoch, clipped into
    ``[log lower, log upper]`` so machines stay physically plausible.

    Parameters
    ----------
    sigma:
        Per-epoch standard deviation of the log step (0.05 ~ 5% speed
        jitter per epoch).
    bounds:
        (lower, upper) clip range for the slopes.
    """

    def __init__(
        self,
        sigma: float,
        rng: np.random.Generator,
        *,
        bounds: tuple[float, float] = (0.05, 100.0),
    ) -> None:
        if sigma < 0.0:
            raise ValueError("sigma must be non-negative")
        lower, upper = bounds
        if not 0 < lower < upper:
            raise ValueError("bounds must satisfy 0 < lower < upper")
        self.sigma = float(sigma)
        self.bounds = (float(lower), float(upper))
        self._rng = rng

    def step(self, true_values: np.ndarray) -> np.ndarray:
        """One epoch of drift applied to ``true_values``."""
        true_values = as_float_array(true_values, "true_values")
        check_positive(true_values, "true_values")
        steps = self._rng.normal(0.0, self.sigma, size=true_values.size)
        moved = true_values * np.exp(steps)
        return np.clip(moved, *self.bounds)


class RegimeSwitchDrift:
    """Machines occasionally jump to a new speed regime.

    With probability ``switch_probability`` per epoch, a machine's
    slope is redrawn log-uniformly from ``t_range`` (modelling a burst
    of co-located load appearing or clearing); otherwise it is
    unchanged.  This is the adversarial end of the drift spectrum:
    stale bids can be badly wrong right after a switch.
    """

    def __init__(
        self,
        switch_probability: float,
        rng: np.random.Generator,
        *,
        t_range: tuple[float, float] = (1.0, 10.0),
    ) -> None:
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError("switch_probability must be in [0, 1]")
        lower, upper = t_range
        if not 0 < lower <= upper:
            raise ValueError("t_range must satisfy 0 < lower <= upper")
        self.switch_probability = float(switch_probability)
        self.t_range = (float(lower), float(upper))
        self._rng = rng

    def step(self, true_values: np.ndarray) -> np.ndarray:
        """One epoch: each machine independently may switch regime."""
        true_values = as_float_array(true_values, "true_values")
        check_positive(true_values, "true_values")
        n = true_values.size
        switch = self._rng.random(n) < self.switch_probability
        lower, upper = self.t_range
        fresh = np.exp(self._rng.uniform(np.log(lower), np.log(upper), size=n))
        return np.where(switch, fresh, true_values)


@dataclass(frozen=True)
class DriftSweepResult:
    """Per-round cost of routing a drifting horizon on stale bids.

    All arrays share the round axis; ``best_response_gain`` and
    ``best_response_factors`` add an agent axis.  Degradations are in
    percent of the per-round optimum.
    """

    sigma: float
    factors: np.ndarray  # (K,) candidate bid factors scanned per agent
    rates: np.ndarray  # (rounds,) per-round arrival rate
    degradation_pct: np.ndarray  # (rounds,) stale-vs-optimal latency gap
    best_response_gain: np.ndarray  # (rounds, n) utility left on the table
    best_response_factors: np.ndarray  # (rounds, n) arg-max bid factor

    @property
    def rounds(self) -> int:
        """Number of drifted rounds scored."""
        return int(self.degradation_pct.size)

    @property
    def n(self) -> int:
        """Number of machines."""
        return int(self.best_response_gain.shape[1])

    @property
    def mean_degradation_pct(self) -> float:
        """Average stale-allocation latency gap over the horizon."""
        return float(self.degradation_pct.mean())

    @property
    def max_degradation_pct(self) -> float:
        """Worst single-round stale-allocation latency gap."""
        return float(self.degradation_pct.max())

    @property
    def mean_gain(self) -> float:
        """Average per-agent best-response gain over stale truthful bids."""
        return float(self.best_response_gain.mean())

    @property
    def max_gain(self) -> float:
        """Largest single-agent incentive to re-bid anywhere on the horizon."""
        return float(self.best_response_gain.max())


def drift_sweep(
    true_values: np.ndarray,
    arrival_rate: float,
    *,
    rounds: int = 64,
    sigma: float = 0.05,
    seed: int = 0,
    mechanism=None,
    scan_points: int = 17,
    arrival_schedule=None,
    round_duration: float = 40.0,
    declared_bids=None,
) -> DriftSweepResult:
    """Score a stale-bid horizon under geometric drift in one broadcast.

    Machines declare ``true_values`` once; thereafter their actual
    speeds follow a :class:`GeometricRandomWalkDrift` with the given
    ``sigma`` (seeded, so sweeps are reproducible) while every round
    keeps routing on the round-0 declarations.  For each round the
    sweep reports (a) the realised-vs-optimal latency degradation and
    (b) every agent's best-response gain — how much utility the agent
    could recover by re-bidding, scanned over ``scan_points``
    log-spaced factors of its *current* truth via the closed-form
    kernel.  The whole ``(rounds, n, K)`` tensor is evaluated with the
    batched-unit kernels — no per-round mechanism runs.

    ``arrival_schedule`` (any
    :class:`~repro.system.workload.ArrivalSchedule`) makes the horizon
    nonstationary: round ``k`` is priced at the schedule's mean rate
    over ``[k*round_duration, (k+1)*round_duration)``; the kernel's
    per-row rate column scores all rounds in the same single call.

    ``declared_bids`` overrides the round-0 declaration set (default:
    the truthful profile, i.e. ``true_values``) — this is how a
    ``drift`` :class:`~repro.parallel.ExperimentUnit` scores a
    manipulated stale profile; the drift trajectory always starts from
    ``true_values``.
    """
    from repro.agents import kernels
    from repro.mechanism import VerificationMechanism

    if mechanism is None:
        mechanism = VerificationMechanism()
    mode = kernels.kernel_mode_of(mechanism)
    stale = as_float_array(true_values, "true_values")
    check_positive(stale, "true_values")
    if stale.size < 2:
        raise ValueError("drift_sweep requires at least two machines")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    if scan_points < 2:
        raise ValueError("scan_points must be at least 2")
    n = stale.size
    if declared_bids is None:
        declared = stale
    else:
        declared = as_float_array(declared_bids, "declared_bids")
        check_positive(declared, "declared_bids")
        if declared.size != n:
            raise ValueError("declared_bids must have one entry per machine")

    drift = GeometricRandomWalkDrift(sigma, np.random.default_rng(seed))
    trajectory = np.empty((rounds, n))
    current = stale
    for r in range(rounds):
        current = drift.step(current)
        trajectory[r] = current

    if arrival_schedule is None:
        rates = np.full(rounds, arrival_rate)
    else:
        round_duration = check_positive_scalar(round_duration, "round_duration")
        rates = np.array(
            [
                arrival_schedule.mean_rate(
                    r * round_duration, (r + 1) * round_duration
                )
                for r in range(rounds)
            ]
        )

    # Stale allocation: loads follow the round-0 bids but scale with
    # each round's rate; the optimum tracks the drifted truth.
    inv_stale = 1.0 / declared
    s_stale = float(inv_stale.sum())
    realised = (rates**2 / s_stale**2) * (trajectory @ inv_stale**2)
    optimal = rates**2 / (1.0 / trajectory).sum(axis=1)
    degradation_pct = (realised - optimal) / optimal * 100.0

    # Best-response scan: non-deviators keep their stale bids but
    # execute at their current (drifted) capacity, so the leave-one-out
    # statistics pair stale bids with drifted executions, one unit row
    # per round.
    bids_block = np.broadcast_to(declared, (rounds, n))
    s_minus, q_minus = kernels.sufficient_statistics_units(
        bids_block, trajectory
    )
    factors = np.geomspace(0.25, 4.0, scan_points)
    candidates = trajectory[:, :, None] * factors[None, None, :]
    utilities = kernels.utility_kernel(
        candidates,
        trajectory[:, :, None],
        s_minus[:, :, None],
        q_minus[:, :, None],
        rates[:, None, None],
        mode=mode,
    )  # (rounds, n, K)
    stale_utilities = kernels.utility_kernel(
        bids_block,
        trajectory,
        s_minus,
        q_minus,
        rates[:, None],
        mode=mode,
    )  # (rounds, n)
    _, cols = kernels.grid_argmax_units(
        utilities.reshape(rounds * n, 1, scan_points)
    )
    best_factors = factors[cols].reshape(rounds, n)
    best_utilities = np.take_along_axis(
        utilities, cols.reshape(rounds, n, 1), axis=2
    )[:, :, 0]
    # Keeping the stale bid is always available, so a grid whose best
    # candidate scores below it means "no profitable deviation found".
    gains = np.maximum(best_utilities - stale_utilities, 0.0)

    return DriftSweepResult(
        sigma=float(sigma),
        factors=factors,
        rates=rates,
        degradation_pct=degradation_pct,
        best_response_gain=gains,
        best_response_factors=best_factors,
    )
