"""True-value drift processes for the repeated mechanism."""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_positive

__all__ = ["GeometricRandomWalkDrift", "RegimeSwitchDrift"]


class GeometricRandomWalkDrift:
    """Each machine's slope follows a reflected geometric random walk.

    ``log t`` takes a Normal(0, sigma) step per epoch, clipped into
    ``[log lower, log upper]`` so machines stay physically plausible.

    Parameters
    ----------
    sigma:
        Per-epoch standard deviation of the log step (0.05 ~ 5% speed
        jitter per epoch).
    bounds:
        (lower, upper) clip range for the slopes.
    """

    def __init__(
        self,
        sigma: float,
        rng: np.random.Generator,
        *,
        bounds: tuple[float, float] = (0.05, 100.0),
    ) -> None:
        if sigma < 0.0:
            raise ValueError("sigma must be non-negative")
        lower, upper = bounds
        if not 0 < lower < upper:
            raise ValueError("bounds must satisfy 0 < lower < upper")
        self.sigma = float(sigma)
        self.bounds = (float(lower), float(upper))
        self._rng = rng

    def step(self, true_values: np.ndarray) -> np.ndarray:
        """One epoch of drift applied to ``true_values``."""
        true_values = as_float_array(true_values, "true_values")
        check_positive(true_values, "true_values")
        steps = self._rng.normal(0.0, self.sigma, size=true_values.size)
        moved = true_values * np.exp(steps)
        return np.clip(moved, *self.bounds)


class RegimeSwitchDrift:
    """Machines occasionally jump to a new speed regime.

    With probability ``switch_probability`` per epoch, a machine's
    slope is redrawn log-uniformly from ``t_range`` (modelling a burst
    of co-located load appearing or clearing); otherwise it is
    unchanged.  This is the adversarial end of the drift spectrum:
    stale bids can be badly wrong right after a switch.
    """

    def __init__(
        self,
        switch_probability: float,
        rng: np.random.Generator,
        *,
        t_range: tuple[float, float] = (1.0, 10.0),
    ) -> None:
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError("switch_probability must be in [0, 1]")
        lower, upper = t_range
        if not 0 < lower <= upper:
            raise ValueError("t_range must satisfy 0 < lower <= upper")
        self.switch_probability = float(switch_probability)
        self.t_range = (float(lower), float(upper))
        self._rng = rng

    def step(self, true_values: np.ndarray) -> np.ndarray:
        """One epoch: each machine independently may switch regime."""
        true_values = as_float_array(true_values, "true_values")
        check_positive(true_values, "true_values")
        n = true_values.size
        switch = self._rng.random(n) < self.switch_probability
        lower, upper = self.t_range
        fresh = np.exp(self._rng.uniform(np.log(lower), np.log(upper), size=n))
        return np.where(switch, fresh, true_values)
