"""Prebuilt campaigns: the paper's evaluation as schedulable units.

The Section 4 evaluation is a *campaign*: the eight Table 2 bid
profiles on the Table 1 system, closed form for the figures plus
seeded protocol replications for Monte-Carlo error bars.  This module
builds those unit lists, and converts engine payloads back into the
:class:`~repro.experiments.figures.ExperimentRecord` objects the
figure generators consume — the reconstruction is exact, so a figure
built from a (possibly cached, possibly parallel) campaign is
bit-identical to one computed inline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.figures import ExperimentRecord
from repro.experiments.table1 import Table1Configuration, table1_configuration
from repro.experiments.table2 import PAPER_SCENARIOS, scenario_by_name
from repro.parallel.engine import CampaignEngine, CampaignResult
from repro.parallel.units import ExperimentUnit
from repro.types import AllocationResult, MechanismOutcome, PaymentResult

__all__ = [
    "FiguresCampaign",
    "figures_campaign_units",
    "protocol_units",
    "record_from_payload",
    "records_from_campaign",
    "run_figures_campaign",
    "scenario_units",
]


def _resolve(config: Table1Configuration | None) -> Table1Configuration:
    return table1_configuration() if config is None else config


def scenario_units(
    config: Table1Configuration | None = None,
    *,
    variant: str = "observed",
) -> list[ExperimentUnit]:
    """The eight closed-form Table 2 evaluations (Figures 1–6 data)."""
    config = _resolve(config)
    return [
        ExperimentUnit(
            kind="scenario",
            scenario=scenario.name,
            bid_factor=scenario.bid_factor,
            execution_factor=scenario.execution_factor,
            true_values=tuple(config.cluster.true_values.tolist()),
            arrival_rate=config.arrival_rate,
            variant=variant,
        )
        for scenario in PAPER_SCENARIOS
    ]


def protocol_units(
    config: Table1Configuration | None = None,
    *,
    seeds: tuple[int, ...] = (0,),
    duration: float = 200.0,
    variant: str = "observed",
    scenarios: tuple[str, ...] | None = None,
    shards: int = 1,
) -> list[ExperimentUnit]:
    """Seeded discrete-event replications of the Table 2 scenarios.

    ``shards > 1`` runs each replication through the sharded
    coordinator service (bit-identical mechanism payload; see
    :class:`~repro.parallel.ExperimentUnit`).
    """
    config = _resolve(config)
    names = scenarios or tuple(s.name for s in PAPER_SCENARIOS)
    units = []
    for name in names:
        scenario = scenario_by_name(name)
        for seed in seeds:
            units.append(
                ExperimentUnit(
                    kind="protocol",
                    scenario=scenario.name,
                    bid_factor=scenario.bid_factor,
                    execution_factor=scenario.execution_factor,
                    true_values=tuple(config.cluster.true_values.tolist()),
                    arrival_rate=config.arrival_rate,
                    variant=variant,
                    seed=int(seed),
                    duration=duration,
                    shards=shards,
                )
            )
    return units


def figures_campaign_units(
    config: Table1Configuration | None = None,
    *,
    seeds: tuple[int, ...] = (),
    duration: float = 200.0,
    variant: str = "observed",
    shards: int = 1,
) -> list[ExperimentUnit]:
    """The combined Table 1 + Figures 1–6 campaign.

    Always contains the eight closed-form units; adding ``seeds`` adds
    one protocol replication per (scenario, seed) — the regime where
    the worker pool pays off, since a protocol unit costs ~1000x a
    closed-form one.
    """
    config = _resolve(config)
    units = scenario_units(config, variant=variant)
    if seeds:
        units += protocol_units(
            config,
            seeds=tuple(seeds),
            duration=duration,
            variant=variant,
            shards=shards,
        )
    return units


# ----------------------------------------------------- payload -> records


def record_from_payload(unit: ExperimentUnit, payload: dict) -> ExperimentRecord:
    """Rebuild the exact :class:`ExperimentRecord` a payload came from.

    Payload floats round-trip bit-exactly through JSON, and every
    derived quantity (payment, utility, realised latency) is recomputed
    by the same dataclass properties the inline path uses — so
    downstream figures cannot tell a cached campaign from a fresh run.
    """
    allocation = AllocationResult(
        loads=np.asarray(payload["loads"]),
        arrival_rate=unit.arrival_rate,
        bids=np.asarray(payload["bids"]),
        total_latency=payload["declared_latency"],
    )
    payments = PaymentResult(
        compensation=np.asarray(payload["compensation"]),
        bonus=np.asarray(payload["bonus"]),
        valuation=np.asarray(payload["valuation"]),
    )
    outcome = MechanismOutcome(
        allocation=allocation,
        payments=payments,
        execution_values=np.asarray(payload["execution_values"]),
        true_values=np.asarray(unit.true_values),
    )
    return ExperimentRecord(
        scenario=scenario_by_name(unit.scenario), outcome=outcome
    )


def records_from_campaign(result: CampaignResult) -> list[ExperimentRecord]:
    """Records for every closed-form unit of a campaign, in order."""
    return [
        record_from_payload(unit, payload)
        for unit, payload in zip(result.units, result.payloads)
        if unit.kind == "scenario"
    ]


@dataclass(frozen=True)
class FiguresCampaign:
    """A completed Table 1 + Figures campaign, ready for the figure code."""

    result: CampaignResult
    records: tuple[ExperimentRecord, ...]

    @property
    def stats(self):
        """Shorthand for the engine's cost accounting."""
        return self.result.stats

    def protocol_payloads(self) -> dict[tuple[str, int], dict]:
        """Protocol-unit payloads keyed by (scenario, seed)."""
        return {
            (unit.scenario, unit.seed): payload
            for unit, payload in zip(self.result.units, self.result.payloads)
            if unit.kind == "protocol"
        }


def run_figures_campaign(
    engine: CampaignEngine | None = None,
    config: Table1Configuration | None = None,
    *,
    seeds: tuple[int, ...] = (),
    duration: float = 200.0,
    variant: str = "observed",
) -> FiguresCampaign:
    """Run the combined campaign through an engine (serial by default)."""
    engine = engine or CampaignEngine(workers=0, cache=None)
    units = figures_campaign_units(
        config, seeds=seeds, duration=duration, variant=variant
    )
    result = engine.run(units)
    return FiguresCampaign(
        result=result, records=tuple(records_from_campaign(result))
    )
