"""Parallel campaign engine with content-addressed result caching.

Experiment campaigns — the Table 1/2 sweep, Figures 1–6, the A-series
ablations — are embarrassingly parallel: every unit
(seed x bid-profile x mechanism-variant) is a pure function of its
config.  This subpackage exploits exactly that and nothing more:

* :mod:`repro.parallel.units` — :class:`ExperimentUnit`, the pure
  :func:`execute_unit` evaluator, and the SHA-256 cache key over the
  canonicalised unit config + package version;
* :mod:`repro.parallel.cache` — :class:`ResultCache`, a directory of
  atomic JSON entries addressed by content (staleness is impossible:
  changed configs change keys);
* :mod:`repro.parallel.engine` — :class:`CampaignEngine`, chunked
  scheduling over a ``multiprocessing`` pool, cache-hit short-circuit,
  cache hit/miss counters and per-unit latency histograms via the
  observability layer, per-worker span export; plus the generic
  :func:`parallel_map` the heavy benchmark drivers submit through;
* :mod:`repro.parallel.fusion` — the fused backend (1.9.0): homogeneous
  closed-form cache misses grouped into ``(variant, n_machines)``
  cohorts and evaluated as single stacked broadcasts, bit-identical to
  :func:`execute_unit` and cached under unchanged keys
  (``CampaignEngine(fuse="auto"|"on"|"off")``);
* :mod:`repro.parallel.campaigns` — the paper's evaluation as unit
  lists, and the exact payload→record reconstruction the figure
  generators consume.

Serial and parallel runs are **bit-identical** per unit, and a warm
cache short-circuits whole campaigns (``repro campaign --resume``);
``benchmarks/bench_parallel.py`` (A20) enforces both.

>>> from repro.parallel import CampaignEngine, scenario_units
>>> campaign = CampaignEngine(workers=0).run(scenario_units())
>>> round(campaign.payloads[0]["realised_latency"], 2)   # True1 optimum
78.43
>>> campaign.stats.cache_misses   # no cache attached: all computed
8
"""

from repro.parallel.cache import NullCache, ResultCache
from repro.parallel.engine import (
    CampaignEngine,
    CampaignResult,
    CampaignStats,
    default_chunk_size,
    parallel_map,
)
from repro.parallel.fusion import (
    FUSE_MODES,
    cohort_key,
    execute_cohort,
    fusable,
    partition_pending,
)
from repro.parallel.units import (
    ExperimentUnit,
    canonical_config,
    canonical_json,
    canonicalise,
    execute_unit,
    unit_cache_key,
)
from repro.parallel.campaigns import (
    FiguresCampaign,
    figures_campaign_units,
    protocol_units,
    record_from_payload,
    records_from_campaign,
    run_figures_campaign,
    scenario_units,
)

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "CampaignStats",
    "ExperimentUnit",
    "FUSE_MODES",
    "FiguresCampaign",
    "NullCache",
    "ResultCache",
    "canonical_config",
    "canonical_json",
    "canonicalise",
    "cohort_key",
    "default_chunk_size",
    "execute_cohort",
    "execute_unit",
    "figures_campaign_units",
    "fusable",
    "partition_pending",
    "parallel_map",
    "protocol_units",
    "record_from_payload",
    "records_from_campaign",
    "run_figures_campaign",
    "scenario_units",
    "unit_cache_key",
]
