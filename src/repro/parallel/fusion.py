"""Fused campaign backend: evaluate whole unit cohorts in one broadcast.

The 1.4.0–1.8.0 kernels made a single closed-form
:class:`~repro.parallel.units.ExperimentUnit` almost free analytically,
so a cold scenario campaign's wall-clock is dominated by *per-unit
Python*: mechanism construction, validation, dataclass packaging,
per-unit spans, and (with workers) pickling tiny units across the
pool.  This module removes that tax.  Cache-miss units are grouped
into **cohorts** — units that share a payment rule and a grid shape —
and each cohort is evaluated as one stacked ``(U, n)`` NumPy
computation instead of ``U`` independent
:func:`~repro.parallel.units.execute_unit` calls.  The Table 2 grid,
the tournament's manipulation sweep, generalization rows, and the
figure campaigns all have exactly this shape.

Cohort grouping rules (:func:`cohort_key`):

* same ``variant`` — every unit in a cohort is scored by the same
  payment formulas (observed / declared / vcg / archer-tardos);
* same machine count ``n = len(true_values)`` — the cohort stacks into
  a rectangular ``(U, n)`` block.

Everything else (true values, bid/execution factors, coalitions,
arrival rates) varies freely *within* a cohort: it stacks into rows
and broadcast columns.  Units that are not closed-form — protocol and
sharded replications (they simulate), and the ``dynamics`` variant
(it iterates to a fixed point) — are not fusable
(:func:`fusable`) and stay on the per-unit path.

**Bit-parity is the contract**, not a tolerance: a fused payload is
equal — every float, through ``repr`` and back — to the payload
:func:`execute_unit` produces for the same unit, so cohort results
scatter into the existing :class:`~repro.parallel.cache.ResultCache`
under unchanged keys and warm-cache / ``--resume`` behaviour is
untouched.  Two NumPy facts make exactness possible (asserted by
``tests/parallel/test_fusion.py`` and re-asserted before every timing
run of ``benchmarks/bench_campaign_fusion.py``):

* reducing a C-contiguous ``(U, n)`` block along its last axis applies
  the same pairwise summation to each row that ``row.sum()`` applies
  to a lone vector, so the stacked ``S`` totals match the per-unit
  ones bit for bit;
* the batched matrix product ``(U, 1, n) @ (U, n, 1)`` runs the same
  BLAS dot per row that ``np.dot(e, x**2)`` runs per unit, so realised
  latencies match bit for bit (a plain ``(E * X).sum(axis=1)`` or
  ``einsum`` would *not* — different reduction order).

Every remaining operation is elementwise, and IEEE-754 elementwise
arithmetic is deterministic regardless of how the operands are
stacked.

Validation note: fused cohorts skip :meth:`Mechanism.run`'s input
checks on purpose.  ``ExperimentUnit.__post_init__`` already enforces
strictly positive true values, ``bid_factor > 0``, and
``execution_factor >= 1`` — which makes bids/executions positive and
``t̃_i >= t_i`` true by construction, so none of the skipped checks
can fire for a constructible unit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.parallel.units import ExperimentUnit

__all__ = [
    "FUSE_MODES",
    "cohort_key",
    "execute_cohort",
    "fusable",
    "partition_pending",
]

#: The engine's fusion settings: ``auto`` fuses cohorts of two or more
#: units (a singleton gains nothing), ``on`` fuses every fusable unit,
#: ``off`` keeps the pure per-unit path.
FUSE_MODES = ("auto", "on", "off")

#: Scenario variants with a stacked closed form.  ``dynamics`` is
#: deliberately absent: it iterates best responses to a fixed point,
#: so it has no single-broadcast evaluation.
_FUSABLE_VARIANTS = ("observed", "declared", "vcg", "archer-tardos")


def fusable(unit: ExperimentUnit) -> bool:
    """Whether one unit can join a fused cohort.

    True exactly for closed-form scenario units under the four
    direct payment rules; protocol/sharded replications and the
    iterated ``dynamics`` variant fall back to
    :func:`~repro.parallel.units.execute_unit`.
    """
    return unit.kind == "scenario" and unit.variant in _FUSABLE_VARIANTS


def cohort_key(unit: ExperimentUnit) -> tuple[str, int]:
    """The homogeneity key: ``(variant, n_machines)``.

    Units sharing a key are scored by the same payment formulas and
    stack into one rectangular ``(U, n)`` block; everything else
    (true values, factors, coalitions, arrival rates) varies freely
    within a cohort.
    """
    return (unit.variant, len(unit.true_values))


def partition_pending(
    pending: Sequence[tuple[int, ExperimentUnit]],
    mode: str = "auto",
) -> tuple[list[list[tuple[int, ExperimentUnit]]], list[tuple[int, ExperimentUnit]]]:
    """Split cache misses into fused cohorts and per-unit fallbacks.

    ``pending`` is the engine's miss list as ``(submission index,
    unit)`` pairs.  Returns ``(cohorts, fallback)`` with submission
    order preserved inside every cohort and inside the fallback list —
    so scatter order, cache writes, and the per-unit fallback chunks
    are reproducible.

    ``mode="auto"`` only fuses cohorts with at least two members
    (fusing a singleton saves nothing and costs the unit its
    per-unit span); ``mode="on"`` fuses every fusable unit;
    ``mode="off"`` fuses nothing.
    """
    if mode not in FUSE_MODES:
        raise ValueError(f"fuse must be one of {FUSE_MODES}, got {mode!r}")
    if mode == "off":
        return [], list(pending)
    grouped: dict[tuple[str, int], list[tuple[int, ExperimentUnit]]] = {}
    fallback: list[tuple[int, ExperimentUnit]] = []
    for index, unit in pending:
        if fusable(unit):
            grouped.setdefault(cohort_key(unit), []).append((index, unit))
        else:
            fallback.append((index, unit))
    cohorts: list[list[tuple[int, ExperimentUnit]]] = []
    for members in grouped.values():
        if mode == "auto" and len(members) < 2:
            fallback.extend(members)
        else:
            cohorts.append(members)
    # A stable fallback order regardless of how cohorts were rejected.
    fallback.sort(key=lambda pair: pair[0])
    return cohorts, fallback


# ------------------------------------------------------------ evaluation


def _stack_profiles(
    units: Sequence[ExperimentUnit],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(true_values, bids, executions, rates)`` for one cohort.

    Row ``k`` applies unit ``k``'s ``(bid_factor, execution_factor)``
    to its coalition exactly as the per-unit ``_profile`` does — the
    same in-place fancy-index multiply on a row view, so every entry
    is bit-identical to the per-unit arrays.
    """
    true_values = np.array([unit.true_values for unit in units], dtype=np.float64)
    bids = true_values.copy()
    executions = true_values.copy()
    for row, unit in enumerate(units):
        liars = (
            list(unit.manipulators)
            if unit.manipulators is not None
            else [unit.manipulator]
        )
        bids[row, liars] *= unit.bid_factor
        executions[row, liars] *= unit.execution_factor
    rates = np.array([unit.arrival_rate for unit in units], dtype=np.float64)
    return true_values, bids, executions, rates


def _row_dots(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Per-row dot products via one batched BLAS call.

    ``(U, 1, n) @ (U, n, 1)`` dispatches the same dot kernel per row
    that ``np.dot(left[k], right[k])`` uses, which is what makes the
    stacked realised/declared latencies bit-identical to the per-unit
    path (``einsum`` and ``(l * r).sum(axis=1)`` are not).
    """
    return (left[:, None, :] @ right[:, :, None])[:, 0, 0]


def execute_cohort(units: Sequence[ExperimentUnit]) -> list[dict]:
    """Evaluate one homogeneous cohort in a single stacked computation.

    Every unit must share :func:`cohort_key`; the result is one payload
    dict per unit, in input order, each equal to
    ``execute_unit(unit)`` — same floats, same fields.
    """
    units = list(units)
    if not units:
        return []
    keys = {cohort_key(unit) for unit in units}
    if len(keys) > 1:
        raise ValueError(f"cohort mixes incompatible units: {sorted(keys)}")
    variant = units[0].variant
    if not fusable(units[0]):
        raise ValueError(f"variant {variant!r} has no fused evaluation")

    _, bids, executions, rates = _stack_profiles(units)
    rates_col = rates[:, None]

    # PR allocation, stacked: one row per unit (Theorem 2.1).
    inv = 1.0 / bids                                   # (U, n)
    total_inv = inv.sum(axis=1, keepdims=True)         # (U, 1): S per unit
    loads = rates_col * inv / total_inv                # (U, n)
    declared_latency = rates**2 / total_inv[:, 0]      # (U,): R^2 / S
    loads_sq = loads**2

    # Payments, stacked.  ``excluded`` is every leave-one-out optimum
    # L_{-i}^* = R^2 / S_{-i}; realised/declared totals go through the
    # batched BLAS dot for bit-parity with the scalar np.dot calls.
    s_minus = total_inv - inv                          # (U, n): S_{-i}
    excluded = rates_col**2 / s_minus
    realised = _row_dots(executions, loads_sq)         # (U,)

    if variant in ("observed", "declared"):
        compensation = (
            executions * loads_sq if variant == "observed" else bids * loads_sq
        )
        bonus = excluded - realised[:, None]
    elif variant == "vcg":
        compensation = bids * loads_sq
        bonus = excluded - _row_dots(bids, loads_sq)[:, None]
    else:  # archer-tardos: work-integral bonus, closed form
        compensation = bids * loads_sq
        bonus = rates_col**2 / (s_minus * (bids * s_minus + 1.0))
    valuation = -executions * loads_sq

    payment = compensation + bonus
    utility = payment + valuation
    total_payment = payment.sum(axis=1)
    total_valuation = np.abs(valuation).sum(axis=1)

    payloads = []
    for k in range(len(units)):
        denom = float(total_valuation[k])
        payloads.append(
            {
                "bids": bids[k].tolist(),
                "execution_values": executions[k].tolist(),
                "loads": loads[k].tolist(),
                "declared_latency": float(declared_latency[k]),
                "realised_latency": float(realised[k]),
                "compensation": compensation[k].tolist(),
                "bonus": bonus[k].tolist(),
                "valuation": valuation[k].tolist(),
                "payment": payment[k].tolist(),
                "utility": utility[k].tolist(),
                "frugality_ratio": (
                    float("nan") if denom == 0.0
                    else float(total_payment[k]) / denom
                ),
            }
        )
    return payloads
