"""Content-addressed result cache for campaign units.

Each entry is one JSON file named by the unit's SHA-256 cache key
(two-level fan-out: ``<root>/<key[:2]>/<key>.json``), holding an
envelope of the key, the package version, the unit config it was
computed from, and the payload.  Content addressing makes staleness
impossible by construction — a changed config or a new package version
changes the key, so an old entry can never be served for a new unit;
old entries simply stop being referenced.

Writes are atomic (temp file + :func:`os.replace` in the same
directory), so a campaign killed mid-write never leaves a corrupt
entry a resumed campaign could trip over; a corrupt or truncated file
is treated as a miss and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator

__all__ = ["NullCache", "ResultCache"]


class ResultCache:
    """Directory-backed content-addressed store of unit payloads."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- layout

    def path_for(self, key: str) -> Path:
        """Where an entry with this key lives (whether or not it exists)."""
        if len(key) < 3:
            raise ValueError("cache keys must be at least 3 characters")
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------ queries

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on a miss.

        A file that exists but does not parse (torn write from a
        pre-atomic tool, disk corruption) is deleted and reported as a
        miss rather than poisoning the campaign.
        """
        entry = self.entry(key)
        if entry is None:
            return None
        return entry["payload"]

    def entry(self, key: str) -> dict | None:
        """The full stored envelope (key, version, unit config, payload)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            envelope = json.loads(text)
            if not isinstance(envelope, dict) or "payload" not in envelope:
                raise ValueError("not a cache envelope")
        except (ValueError, TypeError):
            path.unlink(missing_ok=True)
            return None
        return envelope

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """All stored cache keys (unordered)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------ updates

    def put(
        self,
        key: str,
        payload: dict,
        *,
        unit_config: dict | None = None,
        version: str | None = None,
    ) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        if version is None:
            from repro import __version__ as version
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "key": key,
            "version": version,
            "unit": unit_config,
            "payload": payload,
        }
        text = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:8]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        return removed


class NullCache:
    """The ``--no-cache`` cache: never hits, never stores."""

    def get(self, key: str) -> dict | None:
        return None

    def entry(self, key: str) -> dict | None:
        return None

    def put(self, key: str, payload: dict, **_: object) -> None:
        return None

    def __contains__(self, key: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0
