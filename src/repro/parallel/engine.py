"""The campaign engine: fan units across a worker pool, cache results.

``CampaignEngine.run`` takes a list of
:class:`~repro.parallel.units.ExperimentUnit`, consults the
content-addressed cache, and evaluates only the missing units — either
in-process (``workers <= 1``) or across a ``multiprocessing`` pool
with **chunked scheduling**: units are grouped into chunks of
``ceil(pending / (workers * 4))`` so each worker receives a few large
pickles instead of thousands of tiny ones, while the x4 oversubscription
keeps the pool load-balanced when unit costs are uneven (protocol units
cost ~1000x scenario units).

Determinism is structural, not statistical: every unit is a pure
function of its config (workers never share state or RNG streams), and
results are reassembled in submission order — so a parallel campaign's
per-unit payloads are bit-identical to a serial run's, regardless of
completion order.  ``benchmarks/bench_parallel.py`` (A20) asserts this
on every run.

Fusion (1.9.0): before anything reaches the pool, cache-miss units
with a stacked closed form — scenario units under the four direct
payment rules — are grouped into cohorts by ``(variant, n_machines)``
and each cohort is evaluated in-process as one ``(U, n)`` broadcast
(:mod:`repro.parallel.fusion`), bit-identical to ``execute_unit`` and
scattered into the cache under unchanged keys.  ``fuse="auto"``
(default) fuses cohorts of two or more units, ``"on"`` fuses every
fusable unit, ``"off"`` restores the pure per-unit path.  Only the
remaining *fallback* units (protocol, sharded, dynamics, or
non-cohorted singletons) are chunked — chunk sizing is computed over
that post-fusion miss count, never over the submitted total, so a
warm or mostly-fused campaign does not fan near-empty chunks to the
pool.

Observability: the engine opens a ``campaign.run`` span, counts
``campaign.cache.hits`` / ``campaign.cache.misses``, records per-unit
wall time into the ``campaign.unit.seconds`` histogram, and collects a
``campaign.unit`` span per computed unit (stamped with the worker PID)
that :meth:`CampaignResult.export_worker_spans` writes as JSONL in the
tracer's schema.  Fused cohorts are counted by ``campaign.fused.*`` /
``campaign.fallback.units`` and traced as ambient ``campaign.cohort``
spans instead — a fused unit never produces a worker-side
``campaign.unit`` span (there is no per-unit execution to trace), and
its ``campaign.unit.seconds`` observation is its equal share of the
cohort's wall time.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, IO, Iterable, Sequence, TypeVar

from repro.observability.instrumentation import (
    annotate,
    observe_value,
    record_counter,
    trace_span,
)
from repro.parallel.cache import NullCache, ResultCache
from repro.parallel.fusion import FUSE_MODES, execute_cohort, partition_pending
from repro.parallel.units import ExperimentUnit, execute_unit, unit_cache_key

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "CampaignStats",
    "default_chunk_size",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks per worker the scheduler aims for; >1 so uneven unit costs
#: rebalance, small enough that per-chunk IPC stays negligible.
OVERSUBSCRIPTION = 4


def _pool_context():
    """``fork`` where the platform offers it (cheap workers that inherit
    the warmed interpreter), ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def default_chunk_size(n_items: int, workers: int) -> int:
    """Chunk size giving each worker ~``OVERSUBSCRIPTION`` chunks."""
    if n_items <= 0:
        return 1
    workers = max(1, workers)
    return max(1, math.ceil(n_items / (workers * OVERSUBSCRIPTION)))


def _chunked(items: Sequence[T], size: int) -> list[Sequence[T]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------- generic pool map


def _apply_chunk(args: tuple[Callable, Sequence]) -> list:
    func, chunk = args
    return [func(item) for item in chunk]


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 0,
    chunk_size: int | None = None,
) -> list[R]:
    """``[func(x) for x in items]``, fanned across a process pool.

    ``func`` must be a module-level (picklable) function.  With
    ``workers <= 1`` this is exactly the list comprehension — no pool,
    no pickling — which is also the fallback the heavy benchmark
    drivers use when a box has a single core.  Results preserve input
    order either way.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(workers, len(items))
    if chunk_size is None:
        chunk_size = default_chunk_size(len(items), workers)
    chunks = _chunked(items, chunk_size)
    with _pool_context().Pool(processes=workers) as pool:
        nested = pool.map(_apply_chunk, [(func, chunk) for chunk in chunks])
    return [result for chunk in nested for result in chunk]


# ------------------------------------------------------- campaign engine


def _run_chunk(batch: list[tuple[int, dict]]) -> list[dict]:
    """Worker-side chunk executor: evaluate units, time and trace each.

    Runs in the worker process.  Spans are recorded on a private tracer
    (workers never see the parent's instrumentation) and shipped back
    as plain dicts in the JSONL schema.
    """
    from repro.observability.tracing import Tracer

    pid = os.getpid()
    tracer = Tracer()
    out: list[dict] = []
    for index, config in batch:
        unit = ExperimentUnit.from_config(config)
        start = time.perf_counter()
        with tracer.span(
            "campaign.unit",
            index=index,
            pid=pid,
            kind=unit.kind,
            scenario=unit.scenario,
            variant=unit.variant,
            seed=unit.seed,
        ):
            payload = execute_unit(unit)
        out.append(
            {
                "index": index,
                "payload": payload,
                "seconds": time.perf_counter() - start,
                "pid": pid,
            }
        )
    spans = [span.to_dict() for span in tracer.finished]
    for record, span in zip(out, spans):
        record["span"] = span
    return out


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return float("nan")
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class CampaignStats:
    """What one :meth:`CampaignEngine.run` cost."""

    n_units: int
    cache_hits: int
    cache_misses: int
    workers: int
    chunks: int
    wall_seconds: float
    unit_seconds: tuple[float, ...]
    #: Fusion accounting (1.9.0): how the cache misses were evaluated.
    #: ``fused_units + fallback_units == cache_misses`` always holds.
    fused_cohorts: int = 0
    fused_units: int = 0
    fallback_units: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of units served from the cache."""
        return self.cache_hits / self.n_units if self.n_units else 0.0

    @property
    def computed_seconds(self) -> float:
        """Total compute time across workers (not wall-clock)."""
        return float(sum(self.unit_seconds))

    @property
    def unit_p50(self) -> float:
        """Median per-unit compute latency (seconds; nan if all cached)."""
        return _quantile(sorted(self.unit_seconds), 0.50)

    @property
    def unit_p95(self) -> float:
        """95th-percentile per-unit compute latency (seconds)."""
        return _quantile(sorted(self.unit_seconds), 0.95)


@dataclass(frozen=True)
class CampaignResult:
    """Ordered unit payloads plus the campaign's cost accounting."""

    units: tuple[ExperimentUnit, ...]
    keys: tuple[str, ...]
    payloads: tuple[dict, ...]
    stats: CampaignStats
    worker_spans: tuple[dict, ...]

    def payload_for(self, unit: ExperimentUnit) -> dict:
        """The payload of one submitted unit (by value, not identity)."""
        return self.payloads[self.units.index(unit)]

    def export_worker_spans(self, destination: str | IO[str]) -> int:
        """Write per-worker ``campaign.unit`` spans as JSON Lines."""
        import json

        lines = "".join(
            json.dumps(span, sort_keys=True) + "\n" for span in self.worker_spans
        )
        if hasattr(destination, "write"):
            destination.write(lines)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(lines)
        return len(self.worker_spans)


class CampaignEngine:
    """Runs unit lists through the cache and (optionally) a worker pool.

    Parameters
    ----------
    workers:
        ``<= 1`` evaluates in-process (deterministically identical, no
        multiprocessing); ``n > 1`` fans missing units over ``n``
        processes.
    cache:
        A :class:`~repro.parallel.cache.ResultCache`, a path (string or
        ``Path``) to open one at, or ``None`` for no caching.
    reuse_cache:
        When ``False`` the engine still *writes* results but never
        reads them — every unit recomputes (the CLI's ``--no-resume``).
    chunk_size:
        Override the ``ceil(pending / (workers * 4))`` default.  Sizing
        is always over the *post-fusion fallback* misses — the units
        that actually go to the pool — never the submitted total.
    fuse:
        ``"auto"`` (default) evaluates cohorts of two or more
        homogeneous closed-form misses as single stacked broadcasts,
        ``"on"`` fuses every fusable miss (singletons included),
        ``"off"`` keeps the pure per-unit path.  Fused payloads are
        bit-identical to the per-unit ones and cached under the same
        keys, so the setting never changes results or cache behaviour
        — only how the misses are computed.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        cache: ResultCache | NullCache | str | os.PathLike | None = None,
        reuse_cache: bool = True,
        chunk_size: int | None = None,
        fuse: str = "auto",
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if fuse not in FUSE_MODES:
            raise ValueError(f"fuse must be one of {FUSE_MODES}, got {fuse!r}")
        self.workers = int(workers)
        if cache is None:
            cache = NullCache()
        elif isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.cache = cache
        self.reuse_cache = bool(reuse_cache)
        self.chunk_size = chunk_size
        self.fuse = fuse

    def run(self, units: Sequence[ExperimentUnit]) -> CampaignResult:
        """Evaluate every unit, serving cache hits and computing misses."""
        units = tuple(units)
        started = time.perf_counter()
        keys = tuple(unit_cache_key(unit) for unit in units)
        payloads: list[dict | None] = [None] * len(units)
        unit_seconds: list[float] = []
        worker_spans: list[dict] = []
        hits = 0

        with trace_span(
            "campaign.run",
            n_units=len(units),
            workers=self.workers,
            fuse=self.fuse,
        ):
            pending: list[tuple[int, ExperimentUnit]] = []
            for index, (unit, key) in enumerate(zip(units, keys)):
                cached = self.cache.get(key) if self.reuse_cache else None
                if cached is not None:
                    payloads[index] = cached
                    hits += 1
                    record_counter("campaign.cache.hits")
                else:
                    pending.append((index, unit))
            record_counter("campaign.cache.misses", len(pending))

            cohorts, fallback = partition_pending(pending, self.fuse)
            fused_units = sum(len(cohort) for cohort in cohorts)
            if cohorts:
                record_counter("campaign.fused.cohorts", len(cohorts))
                record_counter("campaign.fused.units", fused_units)
            if pending:
                record_counter("campaign.fallback.units", len(fallback))
            for cohort in cohorts:
                self._compute_cohort(cohort, keys, payloads, unit_seconds)

            chunks: list[Sequence[tuple[int, dict]]] = []
            if fallback:
                chunks = self._compute(
                    [(index, unit.as_config()) for index, unit in fallback],
                    units, keys, payloads, unit_seconds, worker_spans,
                )

        stats = CampaignStats(
            n_units=len(units),
            cache_hits=hits,
            cache_misses=len(units) - hits,
            workers=self.workers,
            chunks=len(chunks),
            wall_seconds=time.perf_counter() - started,
            unit_seconds=tuple(unit_seconds),
            fused_cohorts=len(cohorts),
            fused_units=fused_units,
            fallback_units=len(fallback),
        )
        return CampaignResult(
            units=units,
            keys=keys,
            payloads=tuple(payloads),  # type: ignore[arg-type]
            stats=stats,
            worker_spans=tuple(worker_spans),
        )

    # ------------------------------------------------------------ internal

    def _compute_cohort(
        self,
        cohort: list[tuple[int, ExperimentUnit]],
        keys: tuple[str, ...],
        payloads: list[dict | None],
        unit_seconds: list[float],
    ) -> None:
        """Evaluate one fused cohort in-process and scatter its results.

        The cohort's wall time is split equally across its units for
        the ``campaign.unit.seconds`` accounting — there is no per-unit
        execution to time individually.
        """
        members = [unit for _, unit in cohort]
        start = time.perf_counter()
        with trace_span(
            "campaign.cohort",
            units=len(members),
            variant=members[0].variant,
            n_machines=len(members[0].true_values),
        ):
            results = execute_cohort(members)
        share = (time.perf_counter() - start) / len(members)
        for (index, unit), payload in zip(cohort, results):
            payloads[index] = payload
            unit_seconds.append(share)
            observe_value("campaign.unit.seconds", share)
            self.cache.put(keys[index], payload, unit_config=unit.as_config())

    def _compute(
        self,
        pending: list[tuple[int, dict]],
        units: tuple[ExperimentUnit, ...],
        keys: tuple[str, ...],
        payloads: list[dict | None],
        unit_seconds: list[float],
        worker_spans: list[dict],
    ) -> list[Sequence[tuple[int, dict]]]:
        # Size pool work over what actually reaches the pool: the
        # post-fusion fallback misses, never the submitted total — a
        # warm or mostly-fused campaign must not fan near-empty chunks.
        workers = min(self.workers, len(pending))
        chunk_size = self.chunk_size or default_chunk_size(len(pending), workers)
        chunks = _chunked(pending, chunk_size)

        if workers <= 1:
            # In-process: same chunk walk, ambient tracer, no pool.
            results = [_run_chunk(list(chunk)) for chunk in chunks]
        else:
            with _pool_context().Pool(processes=workers) as pool:
                results = list(pool.imap_unordered(_run_chunk, chunks))

        for chunk_result in results:
            pids = sorted({record["pid"] for record in chunk_result})
            annotate("campaign.chunk", units=len(chunk_result), pids=pids)
            for record in chunk_result:
                index = record["index"]
                payloads[index] = record["payload"]
                unit_seconds.append(record["seconds"])
                observe_value("campaign.unit.seconds", record["seconds"])
                worker_spans.append(record["span"])
                self.cache.put(
                    keys[index],
                    record["payload"],
                    unit_config=units[index].as_config(),
                )
        return chunks
