"""Experiment units and their content-addressed cache keys.

A *unit* is the atom the campaign engine schedules: one
(seed x bid-profile x mechanism-variant) evaluation, either closed-form
(``kind="scenario"``) or over the discrete-event protocol
(``kind="protocol"``).  Units are plain frozen dataclasses so they
pickle cheaply across worker processes, and :func:`execute_unit` is a
**pure function** of the unit — the same unit always produces the same
payload, byte for byte, which is what makes both the parallel/serial
equivalence guarantee and the result cache sound.

The cache key is ``SHA-256(canonical JSON of the unit config + the
package version)``.  Canonicalisation (:func:`canonical_json`) sorts
dict keys, converts NumPy scalars and arrays to plain Python numbers
and lists, and normalises ``-0.0`` to ``0.0`` — so dict insertion
order and NumPy dtype width never change the key, while any change to
a result-affecting field always does.  Fields that cannot affect the
result (the seed and window of a closed-form unit) are excluded from
the canonical config, so equivalent units share one cache entry.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, fields

import numpy as np

__all__ = [
    "ExperimentUnit",
    "canonical_config",
    "canonical_json",
    "canonicalise",
    "execute_unit",
    "unit_cache_key",
]

_KINDS = ("scenario", "protocol")
_VARIANTS = ("observed", "declared", "vcg", "archer-tardos", "dynamics", "drift")


@dataclass(frozen=True)
class ExperimentUnit:
    """One schedulable experiment: a bid profile under one mechanism.

    Attributes
    ----------
    kind:
        ``"scenario"`` — closed-form mechanism evaluation;
        ``"protocol"`` — one seeded discrete-event protocol round.
    scenario:
        Label for grouping results (usually a Table 2 name).
    bid_factor, execution_factor:
        The manipulator's declared and actual behaviour, as multiples
        of its true value (Table 2 semantics).
    true_values:
        Per-machine true processing values ``t_i``.
    arrival_rate:
        Total job arrival rate ``R``.
    variant:
        Payment rule: ``observed`` / ``declared``
        (:class:`~repro.mechanism.VerificationMechanism`), ``vcg``,
        ``archer-tardos``, ``dynamics`` — iterated best response
        under the observed-compensation mechanism starting from the
        unit's bid profile, driven by the closed-form kernel
        (:class:`~repro.agents.game.BestResponseDynamics`) — or
        ``drift`` — a stale-bid drifting horizon scored in one stacked
        broadcast (:func:`repro.dynamic.drift.drift_sweep`), with the
        unit's bid profile as the round-0 declarations and the truth
        wandering for ``drift_rounds`` epochs at ``drift_sigma``.
    seed:
        RNG seed for protocol units (ignored by scenario units).
    manipulator:
        Index of the machine the factors apply to (C1 by default).
    manipulators:
        Optional *coalition*: a tuple of distinct machine indices that
        all apply the same (bid_factor, execution_factor) — the
        multi-liar / collusion patterns of the tournament
        (:mod:`repro.experiments.tournament`).  ``None`` (default)
        falls back to the single ``manipulator``; when set, the
        ``manipulator`` field is normalised to the coalition's first
        member and the tuple itself (sorted) joins the cache key, so
        every pre-existing single-manipulator key is preserved.
    duration:
        Job-generation window of a protocol unit (simulated seconds).
    execution:
        Job execution engine of a protocol unit (``"event"``,
        ``"batched"``, or ``"auto"``; see
        :func:`~repro.protocol.run_protocol`).  Campaigns default to
        ``"auto"`` so protocol units take the batched fast path.
    shards:
        With ``shards > 1``, a protocol unit runs through the sharded
        coordinator service
        (:class:`~repro.distributed.ShardedCoordinatorService`) in
        exact-aggregation serial mode, which is bit-identical to the
        single-coordinator path on the same seed — so the mechanism
        payload fields agree exactly; only ``total_messages`` differs
        (the aggregation tree's count instead of the per-agent message
        count, which is the point).
    drift_rounds, drift_sigma:
        Horizon length and per-epoch log-step of a ``drift`` unit's
        true-value random walk (ignored — and excluded from the cache
        key — for every other variant).
    """

    kind: str
    scenario: str
    bid_factor: float
    execution_factor: float
    true_values: tuple[float, ...]
    arrival_rate: float
    variant: str = "observed"
    seed: int = 0
    manipulator: int = 0
    duration: float = 200.0
    execution: str = "auto"
    shards: int = 1
    manipulators: tuple[int, ...] | None = None
    drift_rounds: int = 64
    drift_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if self.variant == "dynamics" and self.kind != "scenario":
            raise ValueError("the dynamics variant is closed-form only")
        if self.variant == "drift" and self.kind != "scenario":
            raise ValueError("the drift variant is closed-form only")
        if self.drift_rounds < 1:
            raise ValueError("drift_rounds must be at least 1")
        if self.drift_sigma < 0.0:
            raise ValueError("drift_sigma must be non-negative")
        values = tuple(float(t) for t in self.true_values)
        if len(values) < 2:
            raise ValueError("true_values needs at least two machines")
        if any(t <= 0.0 for t in values):
            raise ValueError("true_values must be strictly positive")
        object.__setattr__(self, "true_values", values)
        if self.bid_factor <= 0.0:
            raise ValueError("bid_factor must be positive")
        if self.execution_factor < 1.0:
            raise ValueError("execution_factor must be >= 1")
        if self.arrival_rate <= 0.0:
            raise ValueError("arrival_rate must be positive")
        if not 0 <= self.manipulator < len(values):
            raise ValueError("manipulator out of range")
        if self.manipulators is not None:
            coalition = tuple(sorted(int(i) for i in self.manipulators))
            if not coalition:
                raise ValueError("manipulators must name at least one machine")
            if len(set(coalition)) != len(coalition):
                raise ValueError("manipulators must be distinct")
            if not all(0 <= i < len(values) for i in coalition):
                raise ValueError("manipulators out of range")
            object.__setattr__(self, "manipulators", coalition)
            # Normalised so equal coalitions compare (and hash) equal
            # regardless of what the single-manipulator field said.
            object.__setattr__(self, "manipulator", coalition[0])
        if self.duration <= 0.0:
            raise ValueError("duration must be positive")
        from repro.protocol.execution import EXECUTION_MODES, resolve_execution

        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        # Normalised at construction: "auto" and the engine it picks can
        # only produce identical payloads, so they must compare equal,
        # share one cache entry, and survive the as_config round trip.
        object.__setattr__(self, "execution", resolve_execution(self.execution))
        if self.shards < 1:
            raise ValueError("shards must be at least 1")

    def as_config(self) -> dict:
        """The result-affecting fields, as a canonicalisable dict.

        Scenario units are deterministic closed forms, so their
        ``seed`` and ``duration`` are dropped: two such units that can
        only produce identical payloads share one cache key.
        """
        config = {
            "kind": self.kind,
            "scenario": self.scenario,
            "bid_factor": self.bid_factor,
            "execution_factor": self.execution_factor,
            "true_values": list(self.true_values),
            "arrival_rate": self.arrival_rate,
            "variant": self.variant,
            "manipulator": self.manipulator,
        }
        if self.manipulators is not None:
            # Included only for coalition units, so every pre-existing
            # single-manipulator cache key is preserved.
            config["manipulators"] = list(self.manipulators)
        if self.variant == "drift":
            # Drift sweeps are seeded closed forms: the seed shapes the
            # trajectory, so (unlike other scenario units) it joins the
            # key — conditionally, preserving all pre-existing keys.
            config["seed"] = self.seed
            config["drift_rounds"] = self.drift_rounds
            config["drift_sigma"] = self.drift_sigma
        if self.kind == "protocol":
            config["seed"] = self.seed
            config["duration"] = self.duration
            config["execution"] = self.execution  # already resolved
            if self.shards > 1:
                # Included only when sharded, so every pre-existing
                # cache key (and the sharded/monolithic identity of the
                # mechanism payload) is preserved.
                config["shards"] = self.shards
        return config

    @classmethod
    def from_config(cls, config: dict) -> "ExperimentUnit":
        """Rebuild a unit from :meth:`as_config` output (worker side)."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in config.items() if k in known}
        kwargs["true_values"] = tuple(kwargs["true_values"])
        if kwargs.get("manipulators") is not None:
            kwargs["manipulators"] = tuple(kwargs["manipulators"])
        return cls(**kwargs)


# --------------------------------------------------------- canonical form


def canonicalise(value: object) -> object:
    """Reduce ``value`` to a canonical JSON-compatible structure.

    Mappings are sorted by key, sequences become lists, NumPy arrays
    and scalars become plain Python numbers (dtype width is erased:
    ``np.int32(5)`` and ``np.int64(5)`` canonicalise identically), and
    negative zero is normalised so ``-0.0`` and ``0.0`` share a key.
    """
    if isinstance(value, dict):
        return {
            str(key): canonicalise(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, np.ndarray):
        return canonicalise(value.tolist())
    if isinstance(value, (list, tuple)):
        return [canonicalise(item) for item in value]
    if isinstance(value, np.generic):
        return canonicalise(value.item())
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError("unit configs must not contain NaN or infinity")
        return value + 0.0 if value != 0.0 else 0.0
    raise TypeError(f"cannot canonicalise {type(value).__name__} for a cache key")


def canonical_json(value: object) -> str:
    """Canonical compact JSON: the byte string the cache key hashes."""
    return json.dumps(
        canonicalise(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_config(unit: ExperimentUnit) -> dict:
    """Canonical form of a unit's result-affecting config."""
    return canonicalise(unit.as_config())  # type: ignore[return-value]


@functools.lru_cache(maxsize=65536)
def _canonical_config_bytes(unit: ExperimentUnit) -> bytes:
    """Memoized canonical-JSON encoding of a unit's config.

    Units are frozen (hashable), and campaigns hash the same unit once
    per cache probe plus once per store — the A26 bench measured the
    repeated canonicalisation at ~2/3 of the residual per-unit cost,
    so the bytes are computed once per distinct unit per process.
    """
    return canonical_json(unit.as_config()).encode("utf-8")


def unit_cache_key(unit: ExperimentUnit, *, version: str | None = None) -> str:
    """256-bit BLAKE2b hex key of the unit config plus package version.

    The version is part of the key so a new release never serves
    results computed by old code.  The hashed bytes are exactly
    ``canonical_json({"config": unit.as_config(), "version": version})``
    — the envelope is assembled around the memoized config bytes
    (``"config"`` sorts before ``"version"``, so splicing preserves the
    canonical form byte for byte; the key-stability test pins this).
    """
    if version is None:
        from repro import __version__ as version
    payload = (
        b'{"config":'
        + _canonical_config_bytes(unit)
        + b',"version":'
        + canonical_json(version).encode("utf-8")
        + b"}"
    )
    return hashlib.blake2b(payload, digest_size=32).hexdigest()


# -------------------------------------------------------------- execution


def _mechanism_for(variant: str):
    from repro.mechanism import (
        ArcherTardosMechanism,
        VCGMechanism,
        VerificationMechanism,
    )

    if variant in ("observed", "declared"):
        return VerificationMechanism(variant)
    if variant in ("dynamics", "drift"):
        # Dynamics units iterate best responses (and drift units score
        # stale-bid horizons) under the observed-compensation rule.
        return VerificationMechanism("observed")
    if variant == "vcg":
        return VCGMechanism()
    return ArcherTardosMechanism()


def _profile(unit: ExperimentUnit) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    true_values = np.asarray(unit.true_values, dtype=np.float64)
    bids = true_values.copy()
    executions = true_values.copy()
    liars = (
        list(unit.manipulators)
        if unit.manipulators is not None
        else [unit.manipulator]
    )
    bids[liars] *= unit.bid_factor
    executions[liars] *= unit.execution_factor
    return true_values, bids, executions


def _payload_from_outcome(outcome) -> dict:
    """JSON-safe per-unit result.

    Every float passes through ``repr`` on the way into JSON and back,
    which round-trips IEEE doubles exactly — a cached payload is
    bit-identical to a freshly computed one.
    """
    payments = outcome.payments
    return {
        "bids": outcome.allocation.bids.tolist(),
        "execution_values": outcome.execution_values.tolist(),
        "loads": outcome.loads.tolist(),
        "declared_latency": float(outcome.allocation.total_latency),
        "realised_latency": float(outcome.realised_latency),
        "compensation": payments.compensation.tolist(),
        "bonus": payments.bonus.tolist(),
        "valuation": payments.valuation.tolist(),
        "payment": payments.payment.tolist(),
        "utility": payments.utility.tolist(),
        "frugality_ratio": float(outcome.frugality_ratio),
    }


def _execute_scenario(unit: ExperimentUnit) -> dict:
    true_values, bids, executions = _profile(unit)
    mechanism = _mechanism_for(unit.variant)
    if unit.variant == "dynamics":
        return _execute_dynamics(unit, true_values, bids, mechanism)
    if unit.variant == "drift":
        return _execute_drift(unit, true_values, bids, mechanism)
    outcome = mechanism.run(
        bids, unit.arrival_rate, executions, true_values=true_values
    )
    return _payload_from_outcome(outcome)


def _execute_dynamics(
    unit: ExperimentUnit,
    true_values: np.ndarray,
    start_bids: np.ndarray,
    mechanism,
) -> dict:
    """Iterate best responses from the unit's profile, score the limit.

    The dynamics run through the closed-form kernel (every non-deviating
    machine executes as declared while agents adjust), then the final
    bid profile is scored with machines executing at capacity — the
    steady state the fixed point describes.
    """
    from repro.agents import BestResponseDynamics

    dynamics = BestResponseDynamics(
        mechanism, true_values, unit.arrival_rate, honest_execution=True
    )
    trace = dynamics.run(start_bids=start_bids)
    final_bids = trace.final_bids
    outcome = mechanism.run(
        final_bids, unit.arrival_rate, true_values, true_values=true_values
    )
    payload = _payload_from_outcome(outcome)
    payload.update(
        {
            "start_bids": start_bids.tolist(),
            "rounds": int(trace.rounds),
            "converged": bool(trace.converged),
            "max_drift_from_truth": float(trace.max_drift_from(true_values)),
        }
    )
    return payload


def _execute_drift(
    unit: ExperimentUnit,
    true_values: np.ndarray,
    stale_bids: np.ndarray,
    mechanism,
) -> dict:
    """Score a stale-bid drifting horizon as one stacked broadcast.

    The unit's bid profile is the round-0 declaration set; the truth
    then follows a seeded geometric random walk for ``drift_rounds``
    epochs while every round keeps routing on those stale bids
    (:func:`repro.dynamic.drift.drift_sweep`).  The payload summarises
    both the efficiency cost (latency degradation vs the per-round
    optimum) and the incentive pressure (best-response gains).
    """
    from repro.dynamic.drift import drift_sweep

    result = drift_sweep(
        true_values,
        unit.arrival_rate,
        rounds=unit.drift_rounds,
        sigma=unit.drift_sigma,
        seed=unit.seed,
        mechanism=mechanism,
        declared_bids=stale_bids,
    )
    return {
        "rounds": int(result.rounds),
        "sigma": float(result.sigma),
        "seed": int(unit.seed),
        "stale_bids": stale_bids.tolist(),
        "mean_degradation_pct": result.mean_degradation_pct,
        "max_degradation_pct": result.max_degradation_pct,
        "final_degradation_pct": float(result.degradation_pct[-1]),
        "degradation_pct": result.degradation_pct.tolist(),
        "mean_gain": result.mean_gain,
        "max_gain": result.max_gain,
        "mean_best_response_factor": float(
            result.best_response_factors.mean()
        ),
    }


def _execute_protocol(unit: ExperimentUnit) -> dict:
    from repro.agents import ManipulativeAgent, TruthfulAgent
    from repro.protocol import run_protocol

    truthful = unit.bid_factor == 1.0 and unit.execution_factor == 1.0
    agents = [TruthfulAgent(t) for t in unit.true_values]
    if not truthful:
        liars = (
            unit.manipulators
            if unit.manipulators is not None
            else (unit.manipulator,)
        )
        for liar in liars:
            agents[liar] = ManipulativeAgent(
                unit.true_values[liar],
                unit.bid_factor,
                unit.execution_factor,
            )
    mechanism = None if unit.variant == "observed" else _mechanism_for(unit.variant)
    if unit.shards > 1:
        return _execute_protocol_sharded(unit, agents, mechanism)
    result = run_protocol(
        agents,
        unit.arrival_rate,
        duration=unit.duration,
        mechanism=mechanism,
        rng=np.random.default_rng(unit.seed),
        execution=unit.execution,
    )

    payload = _payload_from_outcome(result.outcome)
    error = result.estimation_relative_error
    payload.update(
        {
            "jobs_routed": int(result.jobs_routed),
            "total_messages": int(result.network.total_messages),
            "simulated_time": float(result.simulated_time),
            "true_execution_values": result.true_execution_values.tolist(),
            "estimated_execution_values":
                result.estimated_execution_values.tolist(),
            "estimation_error": [
                None if e != e else float(e) for e in error.tolist()
            ],
        }
    )
    return payload


def _execute_protocol_sharded(unit: ExperimentUnit, agents, mechanism) -> dict:
    """Protocol unit through the sharded service (exact/serial mode).

    Bit-identical mechanism payload to the single-coordinator path on
    the same seed — only ``total_messages`` differs, reporting the
    aggregation tree's cross-shard count instead of the monolithic
    per-agent message count.
    """
    from repro.distributed.service import ShardedCoordinatorService

    service = ShardedCoordinatorService(
        agents,
        unit.arrival_rate,
        shards=unit.shards,
        mechanism=mechanism,
        duration=unit.duration,
        deterministic_service=False,
        rng=np.random.default_rng(unit.seed),
    )
    try:
        shard_round = service.run_round()
    finally:
        service.close()
    outcome = shard_round.outcome
    assert outcome is not None  # exact mode prices at the root
    true_values = np.array([agent.execution_value() for agent in agents])
    estimates = shard_round.estimated_execution_values
    assert estimates is not None
    defined = (true_values > 0.0) & (outcome.loads > 0.0)
    error = np.full(true_values.shape, np.nan)
    np.divide(
        np.abs(estimates - true_values), true_values, out=error, where=defined
    )
    payload = _payload_from_outcome(outcome)
    payload.update(
        {
            "jobs_routed": int(shard_round.jobs_routed),
            "total_messages": int(shard_round.total_messages),
            "simulated_time": float(shard_round.simulated_time),
            "true_execution_values": true_values.tolist(),
            "estimated_execution_values": estimates.tolist(),
            "estimation_error": [
                None if e != e else float(e) for e in error.tolist()
            ],
        }
    )
    return payload


def execute_unit(unit: ExperimentUnit) -> dict:
    """Evaluate one unit; pure, deterministic, and process-independent.

    Scenario units run the closed-form mechanism; protocol units run
    one full discrete-event round seeded from ``unit.seed``.  The
    returned payload contains only JSON-safe scalars and lists, so it
    survives both pickling to a worker and a cache round-trip without
    losing a bit.
    """
    if unit.kind == "scenario":
        return _execute_scenario(unit)
    return _execute_protocol(unit)
