"""Mean-time-to-recovery: the remediation loop's headline metric.

A resilience layer that merely *survives* faults still pays for them:
every round a degraded machine stays in rotation, the realised latency
``L = Σ t̂_i x_i²`` everyone's bonus is priced against stays inflated
above the latency the allocation promised (``Σ b_i x_i²``), and the
mechanism is pricing a world that does not exist.  What remediation
buys is *shorter outages*, and MTTR is how that is measured:

    MTTR = mean number of rounds from fault onset until the system is
    **recovered** — a non-voided round whose *verification gap*
    (realised / allocation-promised latency) is back within
    ``tolerance`` of 1, i.e. every serving machine again executes as
    priced.  Voided rounds count as degraded: routing nothing is not
    recovery.

The gap — not raw latency — is the right recovery criterion for this
mechanism: quarantining a degraded machine concentrates load on fewer
machines and *raises* absolute latency, yet it restores exactly what
the paper's verification step needs — a fleet whose observed execution
matches its declarations.

:func:`measure_mttr` runs the same seeded degradation scenarios twice —
remediation on and off — through the chaos harness with full invariant
checking, so the comparison is deterministic, replayable, and safe by
construction: a run in which an applied action broke an invariant
reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.agents.behaviors import TruthfulAgent
from repro.remediation.pipeline import RemediationConfig, RemediationPipeline
from repro.resilience.chaos import (
    ChaosHarness,
    ChaosReport,
    FaultPlan,
    MachineFault,
    RoundFaults,
)
from repro.resilience.quarantine import QuarantinePolicy
from repro.resilience.supervisor import RoundSupervisor

__all__ = [
    "DegradationScenario",
    "ScenarioRun",
    "MTTRComparison",
    "default_scenarios",
    "scenario_fault_plan",
    "run_scenario",
    "measure_mttr",
]


@dataclass(frozen=True)
class DegradationScenario:
    """One seeded degradation story: healthy → fault onset → (recovery).

    The fleet runs clean for ``onset`` rounds (establishing the latency
    baseline), then machine ``machine_index`` misbehaves with
    ``fault_kind`` for ``fault_rounds`` consecutive rounds, then the
    fault clears and the run continues to ``n_rounds`` total.
    """

    name: str
    fault_kind: str = "slow_execution"
    machine_index: int = 0
    slowdown: float = 3.0
    onset: int = 3
    fault_rounds: int = 3
    n_rounds: int = 16
    n_machines: int = 4
    arrival_rate: float = 10.0
    tolerance: float = 0.10
    #: Consecutive failures before the *organic* circuit breaker trips;
    #: the remediation-off arm has only this defence.
    failure_threshold: int = 3

    def __post_init__(self) -> None:
        if self.onset < 1:
            raise ValueError("onset must be at least 1 (the baseline window)")
        if self.fault_rounds < 1:
            raise ValueError("fault_rounds must be at least 1")
        if self.n_rounds <= self.onset + self.fault_rounds:
            raise ValueError("n_rounds must extend past the fault window")
        if not 0 <= self.machine_index < self.n_machines:
            raise ValueError("machine_index out of range")


@dataclass
class ScenarioRun:
    """One scenario execution (remediation on *or* off)."""

    scenario: str
    remediation: bool
    baseline_latency: float
    #: Per-round verification gap (realised / promised latency), or
    #: ``None`` for voided rounds.
    gaps: list[float | None] = field(default_factory=list)
    degraded_rounds: int = 0
    recovery_round: int | None = None
    mttr_rounds: float = float("inf")
    violations: int = 0
    actions_applied: int = 0
    actions_rejected: int = 0
    report: ChaosReport | None = None

    @property
    def recovered(self) -> bool:
        """Whether the run ever returned to the baseline envelope."""
        return self.recovery_round is not None


@dataclass
class MTTRComparison:
    """Remediation-on vs -off across a suite of scenarios."""

    runs_on: list[ScenarioRun] = field(default_factory=list)
    runs_off: list[ScenarioRun] = field(default_factory=list)

    @property
    def mttr_on(self) -> float:
        """Mean MTTR (rounds) with remediation enabled."""
        return float(np.mean([r.mttr_rounds for r in self.runs_on]))

    @property
    def mttr_off(self) -> float:
        """Mean MTTR (rounds) with remediation disabled."""
        return float(np.mean([r.mttr_rounds for r in self.runs_off]))

    @property
    def improvement(self) -> float:
        """MTTR-off / MTTR-on (≥ 2 is the acceptance gate)."""
        if self.mttr_on <= 0.0:
            return float("inf")
        return self.mttr_off / self.mttr_on

    @property
    def violations_from_actions(self) -> int:
        """Invariant violations across every remediation-on run."""
        return sum(r.violations for r in self.runs_on)


def default_scenarios() -> list[DegradationScenario]:
    """The A23 scenario suite (see EXPERIMENTS.md)."""
    return [
        # A machine silently executes 3x slower than declared; CUSUM
        # fires each round, but the organic circuit needs
        # failure_threshold consecutive alert rounds to trip.
        DegradationScenario("creeping-slowdown", fault_kind="slow_execution"),
        # A machine keeps bidding but never reports; every faulted
        # round ends with it withheld (paid zero, imputed).
        DegradationScenario("silent-reporter", fault_kind="withhold_report"),
        # A sharper slowdown on a larger fleet.
        DegradationScenario(
            "hard-slowdown",
            fault_kind="slow_execution",
            slowdown=4.0,
            n_machines=6,
            machine_index=2,
        ),
    ]


def scenario_fault_plan(
    scenario: DegradationScenario, machine_names: Sequence[str]
) -> FaultPlan:
    """Expand a scenario into a deterministic per-round fault schedule."""
    target = machine_names[scenario.machine_index]
    if scenario.fault_kind == "slow_execution":
        fault = MachineFault("slow_execution", slowdown=scenario.slowdown)
    elif scenario.fault_kind == "withhold_report":
        # count must exhaust every per-round retry, or the report lands
        # on a retry and the fault heals itself.
        fault = MachineFault("withhold_report", count=10)
    elif scenario.fault_kind == "withhold_bid":
        fault = MachineFault("withhold_bid", count=10)
    else:
        raise ValueError(f"unsupported scenario fault kind {scenario.fault_kind!r}")
    rounds = []
    for index in range(scenario.n_rounds):
        in_window = scenario.onset <= index < scenario.onset + scenario.fault_rounds
        rounds.append(
            RoundFaults(machine_faults={target: fault} if in_window else {})
        )
    return FaultPlan(rounds)


def _build_supervisor(
    scenario: DegradationScenario, *, remediation: bool, seed: int
) -> RoundSupervisor:
    agents = [
        TruthfulAgent(1.0 + 0.25 * k) for k in range(scenario.n_machines)
    ]
    pipeline = (
        RemediationPipeline(RemediationConfig(shadow_seed=seed))
        if remediation
        else None
    )
    return RoundSupervisor(
        agents,
        scenario.arrival_rate,
        quarantine=QuarantinePolicy(failure_threshold=scenario.failure_threshold),
        rng=np.random.default_rng(seed),
        execution="batched",
        remediation=pipeline,
    )


def run_scenario(
    scenario: DegradationScenario, *, remediation: bool, seed: int = 0
) -> ScenarioRun:
    """Run one scenario once; score MTTR via the verification gap."""
    supervisor = _build_supervisor(scenario, remediation=remediation, seed=seed)
    plan = scenario_fault_plan(scenario, supervisor.machine_names)
    harness = ChaosHarness(supervisor, plan, stop_on_violation=False)
    report = harness.run()

    gaps: list[float | None] = []
    realised: list[float] = []
    for r in report.rounds:
        if r.voided or r.outcome is None:
            gaps.append(None)
            continue
        promised = float(r.outcome.allocation.total_latency)
        gaps.append(
            float(r.outcome.realised_latency) / promised
            if promised > 0.0
            else None
        )
        realised.append(float(r.outcome.realised_latency))
    baseline = (
        float(np.mean(realised[: scenario.onset]))
        if realised
        else float("inf")
    )
    budget = 1.0 + scenario.tolerance

    recovery_round: int | None = None
    degraded = 0
    for index in range(scenario.onset, scenario.n_rounds):
        gap = gaps[index]
        if gap is not None and gap <= budget:
            recovery_round = index
            break
        degraded += 1

    run = ScenarioRun(
        scenario=scenario.name,
        remediation=remediation,
        baseline_latency=baseline,
        gaps=gaps,
        degraded_rounds=degraded,
        recovery_round=recovery_round,
        mttr_rounds=float(degraded) if recovery_round is not None else float("inf"),
        violations=len(report.violations),
        report=report,
    )
    if remediation and supervisor.remediation is not None:
        history = supervisor.remediation.history
        run.actions_applied = sum(len(h.applied) for h in history)
        run.actions_rejected = sum(len(h.rejected) for h in history)
    return run


def measure_mttr(
    scenarios: Sequence[DegradationScenario] | None = None, *, seed: int = 0
) -> MTTRComparison:
    """Run every scenario remediation-on and -off; aggregate MTTR."""
    if scenarios is None:
        scenarios = default_scenarios()
    comparison = MTTRComparison()
    for scenario in scenarios:
        comparison.runs_on.append(
            run_scenario(scenario, remediation=True, seed=seed)
        )
        comparison.runs_off.append(
            run_scenario(scenario, remediation=False, seed=seed)
        )
    return comparison
