"""Stage 1 of the remediation pipeline: signals → typed incidents.

The resilience layer already *produces* every signal a self-healing
loop needs — CUSUM slowdown alerts (``protocol/monitoring.py``),
circuit-breaker trips (``resilience/quarantine.py``), mechanism
invariant violations (``resilience/invariants.py``), and the retry
counters that spike when links drop messages (``protocol/faults.py``
via the supervisor's backoff loop).  What it lacks is a common shape:
each signal lives in a different object with different semantics.

An :class:`Incident` is that common shape: one typed, self-contained
record of *something went wrong in round k*, carrying enough evidence
(the verified execution estimate, the trip reason, the retry baseline)
for the proposer to choose a candidate action without reaching back
into live supervisor state.  The :class:`IncidentDetector` adapts one
:class:`~repro.resilience.RoundResult` per round into a list of
incidents; it is stateful only for the message-loss baseline (an EMA
of per-round retry counts, so a *spike* is judged against recent
history rather than an absolute constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.observability.instrumentation import annotate, record_counter
from repro.resilience.invariants import InvariantViolation
from repro.resilience.quarantine import CircuitState, QuarantinePolicy
from repro.resilience.supervisor import RoundResult

__all__ = ["INCIDENT_KINDS", "Incident", "IncidentDetector"]

#: The incident taxonomy, in rough order of increasing gravity.
INCIDENT_KINDS = (
    "message_loss",
    "unverified",
    "slowdown",
    "circuit_trip",
    "invariant",
)


@dataclass(frozen=True)
class Incident:
    """One detected anomaly in one supervised round.

    Attributes
    ----------
    kind:
        One of :data:`INCIDENT_KINDS`.
    round_index:
        The supervised round the evidence comes from.
    machine:
        The implicated machine, or ``None`` for round-level incidents
        (message-loss spikes, invariant violations).
    severity:
        A [0, 1] urgency score used by the risk scheduler as a
        tie-break; invariant violations are always 1.0.
    evidence:
        Kind-specific facts frozen at detection time (declared bid,
        verified estimate, trip reason, retry counts, ...).
    """

    kind: str
    round_index: int
    machine: str | None = None
    severity: float = 0.5
    evidence: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(f"kind must be one of {INCIDENT_KINDS}")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    def __str__(self) -> str:
        where = self.machine if self.machine is not None else "<round>"
        return f"[{self.kind}] round {self.round_index} {where}"


class IncidentDetector:
    """Adapt per-round resilience signals into typed incidents.

    Parameters
    ----------
    loss_spike_factor:
        A round's retry count must exceed this multiple of the EMA
        baseline to count as a message-loss spike.
    loss_spike_min:
        ... and also exceed this absolute floor, so the first mildly
        lossy round of a quiet campaign does not alarm.
    ema_alpha:
        EMA weight of the newest round in the retry baseline.
    """

    def __init__(
        self,
        *,
        loss_spike_factor: float = 3.0,
        loss_spike_min: int = 4,
        ema_alpha: float = 0.3,
    ) -> None:
        if loss_spike_factor <= 1.0:
            raise ValueError("loss_spike_factor must exceed 1")
        if loss_spike_min < 1:
            raise ValueError("loss_spike_min must be at least 1")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.loss_spike_factor = float(loss_spike_factor)
        self.loss_spike_min = int(loss_spike_min)
        self.ema_alpha = float(ema_alpha)
        self._retry_baseline = 0.0

    # ------------------------------------------------------------ scan

    def scan(
        self,
        result: RoundResult,
        quarantine: QuarantinePolicy,
        violations: Sequence[InvariantViolation] = (),
    ) -> list[Incident]:
        """All incidents evidenced by one completed round."""
        incidents: list[Incident] = []
        incidents.extend(self._slowdowns(result))
        incidents.extend(self._unverified(result))
        incidents.extend(self._circuit_trips(result, quarantine))
        incidents.extend(self._invariants(result, violations))
        loss = self._message_loss(result)
        if loss is not None:
            incidents.append(loss)
        for incident in incidents:
            record_counter("remediation.incidents", kind=incident.kind)
            annotate(
                "remediation.incident",
                kind=incident.kind,
                machine=incident.machine or "<round>",
            )
        return incidents

    # ------------------------------------------------------- per signal

    def _slowdowns(self, result: RoundResult) -> list[Incident]:
        """CUSUM alerts, enriched with the round's verified estimates."""
        if not result.alerts or result.outcome is None:
            return []
        order = list(result.loads)
        declared = dict(zip(order, result.outcome.allocation.bids))
        estimated = dict(zip(order, result.outcome.execution_values))
        incidents = []
        for name in result.alerts:
            bid = float(declared.get(name, 0.0))
            estimate = float(estimated.get(name, bid))
            factor = estimate / bid if bid > 0.0 else 1.0
            incidents.append(
                Incident(
                    kind="slowdown",
                    round_index=result.index,
                    machine=name,
                    severity=min(1.0, 0.5 + 0.25 * max(0.0, factor - 1.0)),
                    evidence={
                        "declared": bid,
                        "estimated": estimate,
                        "slowdown_factor": factor,
                    },
                )
            )
        return incidents

    def _unverified(self, result: RoundResult) -> list[Incident]:
        """Machines that executed but withheld their completion report.

        The mechanism imputes their execution value
        (``missing_report_factor`` times the bid) and pays them
        nothing, but their *work* this round is unverifiable — the one
        condition the paper's mechanism cannot price.  One withheld
        round is a strong signal on its own, stronger than the generic
        missed-deadline failure streak the circuit breaker counts.
        """
        if not result.withheld or result.outcome is None:
            return []
        order = list(result.loads)
        declared = dict(zip(order, result.outcome.allocation.bids))
        imputed = dict(zip(order, result.outcome.execution_values))
        return [
            Incident(
                kind="unverified",
                round_index=result.index,
                machine=name,
                severity=0.7,
                evidence={
                    "declared": float(declared.get(name, 0.0)),
                    "imputed": float(imputed.get(name, 0.0)),
                },
            )
            for name in result.withheld
        ]

    def _circuit_trips(
        self, result: RoundResult, quarantine: QuarantinePolicy
    ) -> list[Incident]:
        """Participants whose circuit is open *after* this round.

        A machine that entered the round admitted and ends it OPEN
        tripped on this round's outcome — exactly the moment a
        remediation decision (back it with a reweight, or forgive a
        network-caused trip) is due.
        """
        incidents = []
        for name in result.participants:
            if quarantine.state_of(name) is not CircuitState.OPEN:
                continue
            health = quarantine.health_of(name)
            incidents.append(
                Incident(
                    kind="circuit_trip",
                    round_index=result.index,
                    machine=name,
                    severity=min(1.0, 0.4 + 0.15 * health.times_opened),
                    evidence={
                        "reason": health.last_failure_reason or "unknown",
                        "reputation": health.reputation,
                        "times_opened": health.times_opened,
                        "cooldown": health.current_cooldown,
                    },
                )
            )
        return incidents

    def _invariants(
        self, result: RoundResult, violations: Sequence[InvariantViolation]
    ) -> list[Incident]:
        return [
            Incident(
                kind="invariant",
                round_index=result.index,
                machine=None,
                severity=1.0,
                evidence={
                    "invariant": violation.invariant,
                    "detail": violation.detail,
                },
            )
            for violation in violations
        ]

    def _message_loss(self, result: RoundResult) -> Incident | None:
        """Retry spike vs the EMA baseline of recent rounds."""
        retries = result.bid_retries + result.report_retries
        baseline = self._retry_baseline
        self._retry_baseline += self.ema_alpha * (retries - self._retry_baseline)
        if retries < self.loss_spike_min:
            return None
        if retries <= self.loss_spike_factor * max(baseline, 1.0):
            return None
        return Incident(
            kind="message_loss",
            round_index=result.index,
            machine=None,
            severity=0.4,
            evidence={
                "retries": retries,
                "baseline": baseline,
                "withheld": tuple(result.withheld),
                "excluded": tuple(result.excluded),
            },
        )
