"""Stage 4 of the remediation pipeline: risk, journal, at-most-once apply.

Applying a remediation action is itself a mutation that can be
interrupted — the process can die between mutating the quarantine
policy and acknowledging the mutation.  The scheduler therefore treats
the action queue exactly like the coordinator treats payments
(:mod:`repro.resilience.checkpoint`): a **write-ahead journal** of
serialised records, appended at every status transition:

``proposed → verified | rejected``, then for verified actions
``applying → applied | rolled_back``, with one extra terminal status —
``abandoned`` — written by the *resume* path for any action whose last
journaled status is ``applying``.  An ``applying`` record with no
terminal successor means the process died somewhere between apply and
ack; whether the mutation landed is unknowable from the journal alone,
so re-applying would risk double application.  At-most-once semantics
resolve the ambiguity in the safe direction: never re-apply, journal
``abandoned``, and let the next detection cycle re-propose the repair
from fresh evidence if it is still needed.

The journal stores serialised JSON lines (like
:class:`~repro.resilience.CheckpointStore`, anything that would not
survive a real restart fails loudly in tests) and round-trips through
``to_json``/``from_json`` with a schema-version field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.observability.instrumentation import annotate, record_counter
from repro.remediation.actions import ActionApplier, RemediationAction
from repro.remediation.shadow import ShadowVerdict

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.supervisor import RoundSupervisor

__all__ = [
    "SCHEMA_VERSION",
    "STATUSES",
    "JournalRecord",
    "ActionJournal",
    "RiskScorer",
    "SchedulerCrash",
    "RemediationScheduler",
]

#: Journal serialisation format version; bump on incompatible change.
SCHEMA_VERSION = 1

#: Legal record statuses, in lifecycle order.
STATUSES = (
    "proposed",
    "verified",
    "rejected",
    "applying",
    "applied",
    "rolled_back",
    "abandoned",
)

#: Statuses after which an action's lifecycle is over.
TERMINAL_STATUSES = ("rejected", "applied", "rolled_back", "abandoned")


@dataclass(frozen=True)
class JournalRecord:
    """One status transition of one action."""

    sequence: int
    action_id: str
    status: str
    action: Mapping[str, object] = field(default_factory=dict)
    risk: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}")

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (one journal line)."""
        return {
            "sequence": self.sequence,
            "action_id": self.action_id,
            "status": self.status,
            "action": dict(self.action),
            "risk": self.risk,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JournalRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            sequence=int(payload["sequence"]),
            action_id=str(payload["action_id"]),
            status=str(payload["status"]),
            action=dict(payload.get("action", {})),  # type: ignore[arg-type]
            risk=float(payload.get("risk", 0.0)),
            detail=str(payload.get("detail", "")),
        )


class ActionJournal:
    """Append-only WAL of action status transitions.

    Records are stored *serialised* (JSON lines), mirroring
    :class:`~repro.resilience.CheckpointStore`: every append round-trips
    through JSON so live objects cannot leak into the durable record.
    """

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._sequence = 0

    def append(
        self,
        action: RemediationAction,
        status: str,
        *,
        risk: float = 0.0,
        detail: str = "",
    ) -> JournalRecord:
        """Journal one status transition and return the record."""
        record = JournalRecord(
            sequence=self._sequence,
            action_id=action.action_id,
            status=status,
            action=action.to_dict(),
            risk=float(risk),
            detail=detail,
        )
        self._sequence += 1
        self._lines.append(json.dumps(record.to_dict()))
        record_counter("remediation.journal_appends", status=status)
        return record

    def records(self) -> list[JournalRecord]:
        """All records, oldest first (deserialised from storage)."""
        return [JournalRecord.from_dict(json.loads(line)) for line in self._lines]

    def last_status(self) -> dict[str, str]:
        """Latest journaled status per action id."""
        latest: dict[str, str] = {}
        for record in self.records():
            latest[record.action_id] = record.status
        return latest

    def __len__(self) -> int:
        return len(self._lines)

    # ------------------------------------------------------- persistence

    def to_json(self) -> str:
        """Serialise the whole journal (with a schema-version field)."""
        return json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "records": [json.loads(line) for line in self._lines],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ActionJournal":
        """Rebuild a journal persisted by :meth:`to_json`."""
        raw = json.loads(payload)
        version = raw.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported journal schema version {version!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        journal = cls()
        for entry in raw["records"]:
            record = JournalRecord.from_dict(entry)  # validates status
            journal._lines.append(json.dumps(record.to_dict()))
            journal._sequence = max(journal._sequence, record.sequence + 1)
        return journal


class RiskScorer:
    """Order verified actions so the safest repairs land first.

    Risk is a base weight per action kind (how invasive the mutation
    is) plus the shadow-predicted change in the verification gap — an
    action whose dry run *shrank* the gap scores below its base
    weight.  Lower is safer; the scheduler drains in ascending order.
    """

    BASE_WEIGHTS = {
        "readmit": 0.2,
        "reset_circuit": 0.3,
        "sharpen_detector": 0.4,
        "reweight": 0.5,
        "requarantine": 0.6,
        "void_round": 1.0,
    }

    def score(self, action: RemediationAction, verdict: ShadowVerdict) -> float:
        """Risk of one verified action (lower drains first)."""
        base = self.BASE_WEIGHTS.get(action.kind, 1.0)
        baseline = verdict.baseline_excess
        predicted = verdict.predicted_excess
        if predicted < float("inf") and baseline < float("inf"):
            base += predicted - baseline
        return base


class SchedulerCrash(RuntimeError):
    """Injected scheduler failure: the process died between apply and ack."""


class RemediationScheduler:
    """Drain verified actions through the journal, at most once each.

    The drain loop for each pending action is::

        journal "applying"  →  apply  →  post-apply check  →
            journal "applied"           (clean)
            rollback + journal "rolled_back"   (check failed)

    with ``fail_after_applies`` as the chaos hook that kills the
    process *between* the apply and its acknowledging journal write —
    the exact window the resume path must handle.
    """

    def __init__(
        self,
        journal: ActionJournal | None = None,
        *,
        scorer: RiskScorer | None = None,
        applier: ActionApplier | None = None,
        fail_after_applies: int | None = None,
    ) -> None:
        self.journal = journal if journal is not None else ActionJournal()
        self.scorer = scorer if scorer is not None else RiskScorer()
        self.applier = applier if applier is not None else ActionApplier()
        self.fail_after_applies = fail_after_applies
        self._applies = 0
        #: action_id -> (action, risk) awaiting a drain.
        self._pending: dict[str, tuple[RemediationAction, float]] = {}

    # ------------------------------------------------------------ intake

    def submit(self, action: RemediationAction, verdict: ShadowVerdict) -> float:
        """Queue one shadow-accepted action; returns its risk score."""
        risk = self.scorer.score(action, verdict)
        self.journal.append(action, "proposed", risk=risk, detail=action.reason)
        self.journal.append(action, "verified", risk=risk, detail=verdict.reason)
        self._pending[action.action_id] = (action, risk)
        return risk

    def reject(self, action: RemediationAction, verdict: ShadowVerdict) -> None:
        """Journal a shadow-rejected action (it never becomes pending)."""
        self.journal.append(action, "proposed", detail=action.reason)
        self.journal.append(action, "rejected", detail=verdict.reason)
        record_counter("remediation.actions_rejected", kind=action.kind)

    @property
    def pending(self) -> list[RemediationAction]:
        """Actions verified but not yet drained, safest first."""
        return [
            action
            for action, _ in sorted(self._pending.values(), key=lambda p: p[1])
        ]

    # ------------------------------------------------------------- drain

    def drain(self, supervisor: "RoundSupervisor") -> list[RemediationAction]:
        """Apply every pending action in ascending risk order.

        Returns the actions that ended ``applied``.  Raises
        :class:`SchedulerCrash` mid-drain when the chaos hook fires;
        the journal then holds an unacknowledged ``applying`` record
        for :meth:`resume` to find.
        """
        applied: list[RemediationAction] = []
        for action in self.pending:
            _, risk = self._pending[action.action_id]
            self.journal.append(action, "applying", risk=risk)
            undo = self.applier.apply(supervisor, action)
            self._applies += 1
            if (
                self.fail_after_applies is not None
                and self._applies >= self.fail_after_applies
            ):
                raise SchedulerCrash(
                    f"scheduler died after {self._applies} applies, "
                    f"before acknowledging {action.action_id}"
                )
            problems = self.applier.post_apply_check(supervisor)
            del self._pending[action.action_id]
            if problems:
                self.applier.rollback(supervisor, undo)
                self.journal.append(
                    action, "rolled_back", risk=risk, detail="; ".join(problems)
                )
                annotate(
                    "remediation.rolled_back",
                    action=action.action_id,
                    problems="; ".join(problems),
                )
                continue
            self.journal.append(action, "applied", risk=risk)
            applied.append(action)
        return applied

    # ------------------------------------------------------------ resume

    @classmethod
    def resume(
        cls,
        journal: ActionJournal,
        *,
        scorer: RiskScorer | None = None,
        applier: ActionApplier | None = None,
    ) -> "RemediationScheduler":
        """Rebuild a scheduler from a journal after a crash.

        Per action (by latest journaled status):

        * ``applying`` — the crash window: whether the mutation landed
          is unknowable, so the action is journaled ``abandoned`` and
          **never re-applied** (at-most-once);
        * ``verified`` — safely re-queued for the next drain (its risk
          is recovered from the journal record);
        * any terminal status — left alone.
        """
        scheduler = cls(journal, scorer=scorer, applier=applier)
        latest: dict[str, JournalRecord] = {}
        for record in journal.records():
            latest[record.action_id] = record
        for action_id, record in latest.items():
            action = RemediationAction.from_dict(record.action)
            if record.status == "applying":
                journal.append(
                    action,
                    "abandoned",
                    risk=record.risk,
                    detail="crash between apply and ack; not re-applied",
                )
                record_counter("remediation.actions_abandoned")
                annotate("remediation.abandoned", action=action_id)
            elif record.status == "verified":
                scheduler._pending[action_id] = (action, record.risk)
        return scheduler
