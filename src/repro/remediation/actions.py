"""Stages 2 and 4b of the remediation pipeline: propose and apply.

The :class:`ActionProposer` maps each :class:`~repro.remediation.Incident`
to candidate :class:`RemediationAction`\\ s — *candidates* because
nothing here touches live state: every proposal must first survive the
shadow verifier (:mod:`repro.remediation.shadow`) and the risk-ranked,
journaled scheduler (:mod:`repro.remediation.journal`) before the
:class:`ActionApplier` finally mutates the supervisor.

The action vocabulary is deliberately small and incentive-safe: each
action adjusts *supervision* state (circuit breakers, effective
declared values, detector calibration, round gating), never the
mechanism's pricing rule itself — so the paper's payment and
truthfulness structure is untouched by any remediation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.observability.instrumentation import annotate, record_counter
from repro.remediation.incidents import Incident
from repro.resilience.quarantine import CircuitState, MachineHealth

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.supervisor import RoundSupervisor

__all__ = [
    "ACTION_KINDS",
    "RemediationAction",
    "ActionProposer",
    "ActionUndo",
    "ActionApplier",
]

#: Everything the pipeline knows how to do, least to most disruptive.
ACTION_KINDS = (
    "readmit",
    "reset_circuit",
    "sharpen_detector",
    "reweight",
    "requarantine",
    "void_round",
)

#: Minimum verified-vs-declared slowdown factor before a reweight is
#: worth proposing: tiny estimation noise should not rewrite bids.
_REWEIGHT_MIN_FACTOR = 1.25

#: Slowdown factor above which a slowdown incident also sharpens the
#: CUSUM detector (the machine blew far past its declaration, so the
#: current threshold is too lenient).
_SEVERE_SLOWDOWN = 2.0

#: Multiplier applied to ``detector_threshold`` by sharpen_detector,
#: and the floor it will never cross.
_SHARPEN_RATIO = 0.75
_THRESHOLD_FLOOR = 2.0


@dataclass(frozen=True)
class RemediationAction:
    """One candidate repair, fully described by plain values.

    Attributes
    ----------
    kind:
        One of :data:`ACTION_KINDS`.
    machine:
        Target machine, or ``None`` for round-level actions
        (``void_round``, ``sharpen_detector``).
    factor:
        Kind-specific magnitude: the verified/declared slowdown ratio
        for ``reweight``, the threshold multiplier for
        ``sharpen_detector``; unused (1.0) otherwise.
    reason:
        Human-readable justification, journaled verbatim.
    incident_kind:
        The incident kind that motivated this action.
    round_index:
        The round whose evidence motivated this action; part of the
        identity, so re-detecting the same problem in a later round
        proposes a *new* action rather than colliding in the journal.
    """

    kind: str
    machine: str | None = None
    factor: float = 1.0
    reason: str = ""
    incident_kind: str = ""
    round_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"kind must be one of {ACTION_KINDS}")
        if self.factor <= 0.0:
            raise ValueError("factor must be positive")

    @property
    def action_id(self) -> str:
        """Stable identity used by the journal's at-most-once ledger."""
        return f"{self.round_index}:{self.kind}:{self.machine or '*'}"

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for journaling."""
        return {
            "kind": self.kind,
            "machine": self.machine,
            "factor": self.factor,
            "reason": self.reason,
            "incident_kind": self.incident_kind,
            "round_index": self.round_index,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RemediationAction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(payload["kind"]),
            machine=(
                None if payload.get("machine") is None else str(payload["machine"])
            ),
            factor=float(payload.get("factor", 1.0)),
            reason=str(payload.get("reason", "")),
            incident_kind=str(payload.get("incident_kind", "")),
            round_index=int(payload.get("round_index", 0)),
        )

    def __str__(self) -> str:
        return f"{self.kind}({self.machine or '*'}) [{self.reason}]"


class ActionProposer:
    """Map incidents to candidate actions (policy, no side effects).

    The mapping encodes the repair playbook:

    * **slowdown** — quarantine the machine immediately (don't wait for
      ``failure_threshold`` organic trips) and *reweight* it: record
      its verified execution estimate as its effective declared value,
      so if it is readmitted later it is priced at what it actually
      does.  Severe slowdowns additionally sharpen the detector.
    * **unverified** — a machine that executed but withheld its report
      is quarantined at once: unverifiable work is the one thing the
      paper's mechanism cannot price.
    * **circuit_trip** whose reason is a missed deadline, co-occurring
      with a message-loss spike — forgive it (``reset_circuit``): the
      network, not the machine, likely ate the messages.
    * **invariant** — the emergency brake: void the next round while
      state is suspect.
    * Opportunistic **readmit** — a quarantined machine whose
      reputation already clears the readmission bar is offered an early
      probe instead of idling out its cooldown.
    """

    def __init__(
        self,
        *,
        reweight_min_factor: float = _REWEIGHT_MIN_FACTOR,
        severe_slowdown: float = _SEVERE_SLOWDOWN,
        readmit_min_cooldown: int = 2,
    ) -> None:
        if reweight_min_factor <= 1.0:
            raise ValueError("reweight_min_factor must exceed 1")
        if severe_slowdown <= 1.0:
            raise ValueError("severe_slowdown must exceed 1")
        if readmit_min_cooldown < 1:
            raise ValueError("readmit_min_cooldown must be at least 1")
        self.reweight_min_factor = float(reweight_min_factor)
        self.severe_slowdown = float(severe_slowdown)
        self.readmit_min_cooldown = int(readmit_min_cooldown)

    def propose(
        self,
        incidents: Sequence[Incident],
        supervisor: "RoundSupervisor",
    ) -> list[RemediationAction]:
        """Candidate actions for one round's incidents, deduplicated."""
        actions: list[RemediationAction] = []
        loss_round = any(i.kind == "message_loss" for i in incidents)
        for incident in incidents:
            if incident.kind == "slowdown":
                actions.extend(self._for_slowdown(incident))
            elif incident.kind == "unverified":
                actions.append(
                    RemediationAction(
                        kind="requarantine",
                        machine=incident.machine,
                        reason="withheld completion report: work unverifiable",
                        incident_kind="unverified",
                        round_index=incident.round_index,
                    )
                )
            elif incident.kind == "circuit_trip":
                actions.extend(self._for_trip(incident, loss_round))
            elif incident.kind == "invariant":
                actions.append(
                    RemediationAction(
                        kind="void_round",
                        reason=f"invariant broken: {incident.evidence.get('invariant')}",
                        incident_kind="invariant",
                        round_index=incident.round_index,
                    )
                )
            elif incident.kind == "message_loss":
                actions.extend(self._for_loss(incident))
        if incidents:
            actions.extend(
                self._opportunistic_readmits(incidents[0].round_index, supervisor)
            )
        return self._dedupe(actions)

    # -------------------------------------------------------- per incident

    def _for_slowdown(self, incident: Incident) -> list[RemediationAction]:
        machine = incident.machine
        factor = float(incident.evidence.get("slowdown_factor", 1.0))
        actions = [
            RemediationAction(
                kind="requarantine",
                machine=machine,
                reason=f"CUSUM alert, verified {factor:.2f}x declared",
                incident_kind="slowdown",
                round_index=incident.round_index,
            )
        ]
        if factor >= self.reweight_min_factor:
            actions.append(
                RemediationAction(
                    kind="reweight",
                    machine=machine,
                    factor=factor,
                    reason=f"re-estimate declared value at {factor:.2f}x bid",
                    incident_kind="slowdown",
                    round_index=incident.round_index,
                )
            )
        if factor >= self.severe_slowdown:
            actions.append(
                RemediationAction(
                    kind="sharpen_detector",
                    factor=_SHARPEN_RATIO,
                    reason=f"severe slowdown ({factor:.2f}x) evaded early detection",
                    incident_kind="slowdown",
                    round_index=incident.round_index,
                )
            )
        return actions

    def _for_trip(
        self, incident: Incident, loss_round: bool
    ) -> list[RemediationAction]:
        reason = str(incident.evidence.get("reason", ""))
        if loss_round and reason in ("missed_bid", "missed_report"):
            return [
                RemediationAction(
                    kind="reset_circuit",
                    machine=incident.machine,
                    reason=f"trip ({reason}) during a message-loss spike",
                    incident_kind="circuit_trip",
                    round_index=incident.round_index,
                )
            ]
        return []  # organic trips are already handled by the circuit itself

    def _for_loss(self, incident: Incident) -> list[RemediationAction]:
        # Machines excluded/withheld during the spike were punished for
        # the network's sins; requarantine is wrong, but so is letting
        # their failure streak stand — the trip-forgiveness path above
        # covers the tripped ones, nothing to do for the rest.
        return []

    def _opportunistic_readmits(
        self, round_index: int, supervisor: "RoundSupervisor"
    ) -> list[RemediationAction]:
        quarantine = supervisor.quarantine
        actions = []
        for name in quarantine.quarantined():
            health = quarantine.health_of(name)
            if health.cooldown_remaining < self.readmit_min_cooldown:
                continue  # about to probe organically anyway
            if health.reputation < quarantine.readmission_reputation:
                continue
            actions.append(
                RemediationAction(
                    kind="readmit",
                    machine=name,
                    reason=(
                        f"reputation {health.reputation:.2f} clears the bar with "
                        f"{health.cooldown_remaining} cooldown rounds left"
                    ),
                    incident_kind="circuit_trip",
                    round_index=round_index,
                )
            )
        return actions

    @staticmethod
    def _dedupe(actions: list[RemediationAction]) -> list[RemediationAction]:
        seen: set[str] = set()
        unique = []
        for action in actions:
            if action.action_id in seen:
                continue
            seen.add(action.action_id)
            unique.append(action)
        return unique


@dataclass
class ActionUndo:
    """Everything needed to roll one applied action back."""

    action_id: str
    health: dict[str, MachineHealth] = field(default_factory=dict)
    bid_overrides: dict[str, float | None] = field(default_factory=dict)
    detector_threshold: float | None = None
    skip_rounds: int | None = None


class ActionApplier:
    """Stage 4b: mutate the supervisor — with undo and a sanity check.

    ``apply`` returns an :class:`ActionUndo` capturing the prior state;
    ``post_apply_check`` validates the *resulting* supervisor state and
    the scheduler rolls back via ``rollback`` if it fails.  Application
    counts per ``action_id`` are tracked so tests (and the journal
    resume path) can assert at-most-once semantics.
    """

    def __init__(self) -> None:
        self.apply_counts: dict[str, int] = {}

    # ------------------------------------------------------------- apply

    def apply(
        self, supervisor: "RoundSupervisor", action: RemediationAction
    ) -> ActionUndo:
        """Apply one verified action to the live supervisor."""
        self.apply_counts[action.action_id] = (
            self.apply_counts.get(action.action_id, 0) + 1
        )
        record_counter("remediation.actions_applied", kind=action.kind)
        annotate(
            "remediation.apply",
            kind=action.kind,
            machine=action.machine or "<round>",
            reason=action.reason,
        )
        undo = ActionUndo(action_id=action.action_id)
        quarantine = supervisor.quarantine
        machine = action.machine
        if machine is not None:
            undo.health[machine] = quarantine.snapshot_health(machine)

        if action.kind == "requarantine":
            assert machine is not None
            quarantine.force_open(machine, reason=f"remediation: {action.reason}")
        elif action.kind == "readmit":
            assert machine is not None
            quarantine.force_probe(machine)
        elif action.kind == "reset_circuit":
            assert machine is not None
            quarantine.reset(machine)
        elif action.kind == "reweight":
            assert machine is not None
            undo.bid_overrides[machine] = supervisor.bid_overrides.get(machine)
            declared = supervisor.agents[machine].bid()
            supervisor.bid_overrides[machine] = action.factor * declared
        elif action.kind == "sharpen_detector":
            undo.detector_threshold = supervisor.detector_threshold
            supervisor.detector_threshold = max(
                _THRESHOLD_FLOOR, action.factor * supervisor.detector_threshold
            )
        elif action.kind == "void_round":
            undo.skip_rounds = supervisor.skip_rounds
            supervisor.skip_rounds += 1
        return undo

    def rollback(self, supervisor: "RoundSupervisor", undo: ActionUndo) -> None:
        """Restore the state captured by :meth:`apply`."""
        record_counter("remediation.actions_rolled_back")
        for name, saved in undo.health.items():
            supervisor.quarantine.restore_health(name, saved)
        for name, prior in undo.bid_overrides.items():
            if prior is None:
                supervisor.bid_overrides.pop(name, None)
            else:
                supervisor.bid_overrides[name] = prior
        if undo.detector_threshold is not None:
            supervisor.detector_threshold = undo.detector_threshold
        if undo.skip_rounds is not None:
            supervisor.skip_rounds = undo.skip_rounds

    # ------------------------------------------------------------- checks

    def post_apply_check(self, supervisor: "RoundSupervisor") -> list[str]:
        """Problems with the supervisor's state after an apply (or [])."""
        problems: list[str] = []
        if supervisor.detector_threshold <= 0.0:
            problems.append("detector threshold is non-positive")
        for name, override in supervisor.bid_overrides.items():
            declared = supervisor.agents[name].bid()
            if override < declared:
                problems.append(
                    f"override for {name} ({override:g}) is below its "
                    f"declared bid ({declared:g})"
                )
        live = [
            n
            for n in supervisor.machine_names
            if supervisor.quarantine.state_of(n) is not CircuitState.OPEN
        ]
        if len(live) < 2:
            problems.append(
                f"only {len(live)} machine(s) would remain admissible"
            )
        return problems
