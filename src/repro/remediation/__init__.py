"""Closed-loop auto-remediation: detect → propose → verify → apply.

The resilience layer (:mod:`repro.resilience`) lets the mechanism
*survive* faults; this package makes it *repair* them.  Every completed
supervised round flows through a four-stage pipeline:

1. :class:`IncidentDetector` adapts existing signals — CUSUM slowdown
   alerts, withheld reports, circuit trips, invariant violations,
   message-loss spikes — into typed :class:`Incident` records;
2. :class:`ActionProposer` maps incidents to candidate
   :class:`RemediationAction`\\ s (requarantine, early readmit, circuit
   reset, bid reweight, detector sharpening, round void);
3. :class:`ShadowVerifier` dry-runs each candidate against a forked,
   batched shadow simulation and rejects anything that breaks an
   invariant or worsens the predicted verification gap;
4. :class:`RemediationScheduler` drains the survivors in ascending
   risk order through a write-ahead :class:`ActionJournal` with
   at-most-once application, crash-safe resume, and rollback on
   post-apply check failure.

Wire it up with ``RoundSupervisor(..., remediation=RemediationPipeline())``;
measure what it buys with :func:`measure_mttr` (benchmark A23).
"""

from repro.remediation.actions import (
    ACTION_KINDS,
    ActionApplier,
    ActionProposer,
    ActionUndo,
    RemediationAction,
)
from repro.remediation.incidents import INCIDENT_KINDS, Incident, IncidentDetector
from repro.remediation.journal import (
    SCHEMA_VERSION,
    ActionJournal,
    JournalRecord,
    RemediationScheduler,
    RiskScorer,
    SchedulerCrash,
)
from repro.remediation.mttr import (
    DegradationScenario,
    MTTRComparison,
    ScenarioRun,
    default_scenarios,
    measure_mttr,
    run_scenario,
    scenario_fault_plan,
)
from repro.remediation.pipeline import (
    RemediationConfig,
    RemediationPipeline,
    RoundRemediation,
)
from repro.remediation.shadow import ShadowVerdict, ShadowVerifier

__all__ = [
    "ACTION_KINDS",
    "INCIDENT_KINDS",
    "SCHEMA_VERSION",
    "ActionApplier",
    "ActionJournal",
    "ActionProposer",
    "ActionUndo",
    "DegradationScenario",
    "Incident",
    "IncidentDetector",
    "JournalRecord",
    "MTTRComparison",
    "RemediationAction",
    "RemediationConfig",
    "RemediationPipeline",
    "RemediationScheduler",
    "RiskScorer",
    "RoundRemediation",
    "ScenarioRun",
    "SchedulerCrash",
    "ShadowVerdict",
    "ShadowVerifier",
    "default_scenarios",
    "measure_mttr",
    "run_scenario",
    "scenario_fault_plan",
]
