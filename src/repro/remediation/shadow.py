"""Stage 3 of the remediation pipeline: dry-run verification.

Before any proposed action touches live state, it is replayed against a
**shadow world**: a throwaway :class:`~repro.resilience.RoundSupervisor`
reconstructed from the evidence round — each machine modelled as a
fixed agent that declares its recorded bid and executes at its
*verified* estimate (the mechanism's own world model, per the paper's
verification step).  The shadow supervisor runs the batched execution
engine on a forked RNG, so a dry run is fast, deterministic, and
perfectly isolated: no live circuit breaker, ledger, or metric moves.

An action is **rejected** when its shadow world either

* breaks a mechanism invariant (feasibility, at-most-once payment,
  ledger consistency, voluntary participation), or
* predicts a worse **verification gap** than the *no-action* shadow
  baseline, beyond ``latency_tolerance``.

The verification gap is the realised total latency divided by the
latency the allocation *promised* given the declared bids
(``Σ t̂_i x_i² / Σ b_i x_i²``): exactly 1 when every machine executes
as declared, inflated when someone underperforms.  Judging actions on
the gap rather than on raw latency is deliberate — quarantining a
degraded machine concentrates load and *raises* short-term latency,
yet it restores the property the paper's mechanism actually needs:
that the mechanism's world model matches reality.  This is the
"first, do no harm" contract the scheduler relies on: every action it
drains has already demonstrated, in simulation, that it does not make
the system less truthful or less sound.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.observability import instrumentation
from repro.remediation.actions import ActionApplier, RemediationAction
from repro.resilience.invariants import InvariantViolation, check_round_invariants

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.supervisor import RoundResult, RoundSupervisor

__all__ = ["ShadowVerdict", "ShadowVerifier"]


class _FixedAgent(Agent):
    """A deterministic stand-in for one machine in the shadow world.

    Declares ``bid`` and executes at ``execution``, both frozen at the
    values observed (declared) and verified (estimated) in the evidence
    round.  Its true value is ``min(bid, execution)`` — the least
    capable the machine could be while producing what we observed —
    which keeps the ``execution >= true_value`` capacity constraint
    satisfiable for any observed pair.
    """

    def __init__(self, bid: float, execution: float) -> None:
        super().__init__(min(bid, execution))
        self._bid = float(bid)
        self._execution = self._check_execution(float(execution))

    def bid(self) -> float:
        return self._bid

    def execution_value(self) -> float:
        return self._execution


@dataclass(frozen=True)
class ShadowVerdict:
    """The dry-run verifier's decision on one proposed action.

    ``predicted_excess`` and ``baseline_excess`` are verification gaps
    (realised latency / allocation-promised latency, ≥ 1 when machines
    underperform their declarations) of the with-action and no-action
    shadow worlds respectively.
    """

    action_id: str
    accepted: bool
    reason: str
    predicted_excess: float
    baseline_excess: float
    violations: tuple[InvariantViolation, ...] = ()

    def __str__(self) -> str:
        word = "accept" if self.accepted else "reject"
        return f"{word} {self.action_id}: {self.reason}"


class ShadowVerifier:
    """Replay proposed actions against a shadow batched simulation.

    Parameters
    ----------
    rounds:
        Shadow rounds simulated per dry run; the first round reflects
        the action's immediate effect (e.g. a requarantined machine
        sitting out), later rounds its knock-on effects (probes,
        reweighted pricing).
    latency_tolerance:
        Relative slack on the predicted verification gap vs the
        no-action baseline before an action is rejected.
    seed:
        Base seed; each evidence round forks its own child stream, so
        verification is reproducible but decorrelated across rounds.
    """

    def __init__(
        self,
        *,
        rounds: int = 2,
        latency_tolerance: float = 0.05,
        seed: int = 0,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        if latency_tolerance < 0.0:
            raise ValueError("latency_tolerance must be non-negative")
        self.rounds = int(rounds)
        self.latency_tolerance = float(latency_tolerance)
        self.seed = int(seed)

    # ------------------------------------------------------------ verify

    def verify(
        self,
        supervisor: "RoundSupervisor",
        result: "RoundResult",
        actions: Sequence[RemediationAction],
    ) -> list[ShadowVerdict]:
        """One verdict per proposed action, in proposal order."""
        if not actions:
            return []
        baseline_excess, baseline_violations = self._dry_run(
            supervisor, result, action=None
        )
        verdicts = []
        for action in actions:
            verdicts.append(
                self._judge(
                    supervisor, result, action, baseline_excess, baseline_violations
                )
            )
        return verdicts

    def _judge(
        self,
        supervisor: "RoundSupervisor",
        result: "RoundResult",
        action: RemediationAction,
        baseline_excess: float,
        baseline_violations: tuple[InvariantViolation, ...],
    ) -> ShadowVerdict:
        predicted, violations = self._dry_run(supervisor, result, action=action)
        fresh = [v for v in violations if v.invariant not in
                 {b.invariant for b in baseline_violations}]
        if fresh:
            return ShadowVerdict(
                action_id=action.action_id,
                accepted=False,
                reason=f"shadow run broke invariants: {fresh[0]}",
                predicted_excess=predicted,
                baseline_excess=baseline_excess,
                violations=tuple(fresh),
            )
        if action.kind == "void_round":
            # Voiding trades a round of throughput for safety; it is
            # judged on invariants alone, never on latency.
            return ShadowVerdict(
                action_id=action.action_id,
                accepted=True,
                reason="emergency void keeps the shadow world invariant-clean",
                predicted_excess=predicted,
                baseline_excess=baseline_excess,
            )
        budget = baseline_excess * (1.0 + self.latency_tolerance)
        if np.isfinite(baseline_excess) and predicted > budget:
            return ShadowVerdict(
                action_id=action.action_id,
                accepted=False,
                reason=(
                    f"predicted verification gap {predicted:.4g} exceeds "
                    f"baseline {baseline_excess:.4g} by more than "
                    f"{self.latency_tolerance:.0%}"
                ),
                predicted_excess=predicted,
                baseline_excess=baseline_excess,
            )
        return ShadowVerdict(
            action_id=action.action_id,
            accepted=True,
            reason=f"predicted verification gap {predicted:.4g} within budget",
            predicted_excess=predicted,
            baseline_excess=baseline_excess,
        )

    # ----------------------------------------------------------- dry run

    def _dry_run(
        self,
        supervisor: "RoundSupervisor",
        result: "RoundResult",
        *,
        action: RemediationAction | None,
    ) -> tuple[float, tuple[InvariantViolation, ...]]:
        """(mean verification gap, invariant violations) of one shadow.

        Instrumentation is suspended for the duration: a dry run must
        not bump live counters, open spans, or move gauges — observable
        side effects would make the verifier itself a source of noise.
        """
        shadow = self._fork(supervisor, result)
        previous = instrumentation.disable()
        try:
            applier = ActionApplier()
            if action is not None:
                applier.apply(shadow, action)
            gaps: list[float] = []
            violations: list[InvariantViolation] = []
            for _ in range(self.rounds):
                shadow_result = shadow.run_round()
                violations.extend(
                    check_round_invariants(
                        shadow_result,
                        honest_names=self._shadow_honest_names(shadow),
                    )
                )
                if shadow_result.voided or shadow_result.outcome is None:
                    continue
                promised = float(shadow_result.outcome.allocation.total_latency)
                realised = float(shadow_result.outcome.realised_latency)
                if promised > 0.0:
                    gaps.append(realised / promised)
        finally:
            if previous is not None:
                instrumentation.enable(previous)
        predicted = float(np.mean(gaps)) if gaps else float("inf")
        return predicted, tuple(violations)

    def _fork(
        self, supervisor: "RoundSupervisor", result: "RoundResult"
    ) -> "RoundSupervisor":
        """A shadow supervisor mirroring the live one's observable state."""
        from repro.resilience.supervisor import RoundSupervisor

        names = supervisor.machine_names
        declared, estimated = self._world_model(supervisor, result)
        agents = [_FixedAgent(declared[n], estimated[n]) for n in names]
        shadow = RoundSupervisor(
            agents,
            supervisor.arrival_rate,
            mechanism=supervisor.mechanism,
            quarantine=copy.deepcopy(supervisor.quarantine),
            max_bid_attempts=supervisor.max_bid_attempts,
            max_report_attempts=supervisor.max_report_attempts,
            duration=supervisor.duration,
            detector_threshold=supervisor.detector_threshold,
            detector_slack=supervisor.detector_slack,
            deterministic_service=True,
            rng=np.random.default_rng([self.seed, result.index]),
            machine_names=names,
            execution="batched",
        )
        shadow.bid_overrides = dict(supervisor.bid_overrides)
        shadow.skip_rounds = supervisor.skip_rounds
        return shadow

    @staticmethod
    def _world_model(
        supervisor: "RoundSupervisor", result: "RoundResult"
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Declared bids and verified execution estimates per machine.

        Machines live in the evidence round use its verified estimates
        (``outcome.execution_values``); machines that sat the round out
        (quarantined, excluded) fall back to declaring-and-executing
        their agent's bid — the best available guess for a machine with
        no fresh observation.
        """
        declared = {n: supervisor.agents[n].bid() for n in supervisor.machine_names}
        estimated = dict(declared)
        if result.outcome is not None:
            order = list(result.loads)
            for name, bid, estimate in zip(
                order, result.outcome.allocation.bids, result.outcome.execution_values
            ):
                declared[name] = float(bid)
                estimated[name] = max(float(estimate), 0.0) or float(bid)
        return declared, estimated

    @staticmethod
    def _shadow_honest_names(shadow: "RoundSupervisor") -> set[str] | None:
        """Honest set for shadow invariant checks — or ``None`` if moot.

        A shadow world reconstructed from a round with a genuine
        deviator contains machines whose execution estimate exceeds
        their declared bid.  Such a machine *legitimately* drags the
        realised latency (and every bonus) down — the voluntary-
        participation clause does not apply, exactly as the live
        invariant checker exempts rounds with slowdown faults.  The
        shadow runner has no ``fault_kinds`` to carry that exemption,
        so it is decided here instead.
        """
        tol = 1e-9
        for agent in shadow.agents.values():
            if agent.execution_value() > agent.bid() * (1.0 + tol):
                return None
        return shadow.honest_names()
