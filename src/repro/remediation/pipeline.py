"""The closed loop: detect → propose → shadow-verify → schedule → apply.

:class:`RemediationPipeline` is the object a
:class:`~repro.resilience.RoundSupervisor` is constructed with
(``remediation=...``); the supervisor calls :meth:`process_round` after
every completed round, and whatever actions survive the full pipeline
mutate the supervisor *before the next round runs* — quarantining a
verified-slow machine immediately instead of after
``failure_threshold`` organic failures, re-pricing it at its verified
execution value so its readmission probes come back clean, forgiving
circuit trips caused by a lossy network, and voiding rounds outright
when an invariant breaks.

Every stage is instrumented (``remediation.{detect,propose,verify,
schedule}`` spans and per-stage counters) and every decision is
journaled, so a post-incident review can replay exactly what the loop
saw, proposed, predicted, and did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.observability.instrumentation import record_counter, trace_span
from repro.remediation.actions import (
    ActionApplier,
    ActionProposer,
    RemediationAction,
)
from repro.remediation.incidents import Incident, IncidentDetector
from repro.remediation.journal import (
    ActionJournal,
    RemediationScheduler,
    RiskScorer,
)
from repro.remediation.shadow import ShadowVerdict, ShadowVerifier
from repro.resilience.invariants import check_round_invariants

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.supervisor import RoundResult, RoundSupervisor

__all__ = ["RemediationConfig", "RoundRemediation", "RemediationPipeline"]


@dataclass(frozen=True)
class RemediationConfig:
    """Tuning knobs for the whole pipeline.

    Attributes
    ----------
    shadow_rounds:
        Rounds each dry run simulates (see
        :class:`~repro.remediation.ShadowVerifier`).
    latency_tolerance:
        Relative predicted-latency slack before the verifier rejects.
    max_actions_per_round:
        Cap on actions *verified* per round; the excess (highest
        proposal index first dropped) waits for re-detection.  Keeps a
        noisy round from flooding the queue.
    shadow_seed:
        Base seed of the shadow verifier's forked RNG streams.
    """

    shadow_rounds: int = 2
    latency_tolerance: float = 0.05
    max_actions_per_round: int = 4
    shadow_seed: int = 0

    def __post_init__(self) -> None:
        if self.shadow_rounds < 1:
            raise ValueError("shadow_rounds must be at least 1")
        if self.latency_tolerance < 0.0:
            raise ValueError("latency_tolerance must be non-negative")
        if self.max_actions_per_round < 1:
            raise ValueError("max_actions_per_round must be at least 1")


@dataclass
class RoundRemediation:
    """What the pipeline saw and did for one supervised round."""

    round_index: int
    incidents: list[Incident] = field(default_factory=list)
    proposed: list[RemediationAction] = field(default_factory=list)
    verdicts: list[ShadowVerdict] = field(default_factory=list)
    applied: list[RemediationAction] = field(default_factory=list)
    rejected: list[RemediationAction] = field(default_factory=list)
    rolled_back: list[RemediationAction] = field(default_factory=list)

    @property
    def acted(self) -> bool:
        """Whether any action reached the live supervisor."""
        return bool(self.applied)


class RemediationPipeline:
    """Closed-loop auto-remediation for a :class:`RoundSupervisor`.

    Stateless between rounds except for the detector's retry baseline,
    the journal, and accumulated history — all of which are exactly the
    state a post-mortem wants.
    """

    def __init__(
        self,
        config: RemediationConfig | None = None,
        *,
        detector: IncidentDetector | None = None,
        proposer: ActionProposer | None = None,
        verifier: ShadowVerifier | None = None,
        scheduler: RemediationScheduler | None = None,
    ) -> None:
        self.config = config if config is not None else RemediationConfig()
        self.detector = detector if detector is not None else IncidentDetector()
        self.proposer = proposer if proposer is not None else ActionProposer()
        self.verifier = (
            verifier
            if verifier is not None
            else ShadowVerifier(
                rounds=self.config.shadow_rounds,
                latency_tolerance=self.config.latency_tolerance,
                seed=self.config.shadow_seed,
            )
        )
        self.scheduler = (
            scheduler
            if scheduler is not None
            else RemediationScheduler(
                ActionJournal(), scorer=RiskScorer(), applier=ActionApplier()
            )
        )
        self.history: list[RoundRemediation] = []

    @property
    def journal(self) -> ActionJournal:
        """The scheduler's write-ahead journal (for inspection/replay)."""
        return self.scheduler.journal

    # ----------------------------------------------------------- the loop

    def process_round(
        self, supervisor: "RoundSupervisor", result: "RoundResult"
    ) -> RoundRemediation:
        """Run the full pipeline on one completed round."""
        report = RoundRemediation(round_index=result.index)

        with trace_span("remediation.detect", index=result.index):
            violations = check_round_invariants(
                result, honest_names=supervisor.honest_names()
            )
            report.incidents = self.detector.scan(
                result, supervisor.quarantine, violations
            )
        if not report.incidents:
            self.history.append(report)
            return report

        with trace_span("remediation.propose", index=result.index):
            report.proposed = self.proposer.propose(report.incidents, supervisor)
            dropped = len(report.proposed) - self.config.max_actions_per_round
            if dropped > 0:
                record_counter("remediation.actions_deferred", dropped)
                report.proposed = report.proposed[
                    : self.config.max_actions_per_round
                ]
        record_counter("remediation.actions_proposed", len(report.proposed))

        with trace_span("remediation.verify", index=result.index):
            report.verdicts = self.verifier.verify(
                supervisor, result, report.proposed
            )

        with trace_span("remediation.schedule", index=result.index):
            for action, verdict in zip(report.proposed, report.verdicts):
                if verdict.accepted:
                    self.scheduler.submit(action, verdict)
                else:
                    self.scheduler.reject(action, verdict)
                    report.rejected.append(action)
            report.applied = self.scheduler.drain(supervisor)
            drained = {a.action_id for a in report.applied}
            rejected = {a.action_id for a in report.rejected}
            report.rolled_back = [
                a
                for a, v in zip(report.proposed, report.verdicts)
                if v.accepted and a.action_id not in drained | rejected
            ]

        self.history.append(report)
        return report
