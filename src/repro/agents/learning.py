"""Learning agents: do adaptive bidders converge to the truth?

Theorem 3.1 says truth-telling *dominates*, but real participants may
not know the theorem — they experiment.  This module models machines as
no-regret learners over a grid of bid factors (multiplicative weights /
Hedge on realised utilities) playing the mechanism repeatedly.

What the dynamics actually reveal (measured, and pinned by the tests):
the PR allocation is invariant to a *common* rescaling of all bids, so
the bid-only repeated game has a continuum of allocation-equivalent
equilibria — every profile ``b = beta * t`` yields the optimal
allocation.  Under the verification mechanism the learners coordinate
on one common scale (which one depends on the exploration noise), and
the realised latency converges to the optimum ``L*`` even though the
literal bids need not equal the truth.  Under the non-truthful
declared-compensation variant the learners drift into overbidding and
never settle on an allocation-equivalent profile — a persistent
efficiency loss remains.  Efficiency, not literal truth-telling, is
what the mechanism makes learnable; see EXPERIMENTS.md (A14).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_positive,
    check_positive_scalar,
)
from repro.agents import kernels
from repro.mechanism.base import Mechanism

__all__ = ["LearningTrace", "MultiplicativeWeightsBidder", "simulate_learning"]


class MultiplicativeWeightsBidder:
    """Hedge over a grid of bid factors for one machine.

    Each round the bidder samples a factor from its weight
    distribution, observes its realised utility, and re-weights with
    ``w_k *= exp(eta * normalised_utility_k)`` using full-information
    feedback (the closed-form mechanism lets us evaluate every
    counterfactual factor at once, so Hedge — not bandit — feedback is
    the honest model).

    Parameters
    ----------
    true_value:
        The machine's private slope (it always executes at capacity —
        slow execution is transparently dominated and learning it would
        only slow the experiment down).
    factors:
        The bid-factor grid to learn over; must include 1.0.
    learning_rate:
        Hedge step size ``eta``.
    rng:
        Randomness for the per-round sampling.
    """

    def __init__(
        self,
        true_value: float,
        rng: np.random.Generator,
        *,
        factors: np.ndarray | None = None,
        learning_rate: float = 0.2,
    ) -> None:
        self.true_value = check_positive_scalar(true_value, "true_value")
        if factors is None:
            factors = np.array([0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0])
        self.factors = as_float_array(factors, "factors")
        check_positive(self.factors, "factors")
        if not np.any(np.isclose(self.factors, 1.0)):
            raise ValueError("the factor grid must include 1.0 (the truth)")
        self.learning_rate = check_positive_scalar(learning_rate, "learning_rate")
        self._rng = rng
        self.weights = np.full(self.factors.size, 1.0 / self.factors.size)

    def sample_bid(self) -> float:
        """Draw a bid from the current mixed strategy."""
        k = int(self._rng.choice(self.factors.size, p=self.weights))
        return float(self.factors[k] * self.true_value)

    def update(self, counterfactual_utilities: np.ndarray) -> None:
        """Hedge update from the utility of every factor this round."""
        utilities = np.asarray(counterfactual_utilities, dtype=np.float64)
        if utilities.shape != self.factors.shape:
            raise ValueError("one utility per factor is required")
        spread = np.ptp(utilities)
        normalised = (
            (utilities - utilities.min()) / spread if spread > 0 else np.zeros_like(utilities)
        )
        self.weights = self.weights * np.exp(self.learning_rate * normalised)
        self.weights /= self.weights.sum()

    @property
    def truthful_mass(self) -> float:
        """Probability currently placed on the truthful factor."""
        k = int(np.argmin(np.abs(self.factors - 1.0)))
        return float(self.weights[k])

    @property
    def modal_factor(self) -> float:
        """The factor carrying the most weight."""
        return float(self.factors[int(np.argmax(self.weights))])


@dataclass(frozen=True)
class LearningTrace:
    """History of a learning run."""

    truthful_mass: np.ndarray  # (rounds, n_agents)
    modal_factors: np.ndarray  # (n_agents,) at the end
    realised_latency: np.ndarray  # (rounds,)

    @property
    def rounds(self) -> int:
        return int(self.truthful_mass.shape[0])

    def final_truthful_mass(self) -> np.ndarray:
        """Per-agent probability on the truth after the last round."""
        return self.truthful_mass[-1]


def simulate_learning(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    rng: np.random.Generator,
    *,
    rounds: int = 200,
    learning_rate: float = 0.2,
    factors: np.ndarray | None = None,
    method: str = "auto",
    arrival_schedule=None,
    round_duration: float = 40.0,
) -> LearningTrace:
    """Run Hedge learners against each other through the mechanism.

    Each round: every machine samples a bid from its mixed strategy;
    the mechanism runs; each machine then receives the counterfactual
    utility of every factor (holding the others' sampled bids fixed)
    and updates.  Executions stay at capacity throughout.

    ``method`` selects how the counterfactual utilities are evaluated:
    ``"bruteforce"`` re-runs the mechanism per factor (O(grid * n) per
    agent per round, works for any mechanism); ``"vectorized"`` uses
    the closed-form kernel of :mod:`repro.agents.kernels` (O(n + grid)
    per agent per round); ``"auto"`` (default) picks the kernel
    whenever the mechanism supports it — the verification mechanism,
    VCG, and Archer–Tardos all do.

    ``arrival_schedule`` (any
    :class:`~repro.system.workload.ArrivalSchedule`) makes the repeated
    game nonstationary: round ``k`` is priced at the schedule's mean
    rate over ``[k*round_duration, (k+1)*round_duration)`` instead of
    the constant ``arrival_rate``, so learners chase a moving target —
    the regime the horizon engine's drift sweeps benchmark.
    """
    if method not in ("auto", "bruteforce", "vectorized"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = "vectorized" if kernels.supports(mechanism) else "bruteforce"
    mode = kernels.kernel_mode_of(mechanism) if method == "vectorized" else None
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    if arrival_schedule is None:
        round_rates = np.full(rounds, arrival_rate)
    else:
        round_duration = check_positive_scalar(round_duration, "round_duration")
        round_rates = np.array(
            [
                arrival_schedule.mean_rate(
                    k * round_duration, (k + 1) * round_duration
                )
                for k in range(rounds)
            ]
        )

    n = true_values.size
    learners = [
        MultiplicativeWeightsBidder(
            float(t), rng, factors=factors, learning_rate=learning_rate
        )
        for t in true_values
    ]
    grid = learners[0].factors

    mass_history = np.empty((rounds, n))
    latencies = np.empty(rounds)

    for round_index in range(rounds):
        bids = np.array([learner.sample_bid() for learner in learners])
        rate = float(round_rates[round_index])
        outcome = mechanism.run(bids, rate, true_values)
        latencies[round_index] = outcome.realised_latency

        if method == "vectorized":
            # Learners execute at capacity, so the leave-one-out
            # statistics use the true values as executions.  One
            # (n, K) broadcast scores every agent's whole
            # counterfactual grid; each row is bit-identical to the
            # former per-agent kernel call.
            s_minus, q_minus = kernels.sufficient_statistics_all(
                bids, true_values
            )
            all_utilities = kernels.utility_kernel(
                grid[None, :] * true_values[:, None],
                true_values[:, None],
                s_minus[:, None],
                q_minus[:, None],
                rate,
                mode=mode,
            )
        else:
            all_utilities = np.empty((n, grid.size))
            for i in range(n):
                for k, factor in enumerate(grid):
                    candidate = bids.copy()
                    candidate[i] = factor * true_values[i]
                    counterfactual = mechanism.run(
                        candidate, rate, true_values
                    )
                    all_utilities[i, k] = float(
                        counterfactual.payments.utility[i]
                    )
        for i, learner in enumerate(learners):
            learner.update(all_utilities[i])
            mass_history[round_index, i] = learner.truthful_mass

    return LearningTrace(
        truthful_mass=mass_history,
        modal_factors=np.array([learner.modal_factor for learner in learners]),
        realised_latency=latencies,
    )
