"""Iterated best-response dynamics of the induced bidding game.

Each round, agents (in index order) replace their bid with a best
response to the current bids of the others.  Under a truthful mechanism
the truthful profile is a fixed point reached immediately; under the
non-truthful declared-compensation variant the dynamics drift away from
the truth — the demonstration that verification-style payments are what
keeps the system at the efficient allocation.

Two drivers share the :class:`GameTrace` contract:

* :class:`BiddingGame` — calls
  :func:`~repro.agents.best_response.best_response` per agent per
  round, recomputing the others' profile from scratch each time; works
  for any mechanism, with a ``method`` switch for the grid evaluation.
* :class:`BestResponseDynamics` — the fast path for every mechanism
  with a closed-form kernel (:func:`repro.agents.kernels.supports`:
  the verification mechanism, VCG, and Archer–Tardos): maintains the
  sufficient statistics ``S = sum 1/b_j`` and ``Q = sum t~_j/b_j**2``
  in an :class:`~repro.allocation.IncrementalStrategicState` and feeds
  each agent's step through the closed-form kernel, so a round costs
  O(n * grid) arithmetic instead of O(n^2 * grid) mechanism runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.agents import kernels
from repro.agents.best_response import BestResponse, best_response
from repro.allocation.incremental import IncrementalStrategicState
from repro.mechanism.base import Mechanism

__all__ = ["GameTrace", "BiddingGame", "BestResponseDynamics"]


@dataclass(frozen=True)
class GameTrace:
    """History of one iterated best-response run."""

    bid_history: np.ndarray  # shape (rounds + 1, n): row 0 is the start profile
    converged: bool
    rounds: int

    @property
    def final_bids(self) -> np.ndarray:
        """Bid profile after the last round."""
        return self.bid_history[-1]

    def max_drift_from(self, reference: np.ndarray) -> float:
        """Largest relative distance of the final bids from ``reference``."""
        reference = np.asarray(reference, dtype=np.float64)
        return float(np.max(np.abs(self.final_bids - reference) / reference))


@dataclass
class BiddingGame:
    """Simultaneous-bid game induced by a mechanism on fixed true values.

    Parameters
    ----------
    mechanism:
        Mechanism mapping bids (and executions) to payments.
    true_values:
        Agents' private types.
    arrival_rate:
        Total rate ``R``.
    honest_execution:
        When true (default), agents always execute at capacity and only
        optimise their bids; the full two-dimensional deviation is
        covered by :func:`repro.agents.best_response.best_response`.
    method:
        Grid-evaluation method forwarded to
        :func:`~repro.agents.best_response.best_response` —
        ``"bruteforce"``, ``"vectorized"``, or ``"auto"`` (default).
    """

    mechanism: Mechanism
    true_values: np.ndarray
    arrival_rate: float
    honest_execution: bool = True
    method: str = "auto"
    _tolerance: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        self.true_values = as_float_array(self.true_values, "true_values")
        check_positive(self.true_values, "true_values")
        self.arrival_rate = check_positive_scalar(self.arrival_rate, "arrival_rate")

    def run(
        self,
        start_bids: np.ndarray | None = None,
        max_rounds: int = 20,
    ) -> GameTrace:
        """Iterate best responses until bids stop moving or rounds run out."""
        n = self.true_values.size
        bids = (
            self.true_values.copy()
            if start_bids is None
            else as_float_array(start_bids, "start_bids").copy()
        )
        if bids.size != n:
            raise ValueError("start_bids must have one entry per agent")
        check_positive(bids, "start_bids")

        exec_cap = 1.0 if self.honest_execution else 4.0
        history = [bids.copy()]
        converged = False
        for _ in range(max_rounds):
            previous = bids.copy()
            for agent in range(n):
                br = best_response(
                    self.mechanism,
                    self.true_values,
                    self.arrival_rate,
                    agent,
                    other_bids=bids,
                    execution_cap_factor=exec_cap,
                    method=self.method,
                )
                bids[agent] = br.bid
            history.append(bids.copy())
            if np.max(np.abs(bids - previous) / previous) < self._tolerance:
                converged = True
                break

        return GameTrace(
            bid_history=np.array(history),
            converged=converged,
            rounds=len(history) - 1,
        )

    def truthful_is_equilibrium(self) -> bool:
        """Whether no agent gains by deviating from the all-truthful profile."""
        exec_cap = 1.0 if self.honest_execution else 4.0
        for agent in range(self.true_values.size):
            br = best_response(
                self.mechanism,
                self.true_values,
                self.arrival_rate,
                agent,
                execution_cap_factor=exec_cap,
                method=self.method,
            )
            if not br.is_truthful:
                return False
        return True


@dataclass
class BestResponseDynamics:
    """Incremental iterated best response through the closed-form kernel.

    Behaviourally equivalent to :class:`BiddingGame` on any mechanism
    the kernel supports — the verification mechanism, VCG, and
    Archer–Tardos (the property tests pin the agreement) — but each
    agent step reads its leave-one-out
    statistics ``(S_{-i}, Q_{-i})`` from an
    :class:`~repro.allocation.IncrementalStrategicState` — two O(1)
    subtractions plus a rank-1 update per step — instead of re-running
    the mechanism over the full profile for every grid candidate.

    As in :class:`BiddingGame`, every non-deviating machine is presumed
    to execute exactly as it declared (``t~_j = b_j``), so the state's
    execution vector tracks the bid vector across rounds.
    """

    mechanism: Mechanism
    true_values: np.ndarray
    arrival_rate: float
    honest_execution: bool = True
    _tolerance: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        self.true_values = as_float_array(self.true_values, "true_values")
        check_positive(self.true_values, "true_values")
        if self.true_values.size < 2:
            raise ValueError("best-response dynamics require at least two agents")
        self.arrival_rate = check_positive_scalar(self.arrival_rate, "arrival_rate")
        # Raises TypeError for mechanisms without a closed-form kernel.
        self._mode = kernels.kernel_mode_of(self.mechanism)

    @property
    def _execution_cap(self) -> float:
        return 1.0 if self.honest_execution else 4.0

    def run(
        self,
        start_bids: np.ndarray | None = None,
        max_rounds: int = 20,
    ) -> GameTrace:
        """Iterate best responses until bids stop moving or rounds run out."""
        n = self.true_values.size
        bids = (
            self.true_values.copy()
            if start_bids is None
            else as_float_array(start_bids, "start_bids").copy()
        )
        if bids.size != n:
            raise ValueError("start_bids must have one entry per agent")
        check_positive(bids, "start_bids")

        state = IncrementalStrategicState(bids)
        history = [bids.copy()]
        converged = False
        for _ in range(max_rounds):
            previous = bids.copy()
            for agent in range(n):
                s_minus, q_minus = state.statistics_excluding(agent)
                new_bid, _, _, _ = kernels.best_response_given_stats(
                    s_minus,
                    q_minus,
                    float(self.true_values[agent]),
                    self.arrival_rate,
                    mode=self._mode,
                    execution_cap_factor=self._execution_cap,
                )
                state.update(agent, new_bid)
                bids[agent] = new_bid
            history.append(bids.copy())
            if np.max(np.abs(bids - previous) / previous) < self._tolerance:
                converged = True
                break

        return GameTrace(
            bid_history=np.array(history),
            converged=converged,
            rounds=len(history) - 1,
        )

    def run_path(
        self,
        rates: np.ndarray,
        start_bids: np.ndarray | None = None,
    ) -> GameTrace:
        """Best-response dynamics along a nonstationary rate path.

        One best-response round is played per entry of ``rates`` — pass
        e.g. ``[schedule.mean_rate(k*d, (k+1)*d) for k in range(T)]``
        to chase an :class:`~repro.system.workload.ArrivalSchedule`.
        Unlike :meth:`run`, the dynamics never stop early: the target
        moves every round, so all ``len(rates)`` rounds are played and
        ``converged`` reports whether the *last* round left the profile
        within tolerance (the dynamics kept up with the drift).
        """
        rates = as_float_array(rates, "rates")
        check_positive(rates, "rates")
        if rates.size < 1:
            raise ValueError("rates must contain at least one round")
        n = self.true_values.size
        bids = (
            self.true_values.copy()
            if start_bids is None
            else as_float_array(start_bids, "start_bids").copy()
        )
        if bids.size != n:
            raise ValueError("start_bids must have one entry per agent")
        check_positive(bids, "start_bids")

        state = IncrementalStrategicState(bids)
        history = [bids.copy()]
        converged = False
        for rate in rates:
            previous = bids.copy()
            for agent in range(n):
                s_minus, q_minus = state.statistics_excluding(agent)
                new_bid, _, _, _ = kernels.best_response_given_stats(
                    s_minus,
                    q_minus,
                    float(self.true_values[agent]),
                    float(rate),
                    mode=self._mode,
                    execution_cap_factor=self._execution_cap,
                )
                state.update(agent, new_bid)
                bids[agent] = new_bid
            history.append(bids.copy())
            converged = bool(
                np.max(np.abs(bids - previous) / previous) < self._tolerance
            )
        return GameTrace(
            bid_history=np.array(history),
            converged=converged,
            rounds=len(history) - 1,
        )

    def truthful_is_equilibrium(self) -> bool:
        """Whether no agent gains by deviating from the all-truthful profile."""
        state = IncrementalStrategicState(self.true_values)
        for agent in range(self.true_values.size):
            s_minus, q_minus = state.statistics_excluding(agent)
            bid, execution, utility, truthful = kernels.best_response_given_stats(
                s_minus,
                q_minus,
                float(self.true_values[agent]),
                self.arrival_rate,
                mode=self._mode,
                execution_cap_factor=self._execution_cap,
            )
            br = BestResponse(agent, bid, execution, utility, truthful)
            if not br.is_truthful:
                return False
        return True
