"""Iterated best-response dynamics of the induced bidding game.

Each round, agents (in index order) replace their bid with a best
response to the current bids of the others.  Under a truthful mechanism
the truthful profile is a fixed point reached immediately; under the
non-truthful declared-compensation variant the dynamics drift away from
the truth — the demonstration that verification-style payments are what
keeps the system at the efficient allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.agents.best_response import best_response
from repro.mechanism.base import Mechanism

__all__ = ["GameTrace", "BiddingGame"]


@dataclass(frozen=True)
class GameTrace:
    """History of one iterated best-response run."""

    bid_history: np.ndarray  # shape (rounds + 1, n): row 0 is the start profile
    converged: bool
    rounds: int

    @property
    def final_bids(self) -> np.ndarray:
        """Bid profile after the last round."""
        return self.bid_history[-1]

    def max_drift_from(self, reference: np.ndarray) -> float:
        """Largest relative distance of the final bids from ``reference``."""
        reference = np.asarray(reference, dtype=np.float64)
        return float(np.max(np.abs(self.final_bids - reference) / reference))


@dataclass
class BiddingGame:
    """Simultaneous-bid game induced by a mechanism on fixed true values.

    Parameters
    ----------
    mechanism:
        Mechanism mapping bids (and executions) to payments.
    true_values:
        Agents' private types.
    arrival_rate:
        Total rate ``R``.
    honest_execution:
        When true (default), agents always execute at capacity and only
        optimise their bids; the full two-dimensional deviation is
        covered by :func:`repro.agents.best_response.best_response`.
    """

    mechanism: Mechanism
    true_values: np.ndarray
    arrival_rate: float
    honest_execution: bool = True
    _tolerance: float = field(default=1e-6, repr=False)

    def __post_init__(self) -> None:
        self.true_values = as_float_array(self.true_values, "true_values")
        check_positive(self.true_values, "true_values")
        self.arrival_rate = check_positive_scalar(self.arrival_rate, "arrival_rate")

    def run(
        self,
        start_bids: np.ndarray | None = None,
        max_rounds: int = 20,
    ) -> GameTrace:
        """Iterate best responses until bids stop moving or rounds run out."""
        n = self.true_values.size
        bids = (
            self.true_values.copy()
            if start_bids is None
            else as_float_array(start_bids, "start_bids").copy()
        )
        if bids.size != n:
            raise ValueError("start_bids must have one entry per agent")
        check_positive(bids, "start_bids")

        exec_cap = 1.0 if self.honest_execution else 4.0
        history = [bids.copy()]
        converged = False
        for _ in range(max_rounds):
            previous = bids.copy()
            for agent in range(n):
                br = best_response(
                    self.mechanism,
                    self.true_values,
                    self.arrival_rate,
                    agent,
                    other_bids=bids,
                    execution_cap_factor=exec_cap,
                )
                bids[agent] = br.bid
            history.append(bids.copy())
            if np.max(np.abs(bids - previous) / previous) < self._tolerance:
                converged = True
                break

        return GameTrace(
            bid_history=np.array(history),
            converged=converged,
            rounds=len(history) - 1,
        )

    def truthful_is_equilibrium(self) -> bool:
        """Whether no agent gains by deviating from the all-truthful profile."""
        exec_cap = 1.0 if self.honest_execution else 4.0
        for agent in range(self.true_values.size):
            br = best_response(
                self.mechanism,
                self.true_values,
                self.arrival_rate,
                agent,
                execution_cap_factor=exec_cap,
            )
            if not br.is_truthful:
                return False
        return True
