"""Base class for strategic agents (machines)."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro._validation import check_positive_scalar

__all__ = ["Agent"]


class Agent(ABC):
    """A machine owner participating in the load balancing mechanism.

    An agent is characterised by its private true value ``t`` (latency
    slope, inversely proportional to processing rate) and chooses:

    * a bid — the slope it declares to the mechanism, and
    * an execution value — the slope it actually executes assigned jobs
      at, constrained to ``t̃ >= t`` (it cannot run faster than its
      hardware allows).
    """

    def __init__(self, true_value: float) -> None:
        self.true_value = check_positive_scalar(true_value, "true_value")

    @abstractmethod
    def bid(self) -> float:
        """The latency slope this agent declares to the mechanism."""

    @abstractmethod
    def execution_value(self) -> float:
        """The latency slope this agent actually executes jobs at.

        Implementations must return a value >= ``self.true_value``.
        """

    def _check_execution(self, value: float) -> float:
        """Clamp-and-check helper enforcing the capacity constraint."""
        if value < self.true_value:
            raise ValueError(
                f"execution value {value:g} below true value "
                f"{self.true_value:g}: machines cannot beat their capacity"
            )
        return value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(true_value={self.true_value:g})"
