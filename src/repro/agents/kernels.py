"""Closed-form vectorized best-response kernels for the strategic layer.

Every strategic-layer computation — best-response dynamics, equilibrium
certification, learning agents — asks the same question: *what is agent
``i``'s utility at a candidate ``(bid, execution)`` pair, holding the
others fixed?*  Answering it through :meth:`Mechanism.run` costs
``O(n)`` per candidate, so a ``(bid x execution)`` grid search costs
``O(grid * n)`` and the grid search is run once per agent per round.

Under the compensation-and-bonus mechanism the whole dependence on the
other ``n - 1`` agents collapses into **two scalars**:

    ``S_{-i} = sum_{j != i} 1 / b_j``
    ``Q_{-i} = sum_{j != i} t~_j / b_j**2``

Derivation.  With ``S = S_{-i} + 1/b`` the PR allocation gives agent
``i`` the load ``x_i = R / (b S)`` and agent ``j`` the load
``x_j = R / (b_j S)``, so the realised total latency is

    ``L = e x_i**2 + sum_{j != i} t~_j x_j**2
       = (R**2 / S**2) (e / b**2 + Q_{-i})``.

The bonus is ``R**2 / S_{-i} - L`` (leave-one-out optimum minus the
realised latency).  Under the paper's observed compensation
(``C_i = e x_i**2``) the compensation cancels the agent's cost exactly,
so its utility *is* the bonus:

    ``U_obs(b, e) = R**2 / S_{-i} - (R**2 / S**2) (e / b**2 + Q_{-i})``

and under the non-truthful declared variant (``C_i = b x_i**2``):

    ``U_dec(b, e) = R**2 / S_{-i}
                    + (R**2 / S**2) (1/b - 2 e / b**2 - Q_{-i})``.

The two truthful baselines collapse onto the *same* pair of
aggregates.  VCG's Clarke bonus is evaluated at the **declared**
latencies — ``L_{-i}^* - sum_j b_j x_j**2`` with
``sum_j b_j x_j**2 = R**2 / S`` — so with the declared-cost
compensation ``b x_i**2 = (R**2/S**2)/b`` and the valuation
``-e x_i**2``,

    ``U_vcg(b, e) = R**2 / S_{-i} - (R**2 / S**2) (S_{-i} + e / b**2)``

(the identity ``1/b - S = -S_{-i}`` folds the compensation into the
pivot term; note ``Q_{-i}`` drops out — VCG cannot see executions).
The Archer–Tardos one-parameter payment replaces the pivot with the
work integral ``R**2 / (S_{-i} (b S_{-i} + 1)) = R**2 / (b S S_{-i})``
(using ``b S_{-i} + 1 = b S``), giving

    ``U_at(b, e) = (R**2 / S**2) (1/b - e / b**2)
                   + R**2 / (b S S_{-i})``.

All four are closed-form in ``(b, e)`` given ``(S_{-i}, Q_{-i}, R)``,
so a full candidate grid is **one NumPy broadcast** — ``O(grid)``
instead of ``O(grid * n)`` — and the aggregates themselves admit O(1)
rank-1 updates across best-response rounds
(:class:`repro.allocation.IncrementalStrategicState`).

Tie-break contract (shared with the brute-force grid search in
:mod:`repro.agents.best_response`, asserted by the property tests and
``benchmarks/bench_best_response.py``): the utility grid is laid out
with **executions as rows and bids as columns**, and the argmax is the
first maximal entry in C (row-major) order — ties resolve to the
lowest execution index first, then the lowest bid index.

Examples
--------
>>> import numpy as np
>>> from repro.agents.kernels import sufficient_statistics, utility_kernel
>>> t = np.array([1.0, 2.0])
>>> s_minus, q_minus = sufficient_statistics(t, t, agent=0)
>>> (s_minus, q_minus)
(0.5, 0.5)
>>> float(utility_kernel(1.0, 1.0, s_minus, q_minus, 3.0))   # truthful
12.0

When everyone executes exactly as declared, the three truthful payment
rules coincide at the truthful profile (see ``docs/mechanisms.md``):

>>> float(utility_kernel(1.0, 1.0, s_minus, q_minus, 3.0, mode="vcg"))
12.0
>>> float(utility_kernel(1.0, 1.0, s_minus, q_minus, 3.0, mode="archer_tardos"))
12.0
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)

__all__ = [
    "best_response_fast",
    "best_response_given_stats",
    "compensation_mode_of",
    "grid_argmax",
    "grid_argmax_units",
    "kernel_mode_of",
    "refine_from_grid",
    "strategy_grids",
    "sufficient_statistics",
    "sufficient_statistics_all",
    "sufficient_statistics_units",
    "supports",
    "utility_grid",
    "utility_kernel",
]

_KERNEL_MODES = ("observed", "declared", "vcg", "archer_tardos")
# Historical name for the first two entries, kept for readability at the
# call sites that only deal with the verification mechanism.
_COMPENSATION_MODES = _KERNEL_MODES[:2]


def supports(mechanism) -> bool:
    """Whether ``mechanism``'s utilities admit the closed-form kernel.

    True exactly for :class:`~repro.mechanism.VerificationMechanism`
    (both compensation modes), :class:`~repro.mechanism.VCGMechanism`,
    and :class:`~repro.mechanism.ArcherTardosMechanism` — the three
    mechanisms whose payments reduce to the ``(S_{-i}, Q_{-i})``
    sufficient statistics (module docstring).  Subclasses are *not*
    assumed to keep the payment rule, so the check is on the exact
    type; anything else stays on the brute-force path.
    """
    from repro.mechanism import (
        ArcherTardosMechanism,
        VCGMechanism,
        VerificationMechanism,
    )

    return type(mechanism) in (
        VerificationMechanism,
        VCGMechanism,
        ArcherTardosMechanism,
    )


def kernel_mode_of(mechanism) -> str:
    """The kernel mode for a supported mechanism (see :func:`supports`).

    ``"observed"`` / ``"declared"`` for the verification mechanism
    (whichever compensation it was built with), ``"vcg"`` for the
    Clarke-pivot baseline, ``"archer_tardos"`` for the one-parameter
    baseline; ``TypeError`` for anything without a closed form.
    """
    from repro.mechanism import (
        ArcherTardosMechanism,
        VCGMechanism,
        VerificationMechanism,
    )

    if type(mechanism) is VerificationMechanism:
        return mechanism.compensation_mode
    if type(mechanism) is VCGMechanism:
        return "vcg"
    if type(mechanism) is ArcherTardosMechanism:
        return "archer_tardos"
    raise TypeError(
        f"{type(mechanism).__name__} has no closed-form utility kernel; "
        "use the brute-force path"
    )


def compensation_mode_of(mechanism) -> str:
    """Alias of :func:`kernel_mode_of` (the pre-1.8 name)."""
    return kernel_mode_of(mechanism)


def _resolve_mode(mode: str | None, compensation: str | None) -> str:
    """Fold the legacy ``compensation=`` spelling into ``mode=``."""
    if compensation is not None:
        if mode is not None and mode != compensation:
            raise ValueError(
                "pass either mode= or its alias compensation=, not both"
            )
        mode = compensation
    if mode is None:
        mode = "observed"
    if mode not in _KERNEL_MODES:
        raise ValueError(
            f"kernel mode (compensation) must be one of {_KERNEL_MODES}, "
            f"got {mode!r}"
        )
    return mode


def sufficient_statistics(
    bids: np.ndarray,
    executions: np.ndarray | None = None,
    *,
    agent: int,
) -> tuple[float, float]:
    """The two aggregates ``(S_{-i}, Q_{-i})`` that summarise the others.

    Parameters
    ----------
    bids:
        Full bid vector (agent ``agent``'s own entry is excluded by
        subtraction, matching the rank-1 update arithmetic of
        :class:`~repro.allocation.IncrementalStrategicState`).
    executions:
        Full execution-value vector ``t~``; defaults to the bids
        (machines execute as declared).
    agent:
        Index whose entry is left out of both sums.

    Examples
    --------
    >>> sufficient_statistics([1.0, 2.0, 4.0], agent=0)
    (0.75, 0.75)
    """
    bids = as_float_array(bids, "bids")
    check_positive(bids, "bids")
    agent = check_index(agent, bids.size, "agent")
    if executions is None:
        executions = bids
    else:
        executions = as_float_array(executions, "executions")
        check_positive(executions, "executions")
        if executions.size != bids.size:
            raise ValueError("executions must have one entry per agent")
    inv = 1.0 / bids
    weighted = executions * inv * inv
    s_minus = float(inv.sum() - inv[agent])
    q_minus = float(weighted.sum() - weighted[agent])
    return s_minus, q_minus


def sufficient_statistics_all(
    bids: np.ndarray,
    executions: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(S_{-i}, Q_{-i})`` for *every* agent at once, as two vectors.

    The vectorised form of :func:`sufficient_statistics`: each entry is
    computed as ``total - own`` from the same shared totals the scalar
    version uses, so ``sufficient_statistics_all(b, e)[0][i]`` is
    bit-identical to ``sufficient_statistics(b, e, agent=i)[0]``.  This
    is what lets a learning round score all ``n`` counterfactual grids
    in one ``(n, K)`` broadcast.

    Examples
    --------
    >>> s_all, q_all = sufficient_statistics_all([1.0, 2.0, 4.0])
    >>> (float(s_all[0]), float(q_all[0]))
    (0.75, 0.75)
    """
    bids = as_float_array(bids, "bids")
    check_positive(bids, "bids")
    if executions is None:
        executions = bids
    else:
        executions = as_float_array(executions, "executions")
        check_positive(executions, "executions")
        if executions.size != bids.size:
            raise ValueError("executions must have one entry per agent")
    inv = 1.0 / bids
    weighted = executions * inv * inv
    return inv.sum() - inv, weighted.sum() - weighted


def sufficient_statistics_units(
    bids: np.ndarray,
    executions: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(S_{-i}, Q_{-i})`` for every agent of every unit at once.

    The batched-unit axis of :func:`sufficient_statistics_all`:
    ``bids`` (and ``executions``, defaulting to the bids) are ``(U, n)``
    blocks with one *unit* — one independent scenario — per row, and
    both returned arrays are ``(U, n)``.  Row ``k`` is bit-identical to
    ``sufficient_statistics_all(bids[k], executions[k])``: reducing a
    C-contiguous block along its last axis applies the same pairwise
    summation per row that a lone vector's ``.sum()`` does, so stacking
    units never changes a float.  This is the aggregate layer of the
    fused campaign backend (:mod:`repro.parallel.fusion`) and of the
    cohort-stacked generalization study.

    Examples
    --------
    >>> s, q = sufficient_statistics_units([[1.0, 2.0, 4.0]] * 2)
    >>> (float(s[0, 0]), float(q[1, 0]))
    (0.75, 0.75)
    """
    bids = np.asarray(bids, dtype=np.float64)
    if bids.ndim != 2:
        raise ValueError("bids must be a (units, agents) matrix")
    check_positive(bids, "bids")
    if executions is None:
        executions = bids
    else:
        executions = np.asarray(executions, dtype=np.float64)
        check_positive(executions, "executions")
        if executions.shape != bids.shape:
            raise ValueError("executions must match the bids shape")
    inv = 1.0 / bids
    weighted = executions * inv * inv
    return (
        inv.sum(axis=1, keepdims=True) - inv,
        weighted.sum(axis=1, keepdims=True) - weighted,
    )


def utility_kernel(
    bids,
    executions,
    s_minus,
    q_minus,
    arrival_rate,
    *,
    mode: str | None = None,
    compensation: str | None = None,
) -> np.ndarray:
    """Closed-form ``U_i(b, e)`` given the aggregates — broadcastable.

    ``bids`` and ``executions`` may be scalars or arrays of any
    broadcast-compatible shapes; the result has the broadcast shape.
    ``s_minus``/``q_minus`` broadcast too (pass per-row columns from
    :func:`sufficient_statistics_all` to score all agents at once), and
    so does ``arrival_rate`` — pass a ``(U, 1)`` column alongside
    ``(U, n)`` statistics from :func:`sufficient_statistics_units` to
    score a whole cohort of units, each with its own ``R``, in one
    call.  Cost is O(1) per evaluated candidate, independent of ``n``.

    ``mode`` selects the payment rule: ``"observed"`` (default) /
    ``"declared"`` for the verification mechanism, ``"vcg"`` for the
    Clarke pivot, ``"archer_tardos"`` for the one-parameter baseline
    (derivations in the module docstring).  ``compensation=`` is the
    pre-1.8 spelling, kept as an alias.  The VCG and Archer–Tardos
    forms do not read ``q_minus`` — neither mechanism can see the
    others' execution values — but the uniform signature keeps the two
    aggregates flowing through every call site unchanged.

    Examples
    --------
    Truth dominates under the observed mode (Theorem 3.1):

    >>> u = utility_kernel([1.0, 1.5], 1.0, 0.5, 0.5, 3.0)
    >>> bool(u[0] > u[1])
    True
    """
    mode = _resolve_mode(mode, compensation)
    b = np.asarray(bids, dtype=np.float64)
    e = np.asarray(executions, dtype=np.float64)
    total = s_minus + 1.0 / b                       # S = S_{-i} + 1/b
    scale = (arrival_rate / total) ** 2             # R^2 / S^2
    base = arrival_rate**2 / s_minus                # L_{-i}^* = R^2 / S_{-i}
    if mode == "observed":
        return base - scale * (e / b**2 + q_minus)
    if mode == "declared":
        return base + scale * (1.0 / b - 2.0 * e / b**2 - q_minus)
    if mode == "vcg":
        return base - scale * (s_minus + e / b**2)
    # archer_tardos: declared-cost compensation + work-integral bonus.
    return scale * (1.0 / b - e / b**2) + arrival_rate**2 / (
        b * total * s_minus
    )


def utility_grid(
    bid_grid: np.ndarray,
    exec_grid: np.ndarray,
    s_minus: float,
    q_minus: float,
    arrival_rate: float,
    *,
    mode: str | None = None,
    compensation: str | None = None,
) -> np.ndarray:
    """The full candidate surface in one broadcast.

    Returns shape ``(exec_grid.size, bid_grid.size)`` — executions as
    rows, bids as columns, the orientation the tie-break contract is
    defined over.
    """
    bid_grid = np.asarray(bid_grid, dtype=np.float64)
    exec_grid = np.asarray(exec_grid, dtype=np.float64)
    return utility_kernel(
        bid_grid[None, :],
        exec_grid[:, None],
        s_minus,
        q_minus,
        arrival_rate,
        mode=_resolve_mode(mode, compensation),
    )


def grid_argmax(utilities: np.ndarray) -> tuple[int, int]:
    """First-maximum argmax over an (executions x bids) utility grid.

    This **is** the tie-break rule: the flat C-order argmax, i.e. ties
    resolve to the lowest execution index, then the lowest bid index —
    exactly what nested ``for e: for b:`` loops with a strict ``>``
    comparison produce.  Both the vectorized and the brute-force search
    must select through this helper so their picks are bit-identical.

    Examples
    --------
    >>> grid_argmax(np.array([[1.0, 3.0], [3.0, 0.0]]))
    (0, 1)
    """
    utilities = np.asarray(utilities)
    flat = int(np.argmax(utilities))
    n_bids = utilities.shape[1]
    return flat // n_bids, flat % n_bids


def grid_argmax_units(utilities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-unit :func:`grid_argmax` over stacked utility grids.

    ``utilities`` is ``(U, executions, bids)`` — one grid per unit —
    and the result is a pair of integer vectors ``(rows, cols)`` with
    ``(rows[k], cols[k]) == grid_argmax(utilities[k])`` for every
    ``k``: the same flat C-order first-maximum rule, applied row-wise,
    so the batched-unit axis inherits the tie-break contract verbatim.

    Examples
    --------
    >>> grids = np.array([[[1.0, 3.0], [3.0, 0.0]],
    ...                   [[0.0, 1.0], [2.0, 2.0]]])
    >>> rows, cols = grid_argmax_units(grids)
    >>> (rows.tolist(), cols.tolist())
    ([0, 1], [1, 0])
    """
    utilities = np.asarray(utilities)
    if utilities.ndim != 3:
        raise ValueError("utilities must be (units, executions, bids)")
    n_bids = utilities.shape[2]
    flat = utilities.reshape(utilities.shape[0], -1).argmax(axis=1)
    return flat // n_bids, flat % n_bids


def strategy_grids(
    true_value: float,
    *,
    bid_bounds_factor: tuple[float, float] = (0.05, 20.0),
    execution_cap_factor: float = 4.0,
    scan_points: int = 48,
    exec_points: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """The shared candidate grids both search paths must evaluate.

    Bids: ``scan_points`` log-spaced multiples of the true value across
    ``bid_bounds_factor``.  Executions: ``exec_points`` linear points in
    ``[t, cap * t]``, collapsed to the single honest point when the cap
    is 1 (every row would be identical; the first-row tie-break makes
    the collapse selection-preserving).
    """
    if execution_cap_factor < 1.0:
        raise ValueError("execution_cap_factor must be >= 1")
    if scan_points < 2:
        raise ValueError("scan_points must be at least 2")
    if exec_points < 1:
        raise ValueError("exec_points must be at least 1")
    lo, hi = bid_bounds_factor
    if not 0.0 < lo < hi:
        raise ValueError("bid_bounds_factor must satisfy 0 < lo < hi")
    bid_grid = true_value * np.geomspace(lo, hi, scan_points)
    if execution_cap_factor == 1.0:
        exec_grid = np.array([true_value])
    else:
        exec_grid = true_value * np.linspace(1.0, execution_cap_factor, exec_points)
    return bid_grid, exec_grid


def refine_from_grid(
    utility: Callable[[float, float], float],
    bid_grid: np.ndarray,
    exec_grid: np.ndarray,
    row: int,
    col: int,
    grid_utility: float,
    true_value: float,
    execution_cap_factor: float,
) -> tuple[float, float, float]:
    """Golden-section polish of a grid argmax; shared by both paths.

    Refines the bid inside the bracket around the selected column (at
    the selected execution row), then the execution value at the
    refined bid.  Either stage is kept only on a strict improvement, so
    a flat optimum stays at the grid point.  Returns
    ``(utility, bid, execution)``.
    """
    from scipy import optimize  # deferred: scipy only on the refine path

    best = (grid_utility, float(bid_grid[col]), float(exec_grid[row]))
    lo_b = float(bid_grid[max(0, col - 1)])
    hi_b = float(bid_grid[min(bid_grid.size - 1, col + 1)])
    e_here = float(exec_grid[row])
    res = optimize.minimize_scalar(
        lambda b: -utility(b, e_here),
        bounds=(lo_b, hi_b),
        method="bounded",
        options={"xatol": 1e-10 * true_value},
    )
    if -res.fun > best[0]:
        best = (float(-res.fun), float(res.x), e_here)
    if execution_cap_factor > 1.0:
        b_here = best[1]
        res = optimize.minimize_scalar(
            lambda e: -utility(b_here, e),
            bounds=(true_value, execution_cap_factor * true_value),
            method="bounded",
            options={"xatol": 1e-10 * true_value},
        )
        if -res.fun > best[0]:
            best = (float(-res.fun), b_here, float(res.x))
    return best


def best_response_given_stats(
    s_minus: float,
    q_minus: float,
    true_value: float,
    arrival_rate: float,
    *,
    mode: str | None = None,
    compensation: str | None = None,
    bid_bounds_factor: tuple[float, float] = (0.05, 20.0),
    execution_cap_factor: float = 4.0,
    scan_points: int = 48,
    exec_points: int = 8,
    refine: bool = True,
) -> tuple[float, float, float, float]:
    """Grid + optional polish, entirely through the closed form.

    The core of :func:`best_response_fast`, usable directly when the
    caller already maintains ``(S_{-i}, Q_{-i})`` incrementally (the
    dynamics loop).  ``mode`` is any kernel mode (``compensation=`` is
    the pre-1.8 alias).  Returns ``(bid, execution, utility,
    truthful_utility)``; the truth is kept whenever the search does not
    strictly beat it.
    """
    mode = _resolve_mode(mode, compensation)
    t_i = true_value
    truthful = float(
        utility_kernel(t_i, t_i, s_minus, q_minus, arrival_rate, mode=mode)
    )
    bid_grid, exec_grid = strategy_grids(
        t_i,
        bid_bounds_factor=bid_bounds_factor,
        execution_cap_factor=execution_cap_factor,
        scan_points=scan_points,
        exec_points=exec_points,
    )
    surface = utility_grid(
        bid_grid, exec_grid, s_minus, q_minus, arrival_rate, mode=mode,
    )
    row, col = grid_argmax(surface)
    best = (float(surface[row, col]), float(bid_grid[col]), float(exec_grid[row]))
    if refine:
        best = refine_from_grid(
            lambda b, e: float(
                utility_kernel(b, e, s_minus, q_minus, arrival_rate, mode=mode)
            ),
            bid_grid,
            exec_grid,
            row,
            col,
            best[0],
            t_i,
            execution_cap_factor,
        )
    u_star, b_star, e_star = best
    if truthful >= u_star:
        return float(t_i), float(t_i), truthful, truthful
    return b_star, e_star, u_star, truthful


def best_response_fast(
    mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    *,
    other_bids: np.ndarray | None = None,
    other_executions: np.ndarray | None = None,
    bid_bounds_factor: tuple[float, float] = (0.05, 20.0),
    execution_cap_factor: float = 4.0,
    scan_points: int = 48,
    exec_points: int = 8,
    refine: bool = True,
):
    """Vectorized drop-in for :func:`repro.agents.best_response`.

    Same argmax / tie-break contract as the brute-force grid search
    (see :func:`grid_argmax`), evaluated in O(n + grid) instead of
    O(grid * n): one pass to form ``(S_{-i}, Q_{-i})``, one broadcast
    for the surface.  Only meaningful for mechanisms with the closed
    form (:func:`supports` — the verification mechanism, VCG, and
    Archer–Tardos); raises ``TypeError`` otherwise.

    ``other_executions`` generalises the brute-force path's convention
    (others execute exactly as declared) when the caller knows better.
    Returns a :class:`~repro.agents.best_response.BestResponse`.
    """
    from repro.agents.best_response import BestResponse

    mode = kernel_mode_of(mechanism)
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")
    if true_values.size < 2:
        raise ValueError("a best response needs at least two machines")

    base = true_values.copy()
    if other_bids is not None:
        other_bids = as_float_array(other_bids, "other_bids")
        check_positive(other_bids, "other_bids")
        if other_bids.size != true_values.size:
            raise ValueError("other_bids must have one entry per agent")
        base = other_bids.copy()
        base[agent] = true_values[agent]

    s_minus, q_minus = sufficient_statistics(
        base, other_executions if other_executions is not None else base,
        agent=agent,
    )
    t_i = float(true_values[agent])
    bid, execution, utility, truthful = best_response_given_stats(
        s_minus,
        q_minus,
        t_i,
        arrival_rate,
        mode=mode,
        bid_bounds_factor=bid_bounds_factor,
        execution_cap_factor=execution_cap_factor,
        scan_points=scan_points,
        exec_points=exec_points,
        refine=refine,
    )
    return BestResponse(agent, bid, execution, utility, truthful)
