"""Concrete agent behaviours used by experiments and simulations.

The paper's Table 2 manipulations are expressed as a
:class:`ManipulativeAgent` with independent bid and execution factors;
the other behaviours cover the broader strategy space the property
tests and the multi-liar ablation explore.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import check_positive_scalar
from repro.agents.base import Agent

__all__ = [
    "TruthfulAgent",
    "ScaledBidder",
    "SlowExecutor",
    "RandomLiar",
    "ManipulativeAgent",
    "profile_bids",
    "profile_execution_values",
]


class TruthfulAgent(Agent):
    """Bids its true value and executes at full capacity."""

    def bid(self) -> float:
        return self.true_value

    def execution_value(self) -> float:
        return self.true_value


class ManipulativeAgent(Agent):
    """Scales both the bid and the execution value independently.

    This is the general form of the paper's Table 2 manipulations:
    ``bid = bid_factor * t`` and ``t̃ = execution_factor * t`` with
    ``execution_factor >= 1``.
    """

    def __init__(
        self, true_value: float, bid_factor: float, execution_factor: float = 1.0
    ) -> None:
        super().__init__(true_value)
        self.bid_factor = check_positive_scalar(bid_factor, "bid_factor")
        self.execution_factor = check_positive_scalar(
            execution_factor, "execution_factor"
        )
        if self.execution_factor < 1.0:
            raise ValueError("execution_factor must be >= 1 (capacity constraint)")

    def bid(self) -> float:
        return self.bid_factor * self.true_value

    def execution_value(self) -> float:
        return self._check_execution(self.execution_factor * self.true_value)

    def __repr__(self) -> str:
        return (
            f"ManipulativeAgent(true_value={self.true_value:g}, "
            f"bid_factor={self.bid_factor:g}, "
            f"execution_factor={self.execution_factor:g})"
        )


class ScaledBidder(ManipulativeAgent):
    """Misreports the bid by a fixed factor but executes at capacity."""

    def __init__(self, true_value: float, bid_factor: float) -> None:
        super().__init__(true_value, bid_factor, execution_factor=1.0)


class SlowExecutor(ManipulativeAgent):
    """Bids truthfully but executes slower than capacity."""

    def __init__(self, true_value: float, execution_factor: float) -> None:
        super().__init__(true_value, bid_factor=1.0, execution_factor=execution_factor)


class RandomLiar(Agent):
    """Draws a random bid factor and a random (>= 1) execution factor.

    Used by the property tests to sample the deviation space.  All
    randomness comes from the injected generator, keeping runs
    reproducible.
    """

    def __init__(
        self,
        true_value: float,
        rng: np.random.Generator,
        bid_factor_range: tuple[float, float] = (0.2, 5.0),
        execution_factor_range: tuple[float, float] = (1.0, 3.0),
    ) -> None:
        super().__init__(true_value)
        lo, hi = bid_factor_range
        if not 0 < lo <= hi:
            raise ValueError("bid_factor_range must satisfy 0 < lo <= hi")
        elo, ehi = execution_factor_range
        if not 1.0 <= elo <= ehi:
            raise ValueError("execution_factor_range must satisfy 1 <= lo <= hi")
        # Draw once at construction: an agent's strategy is fixed for a run.
        self._bid = float(rng.uniform(lo, hi)) * true_value
        self._execution = float(rng.uniform(elo, ehi)) * true_value

    def bid(self) -> float:
        return self._bid

    def execution_value(self) -> float:
        return self._check_execution(self._execution)


def profile_bids(agents: Sequence[Agent]) -> np.ndarray:
    """Collect the bid vector of an agent profile."""
    if len(agents) == 0:
        raise ValueError("agent profile must be non-empty")
    return np.array([a.bid() for a in agents], dtype=np.float64)


def profile_execution_values(agents: Sequence[Agent]) -> np.ndarray:
    """Collect the execution-value vector of an agent profile."""
    if len(agents) == 0:
        raise ValueError("agent profile must be non-empty")
    return np.array([a.execution_value() for a in agents], dtype=np.float64)
