"""Numeric best response of a single agent under a given mechanism.

For a truthful mechanism the best response is the truth (Theorem 3.1);
for the non-truthful declared-compensation variant the optimiser finds
the profitable overbid.  The search evaluates a shared ``(execution x
bid)`` candidate grid — log-spaced bids across ``bid_bounds_factor``,
linear execution values over ``[t, exec_cap * t]`` — then polishes the
grid argmax with bounded golden-section refinement.

Two interchangeable evaluation methods fill the grid:

* ``"bruteforce"`` — one full :meth:`Mechanism.run` per candidate,
  O(grid * n); works for every mechanism.
* ``"vectorized"`` — the closed-form sufficient-statistic kernel of
  :mod:`repro.agents.kernels`, O(n + grid); available for
  :class:`~repro.mechanism.VerificationMechanism` (both compensation
  modes), :class:`~repro.mechanism.VCGMechanism`, and
  :class:`~repro.mechanism.ArcherTardosMechanism`.  ``"auto"`` (the
  default) picks it whenever it applies.

**Tie-break contract** (shared by both methods, pinned by the property
tests and ``benchmarks/bench_best_response.py``): the grid argmax is
the first maximal entry of the ``(execution x bid)`` surface in
C (row-major) order — ties resolve to the lowest execution index,
then the lowest bid index — and the truth is kept whenever the search
does not *strictly* beat the truthful utility.  With ``refine=False``
the two methods therefore select bit-identical ``(bid, execution)``
grid pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.agents import kernels
from repro.mechanism.base import Mechanism

__all__ = ["BestResponse", "best_response", "best_response_fast"]

_METHODS = ("auto", "bruteforce", "vectorized")


@dataclass(frozen=True)
class BestResponse:
    """Result of a single-agent best-response computation."""

    agent: int
    bid: float
    execution_value: float
    utility: float
    truthful_utility: float

    @property
    def gain(self) -> float:
        """Utility improvement over bidding/executing truthfully."""
        return self.utility - self.truthful_utility

    @property
    def is_truthful(self) -> bool:
        """Whether the best response coincides with truth-telling.

        Judged by utility (gain below numerical noise) rather than by
        the argmax, since flat regions can move the argmax harmlessly.
        """
        return self.gain <= 1e-7 * max(1.0, abs(self.truthful_utility))


def _grid_utilities(utility, bid_grid: np.ndarray, exec_grid: np.ndarray) -> np.ndarray:
    """Brute-force fill of the full candidate surface.

    One mechanism run per cell, hoisted out of the per-execution
    comprehension so both methods produce the same ``(execution x
    bid)``-shaped array and share one argmax/tie-break call.
    """
    return np.array(
        [[utility(float(b), float(e)) for b in bid_grid] for e in exec_grid]
    )


def best_response(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    *,
    other_bids: np.ndarray | None = None,
    bid_bounds_factor: tuple[float, float] = (0.05, 20.0),
    execution_cap_factor: float = 4.0,
    scan_points: int = 48,
    exec_points: int = 8,
    method: str = "auto",
    refine: bool = True,
) -> BestResponse:
    """Best (bid, execution) pair for ``agent`` given the others' bids.

    Parameters
    ----------
    mechanism:
        The mechanism the agent plays against.
    true_values:
        True slopes of all agents; agent ``agent``'s entry is its own
        private type.
    arrival_rate:
        Total rate ``R``.
    other_bids:
        Bids of the other agents.  Defaults to their true values
        (everyone else truthful); pass a full-length vector whose
        ``agent`` entry is ignored to study other profiles.
    bid_bounds_factor:
        Multiplicative search range for the bid around the true value.
    execution_cap_factor:
        Execution values are searched in ``[t, cap * t]``.
    scan_points:
        Size of the log-spaced bid grid.
    exec_points:
        Size of the linear execution grid (collapsed to one honest
        point when the cap is 1).
    method:
        ``"bruteforce"``, ``"vectorized"``, or ``"auto"`` (vectorized
        whenever the mechanism has the closed-form kernel).
    refine:
        Polish the grid argmax with bounded scalar refinement.
        ``refine=False`` returns the raw grid selection, which is
        bit-identical across methods.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if method == "auto":
        method = "vectorized" if kernels.supports(mechanism) else "bruteforce"

    if method == "vectorized":
        return kernels.best_response_fast(
            mechanism,
            true_values,
            arrival_rate,
            agent,
            other_bids=other_bids,
            bid_bounds_factor=bid_bounds_factor,
            execution_cap_factor=execution_cap_factor,
            scan_points=scan_points,
            exec_points=exec_points,
            refine=refine,
        )

    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")

    base = true_values.copy()
    if other_bids is not None:
        other_bids = as_float_array(other_bids, "other_bids")
        check_positive(other_bids, "other_bids")
        if other_bids.size != true_values.size:
            raise ValueError("other_bids must have one entry per agent")
        base = other_bids.copy()
        base[agent] = true_values[agent]

    t_i = float(true_values[agent])

    def utility(bid: float, execution: float) -> float:
        bids = base.copy()
        bids[agent] = bid
        execs = base.copy()
        execs[agent] = execution
        outcome = mechanism.run(bids, arrival_rate, execs, true_values=None)
        return float(outcome.payments.utility[agent])

    truthful = utility(t_i, t_i)

    bid_grid, exec_grid = kernels.strategy_grids(
        t_i,
        bid_bounds_factor=bid_bounds_factor,
        execution_cap_factor=execution_cap_factor,
        scan_points=scan_points,
        exec_points=exec_points,
    )
    surface = _grid_utilities(utility, bid_grid, exec_grid)
    row, col = kernels.grid_argmax(surface)
    best = (float(surface[row, col]), float(bid_grid[col]), float(exec_grid[row]))
    if refine:
        best = kernels.refine_from_grid(
            utility,
            bid_grid,
            exec_grid,
            row,
            col,
            best[0],
            t_i,
            execution_cap_factor,
        )
    u_star, b_star, e_star = best

    # Keep truth if the search did not strictly beat it (flat optimum).
    if truthful >= u_star:
        return BestResponse(agent, t_i, t_i, truthful, truthful)
    return BestResponse(agent, b_star, e_star, u_star, truthful)


def best_response_fast(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    **kwargs,
) -> BestResponse:
    """Alias for the kernel path; see :func:`repro.agents.kernels.best_response_fast`."""
    return kernels.best_response_fast(
        mechanism, true_values, arrival_rate, agent, **kwargs
    )
