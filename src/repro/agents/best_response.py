"""Numeric best response of a single agent under a given mechanism.

For a truthful mechanism the best response is the truth (Theorem 3.1);
for the non-truthful declared-compensation variant the optimiser finds
the profitable overbid.  The optimiser combines a coarse log-spaced
bid scan with a golden-section refinement; execution values are
optimised over ``[t, exec_cap * t]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.mechanism.base import Mechanism

__all__ = ["BestResponse", "best_response"]


@dataclass(frozen=True)
class BestResponse:
    """Result of a single-agent best-response computation."""

    agent: int
    bid: float
    execution_value: float
    utility: float
    truthful_utility: float

    @property
    def gain(self) -> float:
        """Utility improvement over bidding/executing truthfully."""
        return self.utility - self.truthful_utility

    @property
    def is_truthful(self) -> bool:
        """Whether the best response coincides with truth-telling.

        Judged by utility (gain below numerical noise) rather than by
        the argmax, since flat regions can move the argmax harmlessly.
        """
        return self.gain <= 1e-7 * max(1.0, abs(self.truthful_utility))


def _utility(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    bid: float,
    execution: float,
) -> float:
    bids = true_values.copy()
    bids[agent] = bid
    execs = true_values.copy()
    execs[agent] = execution
    outcome = mechanism.run(bids, arrival_rate, execs, true_values=true_values)
    return float(outcome.payments.utility[agent])


def best_response(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    *,
    other_bids: np.ndarray | None = None,
    bid_bounds_factor: tuple[float, float] = (0.05, 20.0),
    execution_cap_factor: float = 4.0,
    scan_points: int = 48,
) -> BestResponse:
    """Best (bid, execution) pair for ``agent`` given the others' bids.

    Parameters
    ----------
    mechanism:
        The mechanism the agent plays against.
    true_values:
        True slopes of all agents; agent ``agent``'s entry is its own
        private type.
    arrival_rate:
        Total rate ``R``.
    other_bids:
        Bids of the other agents.  Defaults to their true values
        (everyone else truthful); pass a full-length vector whose
        ``agent`` entry is ignored to study other profiles.
    bid_bounds_factor:
        Multiplicative search range for the bid around the true value.
    execution_cap_factor:
        Execution values are searched in ``[t, cap * t]``.
    scan_points:
        Size of the coarse log-spaced bid grid seeding the refinement.
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")
    if execution_cap_factor < 1.0:
        raise ValueError("execution_cap_factor must be >= 1")

    base = true_values.copy()
    if other_bids is not None:
        other_bids = as_float_array(other_bids, "other_bids")
        check_positive(other_bids, "other_bids")
        if other_bids.size != true_values.size:
            raise ValueError("other_bids must have one entry per agent")
        base = other_bids.copy()
        base[agent] = true_values[agent]

    t_i = true_values[agent]

    def utility(bid: float, execution: float) -> float:
        bids = base.copy()
        bids[agent] = bid
        execs = base.copy()
        execs[agent] = execution
        outcome = mechanism.run(
            bids, arrival_rate, execs, true_values=None
        )
        return float(outcome.payments.utility[agent])

    truthful = utility(t_i, t_i)

    # For each candidate execution value, optimise the bid with a scan
    # plus bounded scalar refinement; then optimise over the execution
    # value the same way.  Utilities are smooth in both arguments, so
    # this two-stage search is reliable at this problem size.
    lo, hi = bid_bounds_factor
    bid_grid = t_i * np.geomspace(lo, hi, scan_points)

    def best_bid_for(execution: float) -> tuple[float, float]:
        utilities = np.array([utility(b, execution) for b in bid_grid])
        k = int(np.argmax(utilities))
        lo_b = bid_grid[max(0, k - 1)]
        hi_b = bid_grid[min(scan_points - 1, k + 1)]
        res = optimize.minimize_scalar(
            lambda b: -utility(b, execution),
            bounds=(lo_b, hi_b),
            method="bounded",
            options={"xatol": 1e-10 * t_i},
        )
        return float(res.x), float(-res.fun)

    exec_grid = t_i * np.linspace(1.0, execution_cap_factor, 8)
    best = (-np.inf, t_i, t_i)
    for e in exec_grid:
        b, u = best_bid_for(float(e))
        if u > best[0]:
            best = (u, b, float(e))

    # Refine the execution value around the best grid point.
    _, b_star, e_star = best
    res = optimize.minimize_scalar(
        lambda e: -utility(b_star, e),
        bounds=(t_i, execution_cap_factor * t_i),
        method="bounded",
        options={"xatol": 1e-10 * t_i},
    )
    if -res.fun > best[0]:
        best = (float(-res.fun), b_star, float(res.x))
    u_star, b_star, e_star = best

    # Keep truth if the search did not strictly beat it (flat optimum).
    if truthful >= u_star:
        return BestResponse(agent, float(t_i), float(t_i), truthful, truthful)
    return BestResponse(agent, b_star, e_star, u_star, truthful)
