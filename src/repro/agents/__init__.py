"""Agent behaviour models, best-response computation, and bidding games.

The paper's agents are machines that choose a *bid* (declared latency
slope) and an *execution value* (the slope they actually run at,
``t̃ >= t``).  This subpackage provides:

* :mod:`repro.agents.behaviors` — fixed strategy profiles (truthful,
  over/under bidders, slow executors, random liars) used by the
  experiments and the protocol simulation;
* :mod:`repro.agents.best_response` — numeric best response of a single
  agent to the others' bids under a given mechanism;
* :mod:`repro.agents.kernels` — closed-form utility kernels that
  collapse the best-response search to O(n + grid) arithmetic via the
  sufficient statistics ``(S_{-i}, Q_{-i})``;
* :mod:`repro.agents.game` — iterated best-response dynamics of the
  induced bidding game, demonstrating that the truthful profile is the
  unique fixed point under the verification mechanism.
"""

from repro.agents.base import Agent
from repro.agents.behaviors import (
    TruthfulAgent,
    ScaledBidder,
    SlowExecutor,
    RandomLiar,
    ManipulativeAgent,
    profile_bids,
    profile_execution_values,
)
from repro.agents.best_response import best_response, best_response_fast, BestResponse
from repro.agents.game import BestResponseDynamics, BiddingGame, GameTrace
from repro.agents.kernels import (
    sufficient_statistics,
    utility_kernel,
    utility_grid,
)
from repro.agents.learning import (
    LearningTrace,
    MultiplicativeWeightsBidder,
    simulate_learning,
)

__all__ = [
    "Agent",
    "TruthfulAgent",
    "ScaledBidder",
    "SlowExecutor",
    "RandomLiar",
    "ManipulativeAgent",
    "profile_bids",
    "profile_execution_values",
    "best_response",
    "best_response_fast",
    "BestResponse",
    "BestResponseDynamics",
    "BiddingGame",
    "GameTrace",
    "sufficient_statistics",
    "utility_kernel",
    "utility_grid",
    "LearningTrace",
    "MultiplicativeWeightsBidder",
    "simulate_learning",
]
