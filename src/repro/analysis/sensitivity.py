"""Sensitivity sweeps: how the paper's observations scale.

The paper evaluates one fixed configuration (16 machines, R = 20).
These sweeps extend the evaluation along the three axes a deployer
would care about: system size, offered load, and heterogeneity.  Each
sweep reports the truthful optimum, the frugality ratio, and the
degradation caused by a canonical single-machine manipulation, so the
benches can show which paper observations are configuration artefacts
and which are structural.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_scalar
from repro.allocation.pr import optimal_total_latency
from repro.analysis.degradation import degradation_percent, realised_latency
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.system.cluster import Cluster, random_cluster

__all__ = [
    "SweepResult",
    "sweep_system_size",
    "sweep_arrival_rate",
    "sweep_heterogeneity",
]

#: the canonical manipulation used across sweeps: Low2 (underbid 2x,
#: execute 2x slower) applied to the fastest machine, the paper's most
#: damaging single-machine scenario.
_CANONICAL_BID_FACTOR = 0.5
_CANONICAL_EXEC_FACTOR = 2.0


@dataclass(frozen=True)
class SweepResult:
    """One point of a sensitivity sweep."""

    parameter: float
    optimal_latency: float
    frugality_ratio: float
    canonical_degradation_percent: float


def _evaluate(cluster: Cluster, arrival_rate: float) -> SweepResult:
    t = cluster.true_values
    optimum = optimal_total_latency(t, arrival_rate)

    mechanism = VerificationMechanism()
    outcome = mechanism.run(t, arrival_rate, t, true_values=t)

    fastest = int(np.argmin(t))
    bids = t.copy()
    executions = t.copy()
    bids[fastest] *= _CANONICAL_BID_FACTOR
    executions[fastest] *= _CANONICAL_EXEC_FACTOR
    realised = realised_latency(t, bids, executions, arrival_rate)

    return SweepResult(
        parameter=float("nan"),  # filled by the sweep drivers
        optimal_latency=optimum,
        frugality_ratio=outcome.frugality_ratio,
        canonical_degradation_percent=degradation_percent(realised, optimum),
    )


def _with_parameter(result: SweepResult, parameter: float) -> SweepResult:
    return SweepResult(
        parameter=parameter,
        optimal_latency=result.optimal_latency,
        frugality_ratio=result.frugality_ratio,
        canonical_degradation_percent=result.canonical_degradation_percent,
    )


def sweep_system_size(
    sizes: list[int],
    rng: np.random.Generator,
    *,
    arrival_rate_per_machine: float = 1.25,
    t_range: tuple[float, float] = (1.0, 10.0),
) -> list[SweepResult]:
    """Sweep the number of machines at constant load per machine.

    The arrival rate grows with the system (``R = rate_per_machine * n``)
    so the sweep isolates the effect of scale rather than of lightening
    load.
    """
    check_positive_scalar(arrival_rate_per_machine, "arrival_rate_per_machine")
    out = []
    for n in sizes:
        if n < 2:
            raise ValueError("system size must be at least 2")
        cluster = random_cluster(n, rng, t_range=t_range)
        result = _evaluate(cluster, arrival_rate_per_machine * n)
        out.append(_with_parameter(result, float(n)))
    return out


def sweep_arrival_rate(
    cluster: Cluster,
    rates: list[float],
) -> list[SweepResult]:
    """Sweep the offered load on a fixed cluster.

    For linear latencies everything scales as ``R^2``, so the
    degradation percentages and frugality ratio are *invariant* in
    ``R`` — a structural fact (verified by tests) that the sweep makes
    visible.
    """
    out = []
    for rate in rates:
        result = _evaluate(cluster, check_positive_scalar(rate, "rate"))
        out.append(_with_parameter(result, float(rate)))
    return out


def sweep_heterogeneity(
    n_machines: int,
    spreads: list[float],
    rng: np.random.Generator,
    *,
    arrival_rate: float = 20.0,
) -> list[SweepResult]:
    """Sweep the slow/fast spread of the cluster at fixed size and load.

    ``spread = max t / min t``; 1.0 is a homogeneous cluster.  The
    damage a single fast-machine liar can do grows with heterogeneity
    because the PR allocation concentrates load on fast machines.
    """
    if n_machines < 2:
        raise ValueError("n_machines must be at least 2")
    out = []
    for spread in spreads:
        spread = check_positive_scalar(spread, "spread")
        if spread < 1.0:
            raise ValueError("spread must be >= 1")
        cluster = random_cluster(n_machines, rng, t_range=(1.0, spread))
        result = _evaluate(cluster, arrival_rate)
        out.append(_with_parameter(result, spread))
    return out
