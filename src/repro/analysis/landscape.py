"""Utility landscapes over the (bid, execution) deviation plane.

For documentation, debugging, and teaching: evaluate one agent's
utility on a dense grid of bid and execution factors (others truthful)
and summarise the geometry — where the maximum sits, how steep the
punishment gradient is, and an ASCII rendering for terminal inspection.
The test suite uses the landscape to assert the *global* structure that
the pointwise audits only sample: under the truthful mechanism the
unique maximum of the whole surface is the truth-telling corner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.mechanism.base import Mechanism

__all__ = ["UtilityLandscape", "utility_landscape"]


@dataclass(frozen=True)
class UtilityLandscape:
    """Utility surface of one agent over deviation factors.

    ``utilities[i, j]`` is the agent's utility when bidding
    ``bid_factors[i] * t`` and executing at ``exec_factors[j] * t``.
    """

    agent: int
    bid_factors: np.ndarray
    exec_factors: np.ndarray
    utilities: np.ndarray

    @property
    def argmax(self) -> tuple[float, float]:
        """(bid_factor, exec_factor) of the utility maximum."""
        i, j = np.unravel_index(int(np.argmax(self.utilities)), self.utilities.shape)
        return float(self.bid_factors[i]), float(self.exec_factors[j])

    @property
    def max_utility(self) -> float:
        """Largest utility on the grid."""
        return float(self.utilities.max())

    def utility_at_truth(self) -> float:
        """Utility at the grid point closest to (1, 1)."""
        i = int(np.argmin(np.abs(self.bid_factors - 1.0)))
        j = int(np.argmin(np.abs(self.exec_factors - 1.0)))
        return float(self.utilities[i, j])

    def truth_is_global_max(self, tolerance: float = 1e-9) -> bool:
        """Whether no grid point beats the truthful corner."""
        return self.max_utility <= self.utility_at_truth() + tolerance

    def render(self, width: int = 8) -> str:
        """ASCII heat map: '#' near the max, '.' near the min."""
        lo, hi = self.utilities.min(), self.utilities.max()
        span = hi - lo if hi > lo else 1.0
        glyphs = " .:-=+*#"
        lines = ["exec\\bid " + " ".join(f"{b:>{width}.2f}" for b in self.bid_factors)]
        for j, ef in enumerate(self.exec_factors):
            cells = []
            for i in range(self.bid_factors.size):
                level = int((self.utilities[i, j] - lo) / span * (len(glyphs) - 1))
                cells.append(glyphs[level] * width)
            lines.append(f"{ef:>8.2f} " + " ".join(cells))
        return "\n".join(lines)


def utility_landscape(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    *,
    bid_factors: np.ndarray | None = None,
    exec_factors: np.ndarray | None = None,
) -> UtilityLandscape:
    """Evaluate one agent's utility over the full deviation grid.

    Other agents bid truthfully and execute at capacity.  Execution
    factors below 1 are rejected (capacity constraint).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")

    if bid_factors is None:
        bid_factors = np.geomspace(0.2, 5.0, 21)
    else:
        bid_factors = as_float_array(bid_factors, "bid_factors")
        check_positive(bid_factors, "bid_factors")
    if exec_factors is None:
        exec_factors = np.linspace(1.0, 3.0, 11)
    else:
        exec_factors = as_float_array(exec_factors, "exec_factors")
        if np.any(exec_factors < 1.0):
            raise ValueError("exec_factors must be >= 1 (capacity constraint)")

    t_i = true_values[agent]

    # Fast path: the verification mechanism is closed form, so the whole
    # grid evaluates as one vectorised batch (~100x; bit-identical to
    # the scalar loop, asserted by the test suite).
    from repro.mechanism.compensation_bonus import VerificationMechanism

    if isinstance(mechanism, VerificationMechanism):
        from repro.mechanism.batch import batch_utility_of_agent

        utilities = batch_utility_of_agent(
            agent,
            (bid_factors * t_i)[:, None],
            (exec_factors * t_i)[None, :],
            true_values,
            arrival_rate,
            compensation=mechanism.compensation_mode,
        )
    else:
        utilities = np.empty((bid_factors.size, exec_factors.size))
        for i, bf in enumerate(bid_factors):
            bids = true_values.copy()
            bids[agent] = bf * t_i
            for j, ef in enumerate(exec_factors):
                executions = true_values.copy()
                executions[agent] = ef * t_i
                outcome = mechanism.run(bids, arrival_rate, executions)
                utilities[i, j] = float(outcome.payments.utility[agent])

    return UtilityLandscape(
        agent=agent,
        bid_factors=bid_factors,
        exec_factors=exec_factors,
        utilities=utilities,
    )
