"""Frugality: how much a mechanism pays relative to the agents' costs.

The paper's Figure 6 observes that the verification mechanism's total
payment stays within a factor ~2.5 of the total valuation, with the
voluntary participation property forcing the factor above 1.  This
module computes that ratio per scenario and compares mechanisms
(verification vs VCG vs Archer–Tardos) on truthful inputs — the A5
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.experiments.figures import run_all_scenarios
from repro.experiments.table1 import Table1Configuration
from repro.mechanism.base import Mechanism

__all__ = [
    "FrugalityRecord",
    "frugality_by_scenario",
    "frugality_across_mechanisms",
]


@dataclass(frozen=True)
class FrugalityRecord:
    """Payment structure of one mechanism run."""

    label: str
    total_payment: float
    total_valuation: float

    @property
    def ratio(self) -> float:
        """Total payment over total agent cost (1 <= ratio for VP mechanisms)."""
        if self.total_valuation == 0.0:
            return float("nan")
        return self.total_payment / self.total_valuation


def frugality_by_scenario(
    config: Table1Configuration | None = None,
) -> list[FrugalityRecord]:
    """Figure 6 series: payment structure for every Table 2 scenario."""
    records = run_all_scenarios(config)
    out = []
    for record in records:
        payments = record.outcome.payments
        out.append(
            FrugalityRecord(
                label=record.scenario.name,
                total_payment=payments.total_payment,
                total_valuation=payments.total_valuation_magnitude,
            )
        )
    return out


def frugality_across_mechanisms(
    mechanisms: dict[str, Mechanism],
    true_values: np.ndarray,
    arrival_rate: float,
) -> list[FrugalityRecord]:
    """Payment structure of several mechanisms on the truthful profile.

    All mechanisms see the same truthful bids and executions, so the
    comparison isolates the payment rules (A5 ablation).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    out = []
    for label, mechanism in mechanisms.items():
        outcome = mechanism.run(
            true_values, arrival_rate, true_values, true_values=true_values
        )
        out.append(
            FrugalityRecord(
                label=label,
                total_payment=outcome.payments.total_payment,
                total_valuation=outcome.payments.total_valuation_magnitude,
            )
        )
    return out
