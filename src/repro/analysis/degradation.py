"""Latency degradation caused by misreporting and slow execution.

Includes the paper's conjectured extension: "We expect even larger
increase if more than one computer does not report its true value and
does not use its full processing capacity."  ``multi_liar_degradation``
quantifies it by applying the same manipulation to a growing set of
machines.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.allocation.pr import optimal_total_latency, pr_loads
from repro.experiments.table2 import PAPER_SCENARIOS, Scenario

__all__ = [
    "degradation_percent",
    "scenario_degradations",
    "multi_liar_degradation",
]


def degradation_percent(realised: float, optimum: float) -> float:
    """Latency increase over the optimum, in percent."""
    optimum = check_positive_scalar(optimum, "optimum")
    return 100.0 * (realised / optimum - 1.0)


def realised_latency(
    true_values: np.ndarray,
    bids: np.ndarray,
    execution_values: np.ndarray,
    arrival_rate: float,
) -> float:
    """Realised ``L`` when allocation follows bids but execution follows t̃."""
    loads = pr_loads(bids, arrival_rate)
    execution_values = np.asarray(execution_values, dtype=np.float64)
    return float(np.dot(execution_values, loads**2))


def scenario_degradations(
    true_values: np.ndarray,
    arrival_rate: float,
    scenarios: tuple[Scenario, ...] = PAPER_SCENARIOS,
    manipulator: int = 0,
) -> dict[str, float]:
    """Degradation percentage for each scenario (Figure 1, relative view)."""
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    optimum = optimal_total_latency(true_values, arrival_rate)
    out: dict[str, float] = {}
    for scenario in scenarios:
        bids = true_values.copy()
        executions = true_values.copy()
        bids[manipulator] *= scenario.bid_factor
        executions[manipulator] *= scenario.execution_factor
        realised = realised_latency(true_values, bids, executions, arrival_rate)
        out[scenario.name] = degradation_percent(realised, optimum)
    return out


def multi_liar_degradation(
    true_values: np.ndarray,
    arrival_rate: float,
    *,
    bid_factor: float,
    execution_factor: float,
    max_liars: int | None = None,
) -> np.ndarray:
    """Degradation as the same manipulation spreads to more machines.

    Machines ``0 .. k-1`` apply (bid_factor, execution_factor) for
    ``k = 0 .. max_liars``; entry ``k`` of the returned array is the
    percent degradation with ``k`` liars.  Entry 0 is always 0 (all
    truthful).  The sequence is monotonically context-dependent but, as
    the paper conjectures, grows with ``k`` for latency-increasing
    manipulations (verified in the A1 bench).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    check_positive_scalar(bid_factor, "bid_factor")
    if execution_factor < 1.0:
        raise ValueError("execution_factor must be >= 1")
    n = true_values.size
    if max_liars is None:
        max_liars = n
    if not 0 <= max_liars <= n:
        raise ValueError(f"max_liars must be in [0, {n}]")

    optimum = optimal_total_latency(true_values, arrival_rate)
    out = np.empty(max_liars + 1)
    for k in range(max_liars + 1):
        bids = true_values.copy()
        executions = true_values.copy()
        bids[:k] *= bid_factor
        executions[:k] *= execution_factor
        realised = realised_latency(true_values, bids, executions, arrival_rate)
        out[k] = degradation_percent(realised, optimum)
    return out
