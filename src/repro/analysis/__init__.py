"""Quantitative analyses beyond the paper's figures.

* :mod:`repro.analysis.degradation` — latency degradation metrics and
  the multi-liar extension the paper conjectures ("we expect even
  larger increase if more than one computer does not report its true
  value");
* :mod:`repro.analysis.frugality` — payment-structure analysis across
  mechanisms and configurations;
* :mod:`repro.analysis.sensitivity` — sweeps over system size, arrival
  rate, and heterogeneity;
* :mod:`repro.analysis.equilibrium` — dominant-strategy verification on
  dense deviation grids and epsilon-truthfulness under noisy
  verification.
"""

from repro.analysis.degradation import (
    degradation_percent,
    scenario_degradations,
    multi_liar_degradation,
)
from repro.analysis.frugality import (
    FrugalityRecord,
    frugality_by_scenario,
    frugality_across_mechanisms,
)
from repro.analysis.sensitivity import (
    SweepResult,
    sweep_system_size,
    sweep_arrival_rate,
    sweep_heterogeneity,
)
from repro.analysis.wardrop import (
    WardropResult,
    WardropSweep,
    wardrop_equilibrium,
    price_of_anarchy,
    price_of_anarchy_sweep,
)
from repro.analysis.landscape import UtilityLandscape, utility_landscape
from repro.analysis.collusion import (
    CoalitionDeviation,
    best_pair_deviation,
    pairwise_collusion_scan,
)
from repro.analysis.equilibrium import (
    dominant_strategy_grid,
    epsilon_truthfulness_under_noise,
)

__all__ = [
    "degradation_percent",
    "scenario_degradations",
    "multi_liar_degradation",
    "FrugalityRecord",
    "frugality_by_scenario",
    "frugality_across_mechanisms",
    "SweepResult",
    "sweep_system_size",
    "sweep_arrival_rate",
    "sweep_heterogeneity",
    "WardropResult",
    "WardropSweep",
    "wardrop_equilibrium",
    "price_of_anarchy",
    "price_of_anarchy_sweep",
    "UtilityLandscape",
    "utility_landscape",
    "CoalitionDeviation",
    "best_pair_deviation",
    "pairwise_collusion_scan",
    "dominant_strategy_grid",
    "epsilon_truthfulness_under_noise",
]
