"""Equilibrium analyses: dominant strategies and noisy verification.

* :func:`dominant_strategy_grid` checks truthfulness not just against
  truthful opponents (Theorem 3.1's audit in
  :mod:`repro.mechanism.properties`) but against *arbitrary* opponent
  bid profiles — the full dominant-strategy property.
* :func:`epsilon_truthfulness_under_noise` quantifies how much of the
  incentive guarantee survives when the verification step estimates
  execution values with sampling noise (the realistic protocol setting
  from :mod:`repro.protocol`): with noisy ``t̂`` the mechanism is only
  epsilon-truthful, and epsilon shrinks as observations accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_float_array,
    check_index,
    check_positive,
    check_positive_scalar,
)
from repro.mechanism.base import Mechanism

__all__ = [
    "GridCheckResult",
    "dominant_strategy_grid",
    "epsilon_truthfulness_under_noise",
]


@dataclass(frozen=True)
class GridCheckResult:
    """Outcome of a dominant-strategy grid check."""

    max_gain: float
    profiles_checked: int
    deviations_checked: int

    @property
    def holds(self) -> bool:
        """Whether truth-telling dominated on every checked profile."""
        return self.max_gain <= 1e-9


def dominant_strategy_grid(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    rng: np.random.Generator,
    *,
    n_opponent_profiles: int = 20,
    bid_factors: tuple[float, ...] = (0.25, 0.5, 0.9, 1.1, 2.0, 4.0),
    exec_factors: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0),
    opponent_factor_range: tuple[float, float] = (0.25, 4.0),
) -> GridCheckResult:
    """Check dominance of truth-telling against random opponent profiles.

    For each sampled opponent bid profile (opponents execute as they
    bid), compare the agent's truthful utility against every deviation
    on the (bid, execution) grid.  A truthful mechanism must never show
    a positive gain — this is stronger than the truthful-opponents
    audit because dominance quantifies over *all* opponent behaviour.
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")
    if any(f < 1.0 for f in exec_factors):
        raise ValueError("execution factors must be >= 1")

    t_i = true_values[agent]
    n = true_values.size
    lo, hi = opponent_factor_range

    max_gain = -np.inf
    deviations = 0
    for _ in range(n_opponent_profiles):
        factors = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n))
        opponent_bids = true_values * factors
        opponent_bids[agent] = t_i  # placeholder; overwritten below

        def utility(bid: float, execution: float) -> float:
            bids = opponent_bids.copy()
            bids[agent] = bid
            execs = opponent_bids.copy()
            execs[agent] = execution
            outcome = mechanism.run(bids, arrival_rate, execs)
            return float(outcome.payments.utility[agent])

        truthful = utility(t_i, t_i)
        for bf in bid_factors:
            for ef in exec_factors:
                gain = utility(bf * t_i, ef * t_i) - truthful
                deviations += 1
                if gain > max_gain:
                    max_gain = gain

    return GridCheckResult(
        max_gain=float(max_gain),
        profiles_checked=n_opponent_profiles,
        deviations_checked=deviations,
    )


def epsilon_truthfulness_under_noise(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    agent: int,
    rng: np.random.Generator,
    *,
    noise_relative_std: float,
    n_samples: int = 200,
    bid_factors: tuple[float, ...] = (0.5, 0.8, 1.0, 1.25, 2.0),
) -> float:
    """Expected best deviation gain when verification is noisy.

    Models the protocol's estimator as ``t̂_i = t̃_i (1 + noise)`` with
    ``noise ~ Normal(0, noise_relative_std)`` applied independently per
    machine and per sample, and returns the Monte-Carlo estimate of the
    largest *expected* utility gain any scanned bid deviation achieves
    (executions held at capacity — noise already perturbs the observed
    values).  The returned epsilon -> 0 as the noise vanishes.
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    agent = check_index(agent, true_values.size, "agent")
    if noise_relative_std < 0.0:
        raise ValueError("noise_relative_std must be non-negative")
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")

    t_i = true_values[agent]
    n = true_values.size

    def expected_utility(bid: float) -> float:
        bids = true_values.copy()
        bids[agent] = bid
        total = 0.0
        for _ in range(n_samples):
            noise = 1.0 + rng.normal(0.0, noise_relative_std, size=n)
            observed = np.maximum(true_values * noise, 1e-9)
            outcome = mechanism.run(bids, arrival_rate, observed)
            # The agent's *realised* cost uses its true execution value;
            # the noisy observation only distorts the payment.
            payment = float(outcome.payments.payment[agent])
            cost = t_i * float(outcome.loads[agent]) ** 2
            total += payment - cost
        return total / n_samples

    truthful = expected_utility(t_i)
    best = max(expected_utility(bf * t_i) for bf in bid_factors if bf != 1.0)
    return max(0.0, best - truthful)
