"""Coalition deviations: is the mechanism group-strategyproof?

Theorems 3.1/3.2 are *individual* guarantees.  VCG-family mechanisms
are famously vulnerable to coalitions: two agents can misreport jointly
so that their combined utility (allowing internal side payments)
exceeds their combined truthful utility, even though neither could gain
alone.  This module scans pairwise coalitions over a bid-factor grid
and reports the best joint deviation — making the boundary of the
paper's guarantee measurable (A11 in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro._validation import (
    as_float_array,
    check_positive,
    check_positive_scalar,
)
from repro.mechanism.base import Mechanism

__all__ = ["CoalitionDeviation", "best_pair_deviation", "pairwise_collusion_scan"]


@dataclass(frozen=True)
class CoalitionDeviation:
    """Most profitable joint misreport found for one coalition."""

    members: tuple[int, ...]
    truthful_joint_utility: float
    best_joint_utility: float
    best_bids: tuple[float, ...]

    @property
    def gain(self) -> float:
        """Joint utility improvement (transferable via side payments)."""
        return self.best_joint_utility - self.truthful_joint_utility

    @property
    def profitable(self) -> bool:
        """Whether the coalition strictly beats joint truth-telling."""
        return self.gain > 1e-7 * max(1.0, abs(self.truthful_joint_utility))


def _joint_utility(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    members: tuple[int, ...],
    member_bids: tuple[float, ...],
) -> float:
    bids = true_values.copy()
    for agent, bid in zip(members, member_bids):
        bids[agent] = bid
    executions = true_values.copy()  # colluders still execute at capacity
    outcome = mechanism.run(bids, arrival_rate, executions)
    return float(sum(outcome.payments.utility[list(members)]))


def best_pair_deviation(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    pair: tuple[int, int],
    bid_factors: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0),
) -> CoalitionDeviation:
    """Scan a joint bid grid for one pair of agents.

    Both members bid a grid point times their true value; everyone else
    is truthful; executions stay at capacity (execution manipulation is
    individually dominated and only hurts a coalition further).
    """
    true_values = as_float_array(true_values, "true_values")
    check_positive(true_values, "true_values")
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    i, j = pair
    if i == j:
        raise ValueError("a coalition needs two distinct members")

    truthful = _joint_utility(
        mechanism, true_values, arrival_rate, (i, j),
        (float(true_values[i]), float(true_values[j])),
    )

    # Fast path: evaluate the whole joint grid as one vectorised batch
    # when the mechanism is the closed-form verification mechanism.
    from repro.mechanism.compensation_bonus import VerificationMechanism

    grid = np.asarray(bid_factors, dtype=np.float64)
    if isinstance(mechanism, VerificationMechanism):
        from repro.mechanism.batch import batch_run

        fi, fj = np.meshgrid(grid, grid, indexing="ij")
        k = fi.size
        bids = np.tile(true_values, (k, 1))
        bids[:, i] = fi.ravel() * true_values[i]
        bids[:, j] = fj.ravel() * true_values[j]
        executions = np.tile(true_values, (k, 1))
        outcome = batch_run(
            bids, arrival_rate, executions,
            compensation=mechanism.compensation_mode,
        )
        joint = outcome.utility[:, i] + outcome.utility[:, j]
        best_index = int(np.argmax(joint))
        best = (
            float(joint[best_index]),
            (float(bids[best_index, i]), float(bids[best_index, j])),
        )
    else:
        best = (truthful, (float(true_values[i]), float(true_values[j])))
        for fi in grid:
            for fj in grid:
                pair_bids = (float(fi * true_values[i]), float(fj * true_values[j]))
                joint = _joint_utility(
                    mechanism, true_values, arrival_rate, (i, j), pair_bids
                )
                if joint > best[0]:
                    best = (joint, pair_bids)

    if truthful >= best[0]:
        best = (truthful, (float(true_values[i]), float(true_values[j])))

    return CoalitionDeviation(
        members=(i, j),
        truthful_joint_utility=truthful,
        best_joint_utility=best[0],
        best_bids=best[1],
    )


def pairwise_collusion_scan(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    bid_factors: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0),
) -> list[CoalitionDeviation]:
    """Best joint deviation for every pair, sorted by gain (descending)."""
    true_values = as_float_array(true_values, "true_values")
    results = [
        best_pair_deviation(mechanism, true_values, arrival_rate, pair, bid_factors)
        for pair in combinations(range(true_values.size), 2)
    ]
    results.sort(key=lambda d: d.gain, reverse=True)
    return results
