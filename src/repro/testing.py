"""Public invariant checkers for downstream test suites.

A user extending this library (a new latency model, a modified payment
rule, a custom cluster) needs to re-verify the same invariants this
repository pins.  This module packages them as importable assertions:

>>> import numpy as np
>>> from repro import VerificationMechanism
>>> from repro.testing import assert_payment_identities
>>> outcome = VerificationMechanism().run(np.array([1.0, 2.0]), 5.0)
>>> assert_payment_identities(outcome)

Each checker raises ``AssertionError`` with a diagnostic message on
violation and returns ``None`` on success, so they compose with any
test framework.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.pr import optimal_latency_excluding_each
from repro.mechanism.base import Mechanism
from repro.mechanism.properties import truthfulness_audit
from repro.types import AllocationResult, MechanismOutcome

__all__ = [
    "assert_feasible_allocation",
    "assert_payment_identities",
    "assert_voluntary_participation",
    "assert_truthful_on_grid",
]


def assert_feasible_allocation(
    allocation: AllocationResult, *, rtol: float = 1e-9
) -> None:
    """Positivity and conservation (the paper's feasibility conditions)."""
    loads = allocation.loads
    if np.any(loads < 0.0):
        worst = int(np.argmin(loads))
        raise AssertionError(
            f"positivity violated: load {loads[worst]:g} at machine {worst}"
        )
    total = float(loads.sum())
    if abs(total - allocation.arrival_rate) > rtol * allocation.arrival_rate:
        raise AssertionError(
            f"conservation violated: loads sum to {total:g}, "
            f"expected {allocation.arrival_rate:g}"
        )


def assert_payment_identities(
    outcome: MechanismOutcome, *, rtol: float = 1e-9
) -> None:
    """The accounting identities of Definition 3.3.

    Checks ``payment = compensation + bonus``, ``utility = payment +
    valuation`` and, for verification-mechanism outcomes, the bonus
    formula ``B_i = L_{-i} - L(x, t̃)``.
    """
    payments = outcome.payments
    np.testing.assert_allclose(
        payments.payment,
        payments.compensation + payments.bonus,
        rtol=rtol,
        err_msg="payment != compensation + bonus",
    )
    np.testing.assert_allclose(
        payments.utility,
        payments.payment + payments.valuation,
        rtol=rtol,
        err_msg="utility != payment + valuation",
    )
    if outcome.metadata.get("mechanism") == "VerificationMechanism":
        excluded = optimal_latency_excluding_each(
            outcome.allocation.bids, outcome.allocation.arrival_rate
        )
        np.testing.assert_allclose(
            payments.bonus,
            excluded - outcome.realised_latency,
            rtol=rtol,
            err_msg="bonus != L_{-i} - realised latency",
        )


def assert_voluntary_participation(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    *,
    tolerance: float = 1e-9,
) -> None:
    """Theorem 3.2: truthful utilities are non-negative."""
    true_values = np.asarray(true_values, dtype=np.float64)
    outcome = mechanism.run(
        true_values, arrival_rate, true_values, true_values=true_values
    )
    utilities = outcome.payments.utility
    if np.any(utilities < -tolerance):
        worst = int(np.argmin(utilities))
        raise AssertionError(
            f"voluntary participation violated: truthful machine {worst} "
            f"has utility {utilities[worst]:g}"
        )


def assert_truthful_on_grid(
    mechanism: Mechanism,
    true_values: np.ndarray,
    arrival_rate: float,
    *,
    tolerance: float = 1e-9,
) -> None:
    """Theorem 3.1 on the standard deviation grid.

    Scans every agent's (bid, execution) deviations against truthful
    opponents and fails on the first profitable one.
    """
    report = truthfulness_audit(mechanism, true_values, arrival_rate)
    if report.max_gain > tolerance:
        worst = report.worst()
        raise AssertionError(
            f"truthfulness violated: agent {worst.agent} gains "
            f"{worst.gain:g} by bidding {worst.best_bid:g} "
            f"(true value {np.asarray(true_values)[worst.agent]:g}) and "
            f"executing at {worst.best_execution:g}"
        )
