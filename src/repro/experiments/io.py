"""Persistence for experiment results: JSON records and CSV tables.

The benchmark harness renders human-readable tables; this module gives
programmatic consumers stable artefacts: a JSON document per experiment
sweep (with enough metadata to re-run it) and CSV for spreadsheet
import.  Round-tripping is exact for the JSON path (tested).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments.figures import ExperimentRecord
from repro.types import MechanismOutcome

__all__ = [
    "outcome_to_dict",
    "records_to_json",
    "load_records_json",
    "records_to_csv",
]

_FORMAT_VERSION = 1


def outcome_to_dict(outcome: MechanismOutcome) -> dict:
    """Serialise one mechanism outcome to plain JSON types."""
    data = {
        "loads": outcome.loads.tolist(),
        "bids": outcome.allocation.bids.tolist(),
        "arrival_rate": outcome.allocation.arrival_rate,
        "execution_values": outcome.execution_values.tolist(),
        "realised_latency": outcome.realised_latency,
        "compensation": outcome.payments.compensation.tolist(),
        "bonus": outcome.payments.bonus.tolist(),
        "valuation": outcome.payments.valuation.tolist(),
        "metadata": dict(outcome.metadata),
    }
    if outcome.true_values is not None:
        data["true_values"] = outcome.true_values.tolist()
    return data


def records_to_json(records: Sequence[ExperimentRecord], path: Path | str) -> None:
    """Write a full experiment sweep to a JSON document."""
    path = Path(path)
    document = {
        "format_version": _FORMAT_VERSION,
        "experiments": [
            {
                "name": record.scenario.name,
                "bid_factor": record.scenario.bid_factor,
                "execution_factor": record.scenario.execution_factor,
                "characterization": record.scenario.characterization,
                "outcome": outcome_to_dict(record.outcome),
            }
            for record in records
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_records_json(path: Path | str) -> list[dict]:
    """Load a sweep back as plain dictionaries (schema-checked)."""
    document = json.loads(Path(path).read_text())
    if document.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {document.get('format_version')!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    experiments = document["experiments"]
    for entry in experiments:
        for key in ("name", "bid_factor", "execution_factor", "outcome"):
            if key not in entry:
                raise ValueError(f"experiment entry missing key {key!r}")
    return experiments


def records_to_csv(records: Sequence[ExperimentRecord], path: Path | str) -> None:
    """Write per-experiment summary rows to a CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "experiment",
                "bid_factor",
                "execution_factor",
                "total_latency",
                "c1_payment",
                "c1_utility",
                "total_payment",
                "frugality_ratio",
            ]
        )
        for record in records:
            payments = record.outcome.payments
            writer.writerow(
                [
                    record.scenario.name,
                    record.scenario.bid_factor,
                    record.scenario.execution_factor,
                    f"{record.total_latency:.6f}",
                    f"{record.c1_payment:.6f}",
                    f"{record.c1_utility:.6f}",
                    f"{payments.total_payment:.6f}",
                    f"{record.outcome.frugality_ratio:.6f}",
                ]
            )


def reconstruct_payment_vectors(entry: dict) -> dict[str, np.ndarray]:
    """Rebuild numpy arrays from one loaded experiment entry."""
    outcome = entry["outcome"]
    arrays = {}
    for key in ("loads", "bids", "execution_values", "compensation", "bonus", "valuation"):
        arrays[key] = np.asarray(outcome[key], dtype=np.float64)
    arrays["payment"] = arrays["compensation"] + arrays["bonus"]
    arrays["utility"] = arrays["payment"] + arrays["valuation"]
    return arrays
