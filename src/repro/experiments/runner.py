"""One-command reproduction: regenerate the full artefact bundle.

``reproduce_all(output_dir)`` runs the complete Section 4 evaluation
and writes everything a reviewer needs into one directory:

* ``tables/table1.txt``, ``tables/table2.txt`` — the configurations;
* ``figures/figure1.txt`` .. ``figures/figure6.txt`` — the rendered
  rows of every figure;
* ``data/scenarios.json``, ``data/scenarios.csv`` — machine-readable
  per-scenario outcomes;
* ``report.txt`` — the 15-claim paper-vs-measured verification report;
* ``MANIFEST.txt`` — what was written, with the library version.

The eight scenario evaluations behind the figures are submitted as one
campaign through :class:`~repro.parallel.CampaignEngine` — every
figure and the data dumps are derived from that single result set
(previously each figure recomputed the sweep).  Pass an engine with a
cache and/or workers to reuse results across invocations; the bundle
is bit-identical either way.

Exposed on the CLI as ``repro reproduce --output DIR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.figures import (
    figure1_data,
    figure2_data,
    figure345_data,
    figure6_data,
    figure6_truthful_structure,
)
from repro.experiments.io import records_to_csv, records_to_json
from repro.experiments.paper_check import ReproductionReport, verify_reproduction
from repro.experiments.report import render_records, render_table
from repro.experiments.table1 import table1_configuration
from repro.experiments.table2 import PAPER_SCENARIOS

__all__ = ["ReproductionBundle", "reproduce_all"]


@dataclass(frozen=True)
class ReproductionBundle:
    """What :func:`reproduce_all` produced."""

    output_dir: Path
    files_written: tuple[str, ...]
    report: ReproductionReport

    @property
    def all_claims_pass(self) -> bool:
        """Whether the verification report was fully green."""
        return self.report.all_passed


def _write(path: Path, text: str, written: list[str], root: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text if text.endswith("\n") else text + "\n")
    written.append(str(path.relative_to(root)))


def reproduce_all(
    output_dir: Path | str, *, engine=None
) -> ReproductionBundle:
    """Regenerate every table, figure, and the claim report into a directory.

    ``engine`` (a :class:`~repro.parallel.CampaignEngine`) is where the
    scenario evaluations are submitted; the default is a serial,
    uncached engine.  Passing one with a cache makes repeat bundles
    near-free; passing one with workers parallelises the sweep.
    """
    from repro.parallel import CampaignEngine
    from repro.parallel.campaigns import run_figures_campaign

    root = Path(output_dir)
    root.mkdir(parents=True, exist_ok=True)
    written: list[str] = []

    config = table1_configuration()
    if engine is None:
        engine = CampaignEngine(workers=0, cache=None)
    campaign = run_figures_campaign(engine, config)
    records = list(campaign.records)

    # --- tables ------------------------------------------------------------
    rows = [[machines, value] for machines, value in config.groups]
    rows.append(["arrival rate R", config.arrival_rate])
    _write(
        root / "tables" / "table1.txt",
        render_table(["computers", "true value (t)"], rows,
                     title="Table 1. System configuration."),
        written, root,
    )
    rows = [
        [s.name, f"{s.bid_factor:g}*t1", f"{s.execution_factor:g}*t1",
         s.characterization]
        for s in PAPER_SCENARIOS
    ]
    _write(
        root / "tables" / "table2.txt",
        render_table(["experiment", "bid", "execution", "characterization"],
                     rows, title="Table 2. Types of experiments."),
        written, root,
    )

    # --- figures -----------------------------------------------------------
    fig1 = figure1_data(config, records=records)
    optimum = fig1["True1"]
    _write(
        root / "figures" / "figure1.txt",
        render_table(
            ["experiment", "total latency", "degradation %"],
            [[k, v, 100 * (v / optimum - 1)] for k, v in fig1.items()],
            title="Figure 1. Performance degradation.",
        ),
        written, root,
    )
    fig2 = figure2_data(config, records=records)
    _write(
        root / "figures" / "figure2.txt",
        render_table(
            ["experiment", "C1 payment", "C1 utility"],
            [[k, p, u] for k, (p, u) in fig2.items()],
            title="Figure 2. Payment and utility for computer C1.",
        ),
        written, root,
    )
    names = config.cluster.names
    for number, scenario in ((3, "True1"), (4, "High1"), (5, "Low1")):
        data = figure345_data(scenario, config, records=records)
        _write(
            root / "figures" / f"figure{number}.txt",
            render_table(
                ["computer", "payment", "utility"],
                [[names[i], data["payment"][i], data["utility"][i]]
                 for i in range(len(names))],
                title=f"Figure {number}. Payment and utility per computer "
                f"({scenario}).",
            ),
            written, root,
        )
    fig6 = figure6_data(config, records=records)
    structure = figure6_truthful_structure(config, records=records)
    fig6_text = render_table(
        ["experiment", "total payment", "total |valuation|", "ratio"],
        [[k, row["total_payment"], row["total_valuation"], row["ratio"]]
         for k, row in fig6.items()],
        title="Figure 6. Aggregate payment structure per experiment.",
    )
    fig6_text += "\n\n" + render_table(
        ["computer", "payment", "|valuation|", "ratio"],
        [[names[i], structure["payment"][i], structure["valuation"][i],
          structure["ratio"][i]] for i in range(len(names))],
        title="Figure 6 (per computer, True1).",
    )
    _write(root / "figures" / "figure6.txt", fig6_text, written, root)

    # --- machine-readable data ----------------------------------------------
    (root / "data").mkdir(exist_ok=True)
    records_to_json(records, root / "data" / "scenarios.json")
    written.append("data/scenarios.json")
    records_to_csv(records, root / "data" / "scenarios.csv")
    written.append("data/scenarios.csv")

    # --- claim report ---------------------------------------------------------
    report = verify_reproduction()
    report_rows = [
        ["PASS" if c.passed else "FAIL", c.claim, c.paper_value, c.measured]
        for c in report.checks
    ]
    _write(
        root / "report.txt",
        render_table(
            ["status", "claim", "paper", "measured"],
            report_rows,
            title=f"Reproduction report: {report.n_passed}/"
            f"{len(report.checks)} claims pass.",
        ),
        written, root,
    )

    # --- manifest -------------------------------------------------------------
    from repro import __version__

    stats = campaign.stats
    manifest = "\n".join(
        [
            f"repro {__version__} reproduction bundle",
            f"campaign: {stats.n_units} units, {stats.cache_hits} cache "
            f"hits, {stats.cache_misses} computed, "
            f"workers={stats.workers}",
            "",
        ]
        + sorted(written)
    )
    _write(root / "MANIFEST.txt", manifest, written, root)

    return ReproductionBundle(
        output_dir=root,
        files_written=tuple(sorted(written)),
        report=report,
    )
