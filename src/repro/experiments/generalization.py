"""Do the paper's findings generalise beyond its one configuration?

The paper evaluates everything on a single 16-machine system.  This
module scores the entire Section 4 scenario suite on ensembles of
random configurations and reports, for each qualitative claim, the
fraction of configurations where it holds — separating *structural*
facts (true by theorem on every configuration) from *configuration
artefacts* of Table 1.

Per cluster draw, the scenario sweep is scored directly through the
closed-form kernel (:mod:`repro.agents.kernels`): only the manipulator
deviates, so the other machines collapse into the sufficient
statistics ``(S_{-1}, Q_{-1})`` computed once, and every scenario's
realised latency ``(R/S)**2 (t̃_1/b_1**2 + Q_{-1})`` and manipulator
utility come from one vectorised broadcast instead of one
``Mechanism.run`` per scenario.  The truthful-equilibrium checks
(voluntary participation, frugality) come from a single
:func:`~repro.mechanism.batch.batch_run` row.

Structural (must hold at 100%, asserted):

* True1 achieves the minimum realised latency (Theorem 2.1 + 3.1);
* C1's utility is maximised at True1 (Theorem 3.1);
* truthful utilities are all non-negative (Theorem 3.2);
* the High2 < High3 < High1 < High4 ordering (monotone in ``t̃1``
  at fixed bids).

Configuration-dependent (the measured fractions are the finding):

* "Low2 is the worst experiment" — depends on how dominant the
  manipulated machine is;
* "total payment <= 2.5x total valuation" — the truthful ratio is
  ``1 + Σ s_i/(S - s_i)``, which exceeds 2.5 for small or dominated
  systems;
* "C1's utility is negative in Low2" — requires the liar to attract
  enough misallocated load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_scalar
from repro.agents.kernels import (
    sufficient_statistics,
    sufficient_statistics_units,
    utility_kernel,
)
from repro.experiments.table2 import PAPER_SCENARIOS
from repro.mechanism.batch import batch_run
from repro.system.cluster import random_cluster

__all__ = ["GeneralizationResult", "generalization_study"]


@dataclass(frozen=True)
class GeneralizationResult:
    """Fractions of random configurations where each claim holds."""

    n_configurations: int
    true1_is_minimum: float
    c1_utility_peaks_at_true1: float
    vp_holds: float
    high_ordering_holds: float
    low2_is_worst: float
    frugality_within_2_5: float
    low2_utility_negative: float

    def structural_claims_universal(self) -> bool:
        """Whether every theorem-backed claim held on all configurations."""
        return (
            self.true1_is_minimum == 1.0
            and self.c1_utility_peaks_at_true1 == 1.0
            and self.vp_holds == 1.0
            and self.high_ordering_holds == 1.0
        )


def _evaluate_one(true_values: np.ndarray, arrival_rate: float) -> dict[str, bool]:
    true_values = np.asarray(true_values, dtype=np.float64)
    manipulator = int(np.argmin(true_values))  # the fastest machine, like C1

    # All eight scenarios deviate only the manipulator, so one pair of
    # sufficient statistics scores the whole sweep in a single
    # broadcast (see repro.agents.kernels for the derivation).
    t1 = float(true_values[manipulator])
    bids_m = t1 * np.array([s.bid_factor for s in PAPER_SCENARIOS])
    execs_m = t1 * np.array([s.execution_factor for s in PAPER_SCENARIOS])
    s_minus, q_minus = sufficient_statistics(true_values, agent=manipulator)
    total = s_minus + 1.0 / bids_m
    scenario_latencies = (arrival_rate / total) ** 2 * (
        execs_m / bids_m**2 + q_minus
    )
    scenario_utilities = utility_kernel(
        bids_m, execs_m, s_minus, q_minus, arrival_rate, compensation="observed"
    )
    names = [s.name for s in PAPER_SCENARIOS]
    latencies = dict(zip(names, (float(v) for v in scenario_latencies)))
    utilities = dict(zip(names, (float(v) for v in scenario_utilities)))

    # The truthful-equilibrium checks need every machine's payment, not
    # just the manipulator's: one batch_run row covers them all.
    truthful = batch_run(true_values[None, :], arrival_rate)
    truthful_utility = truthful.utility[0]
    frugality = float(
        truthful.payment[0].sum() / np.abs(truthful.valuation[0]).sum()
    )

    return {
        "true1_is_minimum": latencies["True1"] == min(latencies.values()),
        "c1_utility_peaks_at_true1": utilities["True1"] == max(utilities.values()),
        "vp_holds": bool(np.all(truthful_utility >= -1e-9)),
        "high_ordering_holds": (
            latencies["High2"] < latencies["High3"]
            < latencies["High1"] < latencies["High4"]
        ),
        "low2_is_worst": latencies["Low2"] == max(latencies.values()),
        "frugality_within_2_5": 1.0 <= frugality <= 2.5,
        "low2_utility_negative": utilities["Low2"] < 0.0,
    }


def _evaluate_config(args: tuple[np.ndarray, float]) -> dict[str, bool]:
    """Picklable wrapper over :func:`_evaluate_one` for the worker pool."""
    true_values, arrival_rate = args
    return _evaluate_one(true_values, arrival_rate)


def _evaluate_cohort(
    true_values: np.ndarray, arrival_rate: float
) -> dict[str, np.ndarray]:
    """:func:`_evaluate_one` for a whole same-``n`` cohort at once.

    ``true_values`` is ``(G, n)`` — one configuration per row, all
    sharing the arrival rate (the study scales ``R`` with ``n``, so
    same-``n`` cohorts share it by construction).  Returns the seven
    verdicts as boolean vectors; every entry is identical to the
    per-config path's because each step stacks bit-exactly: row-wise
    ``argmin``/aggregates match their scalar forms, the kernel is
    elementwise, and :func:`batch_run` is row-independent.
    """
    true_values = np.asarray(true_values, dtype=np.float64)
    rows = np.arange(true_values.shape[0])
    manipulators = np.argmin(true_values, axis=1)  # fastest machine per row

    t1 = true_values[rows, manipulators]           # (G,)
    bid_factors = np.array([s.bid_factor for s in PAPER_SCENARIOS])
    exec_factors = np.array([s.execution_factor for s in PAPER_SCENARIOS])
    bids_m = t1[:, None] * bid_factors             # (G, 8)
    execs_m = t1[:, None] * exec_factors
    s_all, q_all = sufficient_statistics_units(true_values)
    s_minus = s_all[rows, manipulators][:, None]   # (G, 1)
    q_minus = q_all[rows, manipulators][:, None]
    total = s_minus + 1.0 / bids_m
    latencies = (arrival_rate / total) ** 2 * (
        execs_m / bids_m**2 + q_minus
    )                                              # (G, 8)
    utilities = utility_kernel(
        bids_m, execs_m, s_minus, q_minus, arrival_rate, compensation="observed"
    )
    names = [s.name for s in PAPER_SCENARIOS]
    col = {name: i for i, name in enumerate(names)}

    truthful = batch_run(true_values, arrival_rate)
    frugality = truthful.payment.sum(axis=1) / np.abs(
        truthful.valuation
    ).sum(axis=1)

    lat_true1 = latencies[:, col["True1"]]
    lat_low2 = latencies[:, col["Low2"]]
    return {
        "true1_is_minimum": lat_true1 == latencies.min(axis=1),
        "c1_utility_peaks_at_true1": (
            utilities[:, col["True1"]] == utilities.max(axis=1)
        ),
        "vp_holds": (truthful.utility >= -1e-9).all(axis=1),
        "high_ordering_holds": (
            (latencies[:, col["High2"]] < latencies[:, col["High3"]])
            & (latencies[:, col["High3"]] < latencies[:, col["High1"]])
            & (latencies[:, col["High1"]] < latencies[:, col["High4"]])
        ),
        "low2_is_worst": lat_low2 == latencies.max(axis=1),
        "frugality_within_2_5": (1.0 <= frugality) & (frugality <= 2.5),
        "low2_utility_negative": utilities[:, col["Low2"]] < 0.0,
    }


def generalization_study(
    rng: np.random.Generator,
    *,
    n_configurations: int = 100,
    n_machines_range: tuple[int, int] = (4, 32),
    t_range: tuple[float, float] = (1.0, 10.0),
    load_per_machine: float = 1.25,
    workers: int = 0,
    fuse: str = "auto",
) -> GeneralizationResult:
    """Re-run the Section 4 suite on random configurations.

    Each configuration draws a size uniformly from
    ``n_machines_range``, slopes log-uniformly from ``t_range``, and
    scales the arrival rate with the system size (constant load per
    machine, as in the A2 sweep).  The Table 2 manipulations are
    applied to the fastest machine (the analogue of C1).

    ``fuse`` mirrors the campaign engine's contract: same-``n``
    configurations form a cohort (they share the arrival rate by
    construction) and each cohort is scored as one stacked broadcast —
    ``"auto"`` (default) fuses cohorts of two or more, ``"on"`` fuses
    all, ``"off"`` keeps the per-configuration path.  Verdicts are
    bit-identical either way (:func:`_evaluate_cohort`), so the
    reported fractions never depend on the setting.

    ``workers > 1`` evaluates the *unfused* configurations over a
    process pool (via :func:`repro.parallel.parallel_map`); fused
    cohorts are evaluated in-process, where a broadcast beats the
    pool's pickling.  All configurations are drawn from ``rng``
    *before* any evaluation, so the random stream — and therefore the
    result — is bit-identical across every ``workers``/``fuse``
    combination.
    """
    if n_configurations < 1:
        raise ValueError("n_configurations must be at least 1")
    lo, hi = n_machines_range
    if not 2 <= lo <= hi:
        raise ValueError("n_machines_range must satisfy 2 <= lo <= hi")
    check_positive_scalar(load_per_machine, "load_per_machine")
    if fuse not in ("auto", "on", "off"):
        raise ValueError(f"fuse must be 'auto', 'on', or 'off', got {fuse!r}")

    counters = {
        "true1_is_minimum": 0,
        "c1_utility_peaks_at_true1": 0,
        "vp_holds": 0,
        "high_ordering_holds": 0,
        "low2_is_worst": 0,
        "frugality_within_2_5": 0,
        "low2_utility_negative": 0,
    }
    configs: list[tuple[np.ndarray, float]] = []
    for _ in range(n_configurations):
        n = int(rng.integers(lo, hi + 1))
        cluster = random_cluster(n, rng, t_range=t_range)
        configs.append((cluster.true_values, load_per_machine * n))

    singles = configs
    if fuse != "off":
        cohorts: dict[int, list[tuple[np.ndarray, float]]] = {}
        for config in configs:
            cohorts.setdefault(config[0].size, []).append(config)
        singles = []
        for members in cohorts.values():
            if fuse == "auto" and len(members) < 2:
                singles.extend(members)
                continue
            verdicts = _evaluate_cohort(
                np.array([tv for tv, _ in members]), members[0][1]
            )
            for key, held in verdicts.items():
                counters[key] += int(held.sum())

    from repro.parallel.engine import parallel_map

    for verdicts in parallel_map(_evaluate_config, singles, workers=workers):
        for key, held in verdicts.items():
            counters[key] += bool(held)

    fraction = {k: v / n_configurations for k, v in counters.items()}
    return GeneralizationResult(n_configurations=n_configurations, **fraction)
