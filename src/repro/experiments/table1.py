"""Table 1: the simulated system configuration.

Sixteen heterogeneous computers in four speed groups.  The numeric true
values were reconstructed from the paper's reported results (the
published table was garbled in the source text): the combination below
is uniquely pinned by the True1 optimum ``L = 78.43`` at ``R = 20``
together with the Low1 (+11%) and Low2 (+66%) degradations — see
DESIGN.md §2 for the verification arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.cluster import (
    PAPER_ARRIVAL_RATE,
    PAPER_TRUE_VALUES,
    Cluster,
    paper_cluster,
)

__all__ = ["Table1Configuration", "table1_configuration"]


@dataclass(frozen=True)
class Table1Configuration:
    """The full Section 4 experimental configuration."""

    cluster: Cluster
    arrival_rate: float

    @property
    def groups(self) -> tuple[tuple[str, float], ...]:
        """(machine-range, true value) rows exactly as Table 1 lists them."""
        return (
            ("C1 - C2", 1.0),
            ("C3 - C5", 2.0),
            ("C6 - C10", 5.0),
            ("C11 - C16", 10.0),
        )

    def as_config(self) -> dict:
        """JSON-safe dict of the result-affecting fields.

        This is what campaign cache keys hash (see
        :func:`repro.parallel.units.unit_cache_key`): the true values
        and the arrival rate pin every closed-form outcome, so nothing
        else belongs here.
        """
        return {
            "true_values": [float(v) for v in self.cluster.true_values],
            "arrival_rate": float(self.arrival_rate),
        }


def table1_configuration() -> Table1Configuration:
    """The paper's system: 16 machines, job arrival rate R = 20/s."""
    return Table1Configuration(
        cluster=paper_cluster(),
        arrival_rate=PAPER_ARRIVAL_RATE,
    )


# re-exported so experiment code has a single import point
TABLE1_TRUE_VALUES = PAPER_TRUE_VALUES
TABLE1_ARRIVAL_RATE = PAPER_ARRIVAL_RATE
