"""Plain-text table rendering for the benchmark harness.

Minimal, dependency-free table formatting: the benches print the same
rows the paper's tables and figure bars report, so paper-vs-measured
comparisons in EXPERIMENTS.md can be regenerated with one command.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.figures import ExperimentRecord

__all__ = ["render_table", "render_records"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted to ``precision`` decimals.
    precision:
        Decimal places for float cells.
    title:
        Optional heading line printed above the table.
    """
    formatted = [[_format_cell(v, precision) for v in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in formatted)) if formatted else len(headers[c])
        for c in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)


def render_records(
    records: Sequence[ExperimentRecord],
    *,
    optimum: float | None = None,
) -> str:
    """Render Table 2 experiment outcomes with latency and C1 economics."""
    if optimum is None:
        truthful = [r for r in records if r.scenario.name == "True1"]
        optimum = truthful[0].total_latency if truthful else records[0].total_latency
    rows = [
        [
            r.scenario.name,
            r.scenario.bid_factor,
            r.scenario.execution_factor,
            r.total_latency,
            r.degradation_percent(optimum),
            r.c1_payment,
            r.c1_utility,
        ]
        for r in records
    ]
    return render_table(
        ["experiment", "bid x", "exec x", "L", "degr %", "C1 pay", "C1 util"],
        rows,
        title="Table 2 scenarios on the Table 1 system",
    )
