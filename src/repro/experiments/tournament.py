"""Cross-mechanism tournament: verification vs VCG vs Archer–Tardos.

Table 2 compares payment rules through *one* manipulating machine.
With closed-form kernels for all three truthful mechanisms
(:mod:`repro.agents.kernels`), the comparison extends far beyond that:
this module plays the verification mechanism (observed compensation)
and the two baselines across the scenario grid x manipulation
patterns — single liars, multi-liar prefixes (the A1 conjecture
seeds), and jointly-overbidding coalitions (the A11 collusion seeds) —
and scores each cell on three axes:

* **equilibrium quality** — realised latency ``L`` against the
  optimum ``L* = R^2 / S`` (degradation percent), plus the fixed point
  kernel-driven best-response dynamics reach from the worst profile;
* **frugality** — total payment over total agent cost (how much the
  broker overpays to keep the allocation honest);
* **robustness to lying** — the manipulating coalition's utility gain
  over what the same machines earn by telling the truth.

Every cell is an :class:`~repro.parallel.ExperimentUnit` (scenario
kind, ``manipulators`` coalition field), so tournaments run through the
campaign engine: cacheable, parallelisable, and reproducible from the
``repro tournament`` CLI.  The committed reference results live in
``benchmarks/results/TOURNAMENT_results.json`` (refreshed by the A25
bench); ``docs/mechanisms.md`` reads its headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation.pr import optimal_total_latency
from repro.experiments.table1 import Table1Configuration, table1_configuration
from repro.experiments.table2 import PAPER_SCENARIOS
from repro.parallel.engine import CampaignEngine
from repro.parallel.units import ExperimentUnit

__all__ = [
    "EquilibriumRow",
    "ManipulationPattern",
    "TOURNAMENT_VARIANTS",
    "TournamentResult",
    "TournamentRow",
    "run_tournament",
    "tournament_patterns",
    "tournament_units",
]

# The three truthful payment rules under comparison.  The declared
# variant is deliberately absent: it is the paper's non-truthful foil,
# not a contender (its Table 2 story is told by `repro campaign`).
TOURNAMENT_VARIANTS = ("observed", "vcg", "archer-tardos")

_TRUTHFUL_PATTERN = "Truthful"


@dataclass(frozen=True)
class ManipulationPattern:
    """One way a coalition of machines lies to the broker.

    All members apply the same ``(bid_factor, execution_factor)`` to
    their true values — the Table 2 semantics extended to a coalition.
    """

    name: str
    kind: str  # "truthful" | "single" | "multi" | "collusion"
    bid_factor: float
    execution_factor: float
    manipulators: tuple[int, ...]

    @property
    def is_truthful(self) -> bool:
        return self.bid_factor == 1.0 and self.execution_factor == 1.0


def _collusion_pairs(n_machines: int) -> tuple[tuple[int, int], ...]:
    """Default colluding pairs: one machine per Table 1 speed group.

    The A11 bench scans the (t = 1, 2, 5, 10) representatives at
    indices 0, 2, 5, 10; the same seeds are used here, clipped to the
    system size.
    """
    representatives = [i for i in (0, 2, 5, 10) if i < n_machines]
    if len(representatives) < 2:
        representatives = [0, 1]
    return tuple(
        (representatives[i], representatives[j])
        for i in range(len(representatives))
        for j in range(i + 1, len(representatives))
    )


def tournament_patterns(
    n_machines: int,
    *,
    max_liars: int | None = None,
    collusion_bid_factor: float = 2.0,
) -> tuple[ManipulationPattern, ...]:
    """The manipulation grid every mechanism is played against.

    * the truthful baseline (every robustness score is relative to it);
    * every non-truthful Table 2 scenario as a single liar (C1);
    * the two A1 conjecture manipulations — Low2 (underbid 2x, execute
      2x slower) and High1 (overbid 3x, execute 3x slower) — spread
      over growing machine prefixes of 2 .. ``max_liars`` liars;
    * the A11 collusion seeds: one-machine-per-speed-group pairs
      jointly overbidding by ``collusion_bid_factor``.
    """
    if n_machines < 2:
        raise ValueError("a tournament needs at least two machines")
    if max_liars is None:
        max_liars = min(4, n_machines)
    if not 2 <= max_liars <= n_machines:
        raise ValueError(f"max_liars must be in [2, {n_machines}]")
    patterns = [
        ManipulationPattern(_TRUTHFUL_PATTERN, "truthful", 1.0, 1.0, (0,))
    ]
    for scenario in PAPER_SCENARIOS:
        if scenario.bid_factor == 1.0 and scenario.execution_factor == 1.0:
            continue
        patterns.append(
            ManipulationPattern(
                scenario.name,
                "single",
                scenario.bid_factor,
                scenario.execution_factor,
                (0,),
            )
        )
    for label, bid_factor, execution_factor in (
        ("Low2", 0.5, 2.0),
        ("High1", 3.0, 3.0),
    ):
        for k in range(2, max_liars + 1):
            patterns.append(
                ManipulationPattern(
                    f"{label} x{k}",
                    "multi",
                    bid_factor,
                    execution_factor,
                    tuple(range(k)),
                )
            )
    for i, j in _collusion_pairs(n_machines):
        patterns.append(
            ManipulationPattern(
                f"collude({i},{j})",
                "collusion",
                collusion_bid_factor,
                1.0,
                (i, j),
            )
        )
    return tuple(patterns)


def tournament_units(
    config: Table1Configuration | None = None,
    *,
    variants: tuple[str, ...] = TOURNAMENT_VARIANTS,
    patterns: tuple[ManipulationPattern, ...] | None = None,
) -> list[ExperimentUnit]:
    """One cacheable scenario unit per (mechanism, pattern) cell."""
    config = table1_configuration() if config is None else config
    true_values = tuple(config.cluster.true_values.tolist())
    if patterns is None:
        patterns = tournament_patterns(len(true_values))
    return [
        ExperimentUnit(
            kind="scenario",
            scenario=pattern.name,
            bid_factor=pattern.bid_factor,
            execution_factor=pattern.execution_factor,
            true_values=true_values,
            arrival_rate=config.arrival_rate,
            variant=variant,
            manipulators=pattern.manipulators,
        )
        for variant in variants
        for pattern in patterns
    ]


@dataclass(frozen=True)
class TournamentRow:
    """One (mechanism, manipulation pattern) cell of the tournament."""

    mechanism: str
    pattern: str
    pattern_kind: str
    manipulators: tuple[int, ...]
    bid_factor: float
    execution_factor: float
    degradation_percent: float
    frugality_ratio: float
    liar_utility: float
    truthful_liar_utility: float

    @property
    def robustness_gain(self) -> float:
        """Coalition utility gained by lying (side payments allowed)."""
        return self.liar_utility - self.truthful_liar_utility

    @property
    def profitable(self) -> bool:
        """Whether the lie strictly beats coalition truth-telling."""
        return self.robustness_gain > 1e-7 * max(
            1.0, abs(self.truthful_liar_utility)
        )


@dataclass(frozen=True)
class EquilibriumRow:
    """Where kernel-driven best-response dynamics settle one mechanism.

    Started from the mechanism's worst-degradation manipulated profile;
    the fixed point is scored with machines executing at capacity.
    """

    mechanism: str
    start_pattern: str
    rounds: int
    converged: bool
    final_degradation_percent: float
    max_drift_from_truth: float


@dataclass(frozen=True)
class TournamentResult:
    """A completed tournament, ready for rendering or JSON export."""

    true_values: tuple[float, ...]
    arrival_rate: float
    optimal_latency: float
    rows: tuple[TournamentRow, ...]
    equilibrium: tuple[EquilibriumRow, ...]

    def mechanisms(self) -> tuple[str, ...]:
        seen: list[str] = []
        for row in self.rows:
            if row.mechanism not in seen:
                seen.append(row.mechanism)
        return tuple(seen)

    def rows_for(self, mechanism: str) -> tuple[TournamentRow, ...]:
        return tuple(r for r in self.rows if r.mechanism == mechanism)

    def standings(self) -> list[dict]:
        """Per-mechanism aggregates — the "which mechanism when" feed.

        ``worst_degradation_percent`` and ``max_robustness_gain`` are
        over the manipulated cells only; ``truthful_frugality_ratio``
        is the broker's overpayment factor when nobody lies.
        """
        out = []
        for mechanism in self.mechanisms():
            rows = self.rows_for(mechanism)
            lying = [r for r in rows if r.pattern_kind != "truthful"]
            truthful = next(r for r in rows if r.pattern_kind == "truthful")
            individual = [r for r in lying if r.pattern_kind != "collusion"]
            collusion = [r for r in lying if r.pattern_kind == "collusion"]
            fixed_point = next(
                (e for e in self.equilibrium if e.mechanism == mechanism), None
            )
            out.append(
                {
                    "mechanism": mechanism,
                    "truthful_frugality_ratio": truthful.frugality_ratio,
                    "worst_degradation_percent": max(
                        r.degradation_percent for r in lying
                    ),
                    "max_robustness_gain": max(
                        r.robustness_gain for r in lying
                    ),
                    "max_individual_gain": max(
                        r.robustness_gain for r in individual
                    ),
                    "profitable_individual_patterns": sum(
                        r.profitable for r in individual
                    ),
                    "profitable_collusion_patterns": sum(
                        r.profitable for r in collusion
                    ),
                    "equilibrium_degradation_percent": (
                        None
                        if fixed_point is None
                        else fixed_point.final_degradation_percent
                    ),
                }
            )
        return out

    def to_json(self) -> dict:
        """JSON-safe dict (the committed tournament artifact's schema)."""
        return {
            "schema_version": 1,
            "true_values": list(self.true_values),
            "arrival_rate": self.arrival_rate,
            "optimal_latency": self.optimal_latency,
            "rows": [
                {
                    "mechanism": r.mechanism,
                    "pattern": r.pattern,
                    "pattern_kind": r.pattern_kind,
                    "manipulators": list(r.manipulators),
                    "bid_factor": r.bid_factor,
                    "execution_factor": r.execution_factor,
                    "degradation_percent": r.degradation_percent,
                    "frugality_ratio": r.frugality_ratio,
                    "liar_utility": r.liar_utility,
                    "truthful_liar_utility": r.truthful_liar_utility,
                    "robustness_gain": r.robustness_gain,
                    "profitable": r.profitable,
                }
                for r in self.rows
            ],
            "equilibrium": [
                {
                    "mechanism": e.mechanism,
                    "start_pattern": e.start_pattern,
                    "rounds": e.rounds,
                    "converged": e.converged,
                    "final_degradation_percent": e.final_degradation_percent,
                    "max_drift_from_truth": e.max_drift_from_truth,
                }
                for e in self.equilibrium
            ],
            "standings": self.standings(),
        }


def _equilibrium_row(
    variant: str,
    worst: TournamentRow,
    true_values: np.ndarray,
    arrival_rate: float,
    optimum: float,
) -> EquilibriumRow:
    """Iterate best responses from the worst profile, score the limit."""
    from repro.agents.game import BestResponseDynamics
    from repro.parallel.units import _mechanism_for

    mechanism = _mechanism_for(variant)
    start_bids = true_values.copy()
    start_bids[list(worst.manipulators)] *= worst.bid_factor
    dynamics = BestResponseDynamics(
        mechanism, true_values, arrival_rate, honest_execution=True
    )
    trace = dynamics.run(start_bids=start_bids)
    outcome = mechanism.run(
        trace.final_bids, arrival_rate, true_values, true_values=true_values
    )
    return EquilibriumRow(
        mechanism=variant,
        start_pattern=worst.pattern,
        rounds=int(trace.rounds),
        converged=bool(trace.converged),
        final_degradation_percent=(
            100.0 * (float(outcome.realised_latency) / optimum - 1.0)
        ),
        max_drift_from_truth=float(trace.max_drift_from(true_values)),
    )


def run_tournament(
    engine: CampaignEngine | None = None,
    config: Table1Configuration | None = None,
    *,
    variants: tuple[str, ...] = TOURNAMENT_VARIANTS,
    patterns: tuple[ManipulationPattern, ...] | None = None,
    dynamics: bool = True,
) -> TournamentResult:
    """Play every mechanism against every manipulation pattern.

    The (mechanism x pattern) cells run through the campaign engine
    (serial and uncached by default — pass an engine for workers or a
    result cache), then each mechanism's equilibrium row iterates
    kernel-driven best-response dynamics from its worst manipulated
    profile (``dynamics=False`` skips that stage).
    """
    config = table1_configuration() if config is None else config
    true_values = np.asarray(config.cluster.true_values, dtype=np.float64)
    arrival_rate = float(config.arrival_rate)
    if patterns is None:
        patterns = tournament_patterns(true_values.size)
    if not any(p.is_truthful for p in patterns):
        raise ValueError(
            "the pattern grid needs the truthful baseline "
            "(robustness is measured against it)"
        )

    engine = engine or CampaignEngine(workers=0, cache=None)
    units = tournament_units(config, variants=variants, patterns=patterns)
    result = engine.run(units)
    payloads = dict(zip(result.units, result.payloads))

    optimum = float(optimal_total_latency(true_values, arrival_rate))
    rows: list[TournamentRow] = []
    for variant in variants:
        baseline = None
        for pattern in patterns:
            if pattern.is_truthful:
                unit = _unit_for(units, variant, pattern)
                baseline = payloads[unit]
                break
        assert baseline is not None  # guaranteed by the check above
        for pattern in patterns:
            payload = payloads[_unit_for(units, variant, pattern)]
            members = list(pattern.manipulators)
            rows.append(
                TournamentRow(
                    mechanism=variant,
                    pattern=pattern.name,
                    pattern_kind=pattern.kind,
                    manipulators=pattern.manipulators,
                    bid_factor=pattern.bid_factor,
                    execution_factor=pattern.execution_factor,
                    degradation_percent=(
                        100.0 * (payload["realised_latency"] / optimum - 1.0)
                    ),
                    frugality_ratio=payload["frugality_ratio"],
                    liar_utility=float(
                        sum(payload["utility"][i] for i in members)
                    ),
                    truthful_liar_utility=float(
                        sum(baseline["utility"][i] for i in members)
                    ),
                )
            )

    equilibrium: list[EquilibriumRow] = []
    if dynamics:
        for variant in variants:
            lying = [
                r
                for r in rows
                if r.mechanism == variant and r.pattern_kind != "truthful"
            ]
            worst = max(lying, key=lambda r: r.degradation_percent)
            equilibrium.append(
                _equilibrium_row(
                    variant, worst, true_values, arrival_rate, optimum
                )
            )

    return TournamentResult(
        true_values=tuple(true_values.tolist()),
        arrival_rate=arrival_rate,
        optimal_latency=optimum,
        rows=tuple(rows),
        equilibrium=tuple(equilibrium),
    )


def _unit_for(
    units: list[ExperimentUnit], variant: str, pattern: ManipulationPattern
) -> ExperimentUnit:
    for unit in units:
        if unit.variant == variant and unit.scenario == pattern.name:
            return unit
    raise KeyError(f"no unit for ({variant}, {pattern.name})")
