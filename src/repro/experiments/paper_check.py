"""One-call verification of every recoverable paper claim.

``verify_reproduction()`` evaluates the full Section 4 suite and the
theorem audits, returning a structured pass/fail report — the same
checks the test suite pins, packaged for interactive use and for the
``repro verify`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.figures import (
    figure1_data,
    figure2_data,
    figure6_data,
    figure6_truthful_structure,
    run_all_scenarios,
)
from repro.experiments.table1 import table1_configuration
from repro.mechanism import (
    VerificationMechanism,
    truthfulness_audit,
    voluntary_participation_margin,
)

__all__ = ["ClaimCheck", "ReproductionReport", "verify_reproduction"]


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one paper claim."""

    claim: str
    paper_value: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class ReproductionReport:
    """All claim checks for one run."""

    checks: tuple[ClaimCheck, ...]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def n_passed(self) -> int:
        return sum(c.passed for c in self.checks)

    def failures(self) -> list[ClaimCheck]:
        return [c for c in self.checks if not c.passed]


def _close(measured: float, expected: float, tolerance: float) -> bool:
    return abs(measured - expected) <= tolerance


def verify_reproduction() -> ReproductionReport:
    """Evaluate every recoverable Section 4 claim plus the theorems."""
    checks: list[ClaimCheck] = []
    config = table1_configuration()

    fig1 = figure1_data(config)
    optimum = fig1["True1"]
    checks.append(
        ClaimCheck(
            "True1 optimal latency (Theorem 2.1)",
            "78.43",
            f"{optimum:.2f}",
            _close(optimum, 78.43, 0.005),
        )
    )
    low1 = 100 * (fig1["Low1"] / optimum - 1)
    checks.append(
        ClaimCheck("Low1 degradation", "~11%", f"{low1:.2f}%", _close(low1, 11.0, 0.5))
    )
    low2 = 100 * (fig1["Low2"] / optimum - 1)
    checks.append(
        ClaimCheck("Low2 degradation", "~66%", f"{low2:.2f}%", _close(low2, 66.0, 0.5))
    )
    ordering = fig1["High2"] < fig1["High3"] < fig1["High1"] < fig1["High4"]
    checks.append(
        ClaimCheck(
            "High ordering (Fig 1)",
            "High2 < High3 < High1 < High4",
            " < ".join(
                f"{fig1[k]:.1f}" for k in ("High2", "High3", "High1", "High4")
            ),
            bool(ordering),
        )
    )
    checks.append(
        ClaimCheck(
            "True1 is the minimum latency",
            "minimum of all 8 experiments",
            f"min = {min(fig1.values()):.2f}",
            min(fig1.values()) == optimum,
        )
    )

    fig2 = figure2_data(config)
    utilities = {name: u for name, (_p, u) in fig2.items()}
    checks.append(
        ClaimCheck(
            "C1 utility maximal at True1 (Fig 2)",
            "True1",
            max(utilities, key=utilities.get),
            max(utilities, key=utilities.get) == "True1",
        )
    )
    checks.append(
        ClaimCheck(
            "C1 utility negative in Low2 (Fig 2)",
            "< 0",
            f"{utilities['Low2']:.2f}",
            utilities["Low2"] < 0,
        )
    )
    declared = figure2_data(config, VerificationMechanism("declared"))
    checks.append(
        ClaimCheck(
            "Low2 payment negative (Fig 2 prose; declared variant)",
            "< 0",
            f"{declared['Low2'][0]:.2f}",
            declared["Low2"][0] < 0,
        )
    )

    records = {r.scenario.name: r for r in run_all_scenarios(config)}
    low1_drop = 100 * (1 - records["Low1"].c1_utility / records["True1"].c1_utility)
    checks.append(
        ClaimCheck(
            "Low1 C1 utility drop (Fig 5)",
            "45%",
            f"{low1_drop:.1f}%",
            _close(low1_drop, 45.0, 2.5),
        )
    )
    high1_drop = 100 * (1 - records["High1"].c1_utility / records["True1"].c1_utility)
    checks.append(
        ClaimCheck(
            "High1 C1 utility drop (Fig 4)",
            "62%",
            f"{high1_drop:.1f}%",
            _close(high1_drop, 62.0, 2.5),
        )
    )
    others_up = bool(
        np.all(
            records["High1"].outcome.payments.utility[1:]
            > records["True1"].outcome.payments.utility[1:]
        )
    )
    checks.append(
        ClaimCheck(
            "High1: other computers gain utility (Fig 4)",
            "all higher than True1",
            "all higher" if others_up else "violated",
            others_up,
        )
    )

    fig6 = figure6_data(config)["True1"]
    checks.append(
        ClaimCheck(
            "Frugality: total payment <= 2.5x valuation (Fig 6)",
            "<= 2.5",
            f"{fig6['ratio']:.3f}",
            1.0 <= fig6["ratio"] <= 2.5,
        )
    )
    ratios = figure6_truthful_structure(config)["ratio"]
    checks.append(
        ClaimCheck(
            "Frugality floor = valuation (VP, Fig 6)",
            ">= 1 per computer",
            f"min ratio {ratios.min():.3f}",
            bool(np.all(ratios >= 1.0)),
        )
    )

    mechanism = VerificationMechanism()
    audit = truthfulness_audit(
        mechanism, config.cluster.true_values[:8], config.arrival_rate
    )
    checks.append(
        ClaimCheck(
            "Theorem 3.1 (truthfulness)",
            "no profitable deviation",
            f"max gain {audit.max_gain:.2e}",
            audit.is_truthful,
        )
    )
    margin = voluntary_participation_margin(
        mechanism, config.cluster.true_values, config.arrival_rate
    )
    checks.append(
        ClaimCheck(
            "Theorem 3.2 (voluntary participation)",
            "min truthful utility >= 0",
            f"{margin:.4f}",
            margin >= 0.0,
        )
    )

    return ReproductionReport(checks=tuple(checks))
