"""Data generators for the paper's Figures 1–6.

Each ``figureN_data`` function returns the series the corresponding
figure plots; the benchmark harness prints them as rows so the
reproduction can be compared against the paper's bars at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.table1 import Table1Configuration, table1_configuration
from repro.experiments.table2 import (
    PAPER_SCENARIOS,
    Scenario,
    build_bid_and_execution_vectors,
)
from repro.mechanism.base import Mechanism
from repro.mechanism.compensation_bonus import VerificationMechanism
from repro.types import MechanismOutcome

__all__ = [
    "ExperimentRecord",
    "run_scenario",
    "run_all_scenarios",
    "figure1_data",
    "figure2_data",
    "figure345_data",
    "figure6_data",
]


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of one Table 2 scenario on the Table 1 system."""

    scenario: Scenario
    outcome: MechanismOutcome

    @property
    def total_latency(self) -> float:
        """Realised total latency ``L`` (the quantity Figure 1 plots)."""
        return self.outcome.realised_latency

    @property
    def c1_payment(self) -> float:
        """Payment handed to the manipulating computer C1 (Figure 2)."""
        return float(self.outcome.payments.payment[0])

    @property
    def c1_utility(self) -> float:
        """Utility of computer C1 (Figure 2)."""
        return float(self.outcome.payments.utility[0])

    def degradation_percent(self, optimum: float) -> float:
        """Latency increase over the True1 optimum, in percent."""
        return 100.0 * (self.total_latency / optimum - 1.0)


def run_scenario(
    scenario: Scenario,
    config: Table1Configuration | None = None,
    mechanism: Mechanism | None = None,
) -> ExperimentRecord:
    """Evaluate one scenario with the closed-form mechanism."""
    if config is None:
        config = table1_configuration()
    if mechanism is None:
        mechanism = VerificationMechanism()
    true_values = config.cluster.true_values
    bids, executions = build_bid_and_execution_vectors(true_values, scenario)
    outcome = mechanism.run(
        bids, config.arrival_rate, executions, true_values=true_values
    )
    return ExperimentRecord(scenario=scenario, outcome=outcome)


def run_all_scenarios(
    config: Table1Configuration | None = None,
    mechanism: Mechanism | None = None,
    *,
    engine=None,
) -> list[ExperimentRecord]:
    """All eight Table 2 scenarios, in the paper's order.

    Pass a :class:`~repro.parallel.CampaignEngine` to submit the eight
    evaluations through the campaign layer instead (worker pool and
    result cache apply); the records come back bit-identical to the
    inline path.  The engine path covers the default mechanism only —
    a custom ``mechanism`` instance cannot be content-addressed.
    """
    if config is None:
        config = table1_configuration()
    if engine is not None:
        if mechanism is not None:
            raise ValueError(
                "engine-backed runs support the default mechanism only; "
                "pass mechanism=None"
            )
        from repro.parallel.campaigns import records_from_campaign, scenario_units

        return records_from_campaign(engine.run(scenario_units(config)))
    return [run_scenario(s, config, mechanism) for s in PAPER_SCENARIOS]


def figure1_data(
    config: Table1Configuration | None = None,
    *,
    records: list[ExperimentRecord] | None = None,
) -> dict[str, float]:
    """Figure 1 — total latency per experiment ("performance degradation").

    ``records`` lets a caller that already ran the scenario campaign
    (e.g. :func:`~repro.experiments.runner.reproduce_all`) build the
    figure without recomputing the eight evaluations.
    """
    if records is None:
        records = run_all_scenarios(config)
    return {r.scenario.name: r.total_latency for r in records}


def figure2_data(
    config: Table1Configuration | None = None,
    mechanism: Mechanism | None = None,
    *,
    records: list[ExperimentRecord] | None = None,
) -> dict[str, tuple[float, float]]:
    """Figure 2 — (payment, utility) of computer C1 per experiment.

    Pass ``VerificationMechanism("declared")`` to reproduce the paper's
    prose variant where Low2's *payment* (not just utility) is negative;
    the default follows the paper's formal Definition 3.3.
    """
    if records is None:
        records = run_all_scenarios(config, mechanism)
    return {r.scenario.name: (r.c1_payment, r.c1_utility) for r in records}


def _record_for(
    scenario_name: str,
    config: Table1Configuration | None,
    records: list[ExperimentRecord] | None,
) -> ExperimentRecord:
    """One scenario's record, from a precomputed campaign if given."""
    from repro.experiments.table2 import scenario_by_name

    scenario = scenario_by_name(scenario_name)
    if records is not None:
        for record in records:
            if record.scenario.name == scenario.name:
                return record
        raise KeyError(f"no precomputed record for scenario {scenario.name!r}")
    return run_scenario(scenario, config)


def figure345_data(
    scenario_name: str,
    config: Table1Configuration | None = None,
    *,
    records: list[ExperimentRecord] | None = None,
) -> dict[str, np.ndarray]:
    """Figures 3–5 — per-computer payment and utility for one experiment.

    Figure 3 is ``scenario_name="True1"``, Figure 4 ``"High1"``,
    Figure 5 ``"Low1"``.
    """
    record = _record_for(scenario_name, config, records)
    payments = record.outcome.payments
    return {
        "payment": payments.payment,
        "utility": payments.utility,
        "compensation": payments.compensation.copy(),
        "bonus": payments.bonus.copy(),
        "valuation": payments.valuation.copy(),
    }


def figure6_truthful_structure(
    config: Table1Configuration | None = None,
    *,
    records: list[ExperimentRecord] | None = None,
) -> dict[str, np.ndarray]:
    """Figure 6 — per-computer payment structure under truthful play.

    Returns per-computer payment, |valuation| and their ratio for the
    True1 profile.  The paper's frugality observation — every payment
    between 1x and 2.5x the computer's valuation — is a statement about
    this truthful structure: the lower bound is voluntary participation
    (Theorem 3.2), the ~2.5 upper bound is empirical.
    """
    record = _record_for(PAPER_SCENARIOS[0].name, config, records)  # True1
    payments = record.outcome.payments
    valuation_magnitude = np.abs(payments.valuation)
    return {
        "payment": payments.payment,
        "valuation": valuation_magnitude,
        "ratio": payments.payment / valuation_magnitude,
    }


def figure6_data(
    config: Table1Configuration | None = None,
    *,
    records: list[ExperimentRecord] | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 6 — payment structure per experiment.

    For each scenario: total payment, total valuation magnitude (the
    agents' aggregate cost), and their ratio.  The paper's frugality
    observation is that the ratio never exceeds ~2.5 and is bounded
    below by 1 (voluntary participation).
    """
    if records is None:
        records = run_all_scenarios(config)
    data: dict[str, dict[str, float]] = {}
    for record in records:
        payments = record.outcome.payments
        data[record.scenario.name] = {
            "total_payment": payments.total_payment,
            "total_valuation": payments.total_valuation_magnitude,
            "ratio": record.outcome.frugality_ratio,
        }
    return data
