"""The paper's Section 4 evaluation: tables, scenarios, and figure data.

* :mod:`repro.experiments.table1` — the 16-computer system configuration;
* :mod:`repro.experiments.table2` — the eight bid/execution scenarios;
* :mod:`repro.experiments.figures` — data generators for Figures 1–6;
* :mod:`repro.experiments.report` — plain-text table rendering used by
  the benchmark harness to print the same rows the paper reports;
* :mod:`repro.experiments.tournament` — the cross-mechanism tournament
  (verification vs VCG vs Archer–Tardos under coalitions of liars).
"""

from repro.experiments.table1 import table1_configuration
from repro.experiments.table2 import (
    Scenario,
    PAPER_SCENARIOS,
    scenario_by_name,
    build_bid_and_execution_vectors,
)
from repro.experiments.figures import (
    ExperimentRecord,
    run_scenario,
    run_all_scenarios,
    figure1_data,
    figure2_data,
    figure345_data,
    figure6_data,
    figure6_truthful_structure,
)
from repro.experiments.report import render_table, render_records
from repro.experiments.runner import ReproductionBundle, reproduce_all
from repro.experiments.generalization import (
    GeneralizationResult,
    generalization_study,
)
from repro.experiments.paper_check import (
    ClaimCheck,
    ReproductionReport,
    verify_reproduction,
)
from repro.experiments.io import (
    records_to_json,
    records_to_csv,
    load_records_json,
)
from repro.experiments.tournament import (
    EquilibriumRow,
    ManipulationPattern,
    TOURNAMENT_VARIANTS,
    TournamentResult,
    TournamentRow,
    run_tournament,
    tournament_patterns,
    tournament_units,
)

__all__ = [
    "table1_configuration",
    "Scenario",
    "PAPER_SCENARIOS",
    "scenario_by_name",
    "build_bid_and_execution_vectors",
    "ExperimentRecord",
    "run_scenario",
    "run_all_scenarios",
    "figure1_data",
    "figure2_data",
    "figure345_data",
    "figure6_data",
    "figure6_truthful_structure",
    "ReproductionBundle",
    "reproduce_all",
    "GeneralizationResult",
    "generalization_study",
    "ClaimCheck",
    "ReproductionReport",
    "verify_reproduction",
    "records_to_json",
    "records_to_csv",
    "load_records_json",
    "render_table",
    "render_records",
    "EquilibriumRow",
    "ManipulationPattern",
    "TOURNAMENT_VARIANTS",
    "TournamentResult",
    "TournamentRow",
    "run_tournament",
    "tournament_patterns",
    "tournament_units",
]
