"""Table 2: the eight experiment scenarios.

All machines except C1 bid truthfully and execute at capacity; the
scenarios vary C1's bid factor and execution factor.  The factors below
were reconstructed from the paper's prose (see DESIGN.md §2): Low1/Low2
are pinned exactly by the reported +11% / +66% latency increases;
High1–High4's "three times higher" bid and faster/slower executions are
stated outright; True2's execution multiplier is the one unrecoverable
entry — we use 2.0 ("two times slower", the same manipulation Low2
describes), which preserves the figure's shape (paper +17%, ours +19.6%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_index

__all__ = [
    "Scenario",
    "PAPER_SCENARIOS",
    "scenario_by_name",
    "build_bid_and_execution_vectors",
]


@dataclass(frozen=True)
class Scenario:
    """One Table 2 experiment: C1's declared and actual behaviour.

    Attributes
    ----------
    name:
        The paper's experiment label (``True1`` .. ``Low2``).
    bid_factor:
        ``b_1 = bid_factor * t_1``.
    execution_factor:
        ``t̃_1 = execution_factor * t_1`` (>= 1: capacity constraint).
    characterization:
        The paper's one-line description of the manipulation class.
    """

    name: str
    bid_factor: float
    execution_factor: float
    characterization: str

    def __post_init__(self) -> None:
        if self.bid_factor <= 0.0:
            raise ValueError("bid_factor must be positive")
        if self.execution_factor < 1.0:
            raise ValueError("execution_factor must be >= 1")

    @property
    def is_truthful_bid(self) -> bool:
        """Whether C1 declares its true value in this scenario."""
        return self.bid_factor == 1.0

    @property
    def is_full_capacity(self) -> bool:
        """Whether C1 executes at its true processing rate."""
        return self.execution_factor == 1.0

    def as_config(self) -> dict:
        """JSON-safe dict of the result-affecting fields.

        The ``characterization`` string is presentation, not behaviour,
        so it is deliberately excluded — two scenarios that act the
        same hash the same in campaign cache keys.
        """
        return {
            "name": self.name,
            "bid_factor": float(self.bid_factor),
            "execution_factor": float(self.execution_factor),
        }


#: Table 2, in the paper's order.
PAPER_SCENARIOS: tuple[Scenario, ...] = (
    Scenario("True1", 1.0, 1.0, "True: b1 = t1, t̃1 = t1"),
    Scenario("True2", 1.0, 2.0, "True: b1 = t1, t̃1 > t1"),
    Scenario("High1", 3.0, 3.0, "High: b1 > t1, t̃1 = b1"),
    Scenario("High2", 3.0, 1.0, "High: b1 > t1, t̃1 = t1"),
    Scenario("High3", 3.0, 2.0, "High: b1 > t1, t1 < t̃1 < b1"),
    Scenario("High4", 3.0, 4.0, "High: b1 > t1, t̃1 > b1"),
    Scenario("Low1", 0.5, 1.0, "Low: b1 < t1, t̃1 = t1"),
    Scenario("Low2", 0.5, 2.0, "Low: b1 < t1, t̃1 > t1"),
)


def scenario_by_name(name: str) -> Scenario:
    """Look up a Table 2 scenario by its paper label (case-insensitive)."""
    for scenario in PAPER_SCENARIOS:
        if scenario.name.lower() == name.lower():
            return scenario
    known = ", ".join(s.name for s in PAPER_SCENARIOS)
    raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")


def build_bid_and_execution_vectors(
    true_values: np.ndarray,
    scenario: Scenario,
    manipulator: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Bid and execution vectors for a scenario applied to one machine.

    Every machine except ``manipulator`` (C1 by default) bids its true
    value and executes at capacity.
    """
    true_values = np.asarray(true_values, dtype=np.float64)
    manipulator = check_index(manipulator, true_values.size, "manipulator")
    bids = true_values.copy()
    executions = true_values.copy()
    bids[manipulator] *= scenario.bid_factor
    executions[manipulator] *= scenario.execution_factor
    return bids, executions
