"""Minimal discrete-event simulation core.

A classic event-calendar design: a priority queue of timestamped
events, a clock that jumps from event to event, and handlers that may
schedule further events.  Deliberately small — just enough to run the
machine processes and the mechanism protocol — but complete: stable
FIFO ordering of simultaneous events, cancellation, and run-until
horizons are all supported and tested.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is (time, sequence number), so simultaneous events fire in
    the order they were scheduled (stable FIFO tie-breaking).
    """

    time: float
    seq: int
    handler: Callable[["Simulator"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _on_cancel: Callable[[], None] | None = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it surfaces."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()

    def _detach(self) -> None:
        # Once an event leaves the queue live, cancelling the stale
        # handle must not disturb the queue's live count.
        self._on_cancel = None


class EventQueue:
    """Priority queue of events with lazy cancellation.

    ``__len__``/``__bool__`` are O(1): a live-event counter is bumped on
    push and decremented the moment an event is cancelled or popped
    live, so no scan over lazily-cancelled heap entries is ever needed.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, handler: Callable[["Simulator"], None]) -> Event:
        """Schedule ``handler`` at ``time`` and return the event handle."""
        event = Event(time=time, seq=next(self._counter), handler=handler)
        event._on_cancel = self._note_cancel
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _note_cancel(self) -> None:
        self._live -= 1

    def pop(self) -> Event | None:
        """Next non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event._detach()
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Event-driven simulator with a monotone clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule(self, delay: float, handler: Callable[["Simulator"], None]) -> Event:
        """Schedule ``handler`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay:g}")
        return self._queue.push(self.now + delay, handler)

    def schedule_at(self, time: float, handler: Callable[["Simulator"], None]) -> Event:
        """Schedule ``handler`` at absolute ``time`` (>= the current clock)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time:g}, before the current time {self.now:g}"
            )
        return self._queue.push(time, handler)

    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event is past this horizon (the clock is
            then advanced to the horizon).  ``None`` runs to quiescence.
        """
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None  # peek_time said there was one
            self.now = event.time
            self.events_processed += 1
            event.handler(self)
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of live scheduled events."""
        return len(self._queue)
