"""Machine process models running on the discrete-event simulator.

Two models:

* :class:`LinearLatencyMachine` — realises the paper's linear latency
  semantics ``l(x) = t̃ x``: when configured for an arrival rate ``x``,
  each job's completion time is drawn with mean ``t̃ x`` (exponential by
  default) and jobs are served concurrently (contention is captured by
  the load-dependent mean, not by queueing).  The time-average sojourn
  therefore converges to ``t̃ x`` — exactly the quantity the paper's
  verification step must estimate.  This is our executable substitute
  for the paper's "the processing rate with which the jobs were
  actually executed is known to the mechanism" (see DESIGN.md §5).

* :class:`QueueingMachine` — a FIFO single server with i.i.d. service
  times; with exponential service this is the M/M/1 whose sojourn time
  ``1/(mu - x)`` the :class:`~repro.latency.MM1LatencyModel` predicts,
  giving the test suite an independent empirical check of the latency
  substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._validation import check_positive_scalar
from repro.system.des import Simulator
from repro.system.workload import Job

__all__ = ["MachineStats", "LinearLatencyMachine", "QueueingMachine"]


@dataclass(frozen=True)
class MachineStats:
    """Summary of the jobs a machine completed during a run."""

    completed: int
    mean_sojourn: float
    total_busy_time: float

    @property
    def is_empty(self) -> bool:
        """True when the machine completed no jobs."""
        return self.completed == 0


class _RecordingMachine:
    """Shared bookkeeping: per-job sojourn records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sojourn_times: list[float] = []
        self._busy_time = 0.0

    def stats(self) -> MachineStats:
        sojourns = np.asarray(self.sojourn_times, dtype=np.float64)
        return MachineStats(
            completed=int(sojourns.size),
            mean_sojourn=float(sojourns.mean()) if sojourns.size else float("nan"),
            total_busy_time=self._busy_time,
        )


class LinearLatencyMachine(_RecordingMachine):
    """Concurrent server whose per-job time has mean ``t̃ * configured_load``.

    Parameters
    ----------
    name:
        Machine identifier (used in protocol messages).
    execution_value:
        The slope ``t̃`` the machine actually runs at.
    rng:
        Random generator for service-time draws.
    service_sampler:
        Optional override mapping a mean to one sampled service time;
        defaults to exponential.  Pass ``lambda mean, rng: mean`` for a
        deterministic machine (used in noise-free protocol tests).
    batch_service_sampler:
        Optional vectorised counterpart mapping ``(mean, size, rng)``
        to an array of ``size`` sampled service times; used by
        :meth:`submit_batch`.  When omitted, the batch path falls back
        to one ``rng.exponential(mean, size)`` draw (default sampler)
        or a per-job loop over ``service_sampler`` (custom sampler).
    """

    def __init__(
        self,
        name: str,
        execution_value: float,
        rng: np.random.Generator,
        service_sampler: Callable[[float, np.random.Generator], float] | None = None,
        batch_service_sampler: (
            Callable[[float, int, np.random.Generator], np.ndarray] | None
        ) = None,
    ) -> None:
        super().__init__(name)
        self.execution_value = check_positive_scalar(
            execution_value, "execution_value"
        )
        self._rng = rng
        self._default_sampler = service_sampler is None
        self._sampler = service_sampler or (
            lambda mean, rng: float(rng.exponential(mean))
        )
        self._batch_sampler = batch_service_sampler
        self._configured_load: float | None = None

    def configure(self, load: float) -> None:
        """Set the arrival rate the allocator routed to this machine.

        The linear model's per-job latency depends on the traffic level;
        the machine must know it to realise the right service mean.
        A zero load is allowed (the machine then refuses jobs).
        """
        if load < 0.0:
            raise ValueError("load must be non-negative")
        self._configured_load = float(load)

    def submit(self, sim: Simulator, job: Job) -> None:
        """Accept a job now; schedules its completion event."""
        if self._configured_load is None:
            raise RuntimeError(f"machine {self.name} was not configured with a load")
        if self._configured_load == 0.0:
            raise RuntimeError(
                f"machine {self.name} received a job but was allocated zero load"
            )
        mean = self.execution_value * self._configured_load
        duration = self._sampler(mean, self._rng)
        if duration < 0.0:
            raise ValueError("service_sampler returned a negative duration")
        start = sim.now

        def complete(s: Simulator) -> None:
            self.sojourn_times.append(s.now - start)
            self._busy_time += s.now - start

        sim.schedule(duration, complete)

    def _sample_batch(self, mean: float, size: int) -> np.ndarray:
        if self._batch_sampler is not None:
            return np.asarray(
                self._batch_sampler(mean, size, self._rng), dtype=np.float64
            )
        if self._default_sampler:
            return self._rng.exponential(mean, size=size)
        return np.asarray(
            [self._sampler(mean, self._rng) for _ in range(size)],
            dtype=np.float64,
        )

    def submit_batch(self, arrival_times: np.ndarray) -> np.ndarray:
        """Accept a whole arrival stream at once; returns completion times.

        The batched twin of :meth:`submit`: one vectorised service draw
        covers every job, statistics are aggregated without touching
        the event heap, and the absolute completion times come back so
        the caller can advance the simulator clock with a single
        horizon event.

        Sojourns are recorded as ``(arrival + duration) - arrival``
        elementwise — the exact float the event path's completion
        handler computes from the clock — so a deterministic-service
        round is bit-identical between the two execution engines.
        """
        arrival_times = np.asarray(arrival_times, dtype=np.float64)
        if self._configured_load is None:
            raise RuntimeError(f"machine {self.name} was not configured with a load")
        if arrival_times.size == 0:
            return arrival_times.copy()
        if self._configured_load == 0.0:
            raise RuntimeError(
                f"machine {self.name} received a job but was allocated zero load"
            )
        mean = self.execution_value * self._configured_load
        durations = self._sample_batch(mean, int(arrival_times.size))
        if durations.shape != arrival_times.shape:
            raise ValueError(
                "batch_service_sampler returned "
                f"{durations.shape} durations for {arrival_times.size} jobs"
            )
        if np.any(durations < 0.0):
            raise ValueError("service sampler returned a negative duration")
        completions = arrival_times + durations
        sojourns = completions - arrival_times
        self.sojourn_times.extend(sojourns.tolist())
        self._busy_time += float(sojourns.sum())
        return completions


class QueueingMachine(_RecordingMachine):
    """FIFO single-server queue with i.i.d. service times.

    With the default exponential sampler and Poisson arrivals this is
    an M/M/1 queue; pass a constant sampler for M/D/1, etc.

    Parameters
    ----------
    name:
        Machine identifier.
    service_rate:
        ``mu``: expected jobs served per second when busy.
    rng:
        Random generator for the service draws.
    service_sampler:
        Optional override mapping (mean, rng) to a sampled service
        time; defaults to exponential with mean ``1/mu``.
    """

    def __init__(
        self,
        name: str,
        service_rate: float,
        rng: np.random.Generator,
        service_sampler: Callable[[float, np.random.Generator], float] | None = None,
    ) -> None:
        super().__init__(name)
        self.service_rate = check_positive_scalar(service_rate, "service_rate")
        self._rng = rng
        self._sampler = service_sampler or (
            lambda mean, rng: float(rng.exponential(mean))
        )
        self._free_at = 0.0  # time the server finishes its current backlog

    def submit(self, sim: Simulator, job: Job) -> None:
        """Accept a job now; it waits for the backlog then is served."""
        service = self._sampler(1.0 / self.service_rate, self._rng)
        if service < 0.0:
            raise ValueError("service_sampler returned a negative duration")
        start_service = max(sim.now, self._free_at)
        finish = start_service + service
        self._free_at = finish
        arrival = sim.now
        self._busy_time += service

        def complete(s: Simulator) -> None:
            self.sojourn_times.append(s.now - arrival)

        sim.schedule_at(finish, complete)
