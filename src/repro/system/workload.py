"""Job streams: the workloads the mechanism splits across machines.

The paper assumes "a large number of jobs ... arrive at the system with
an arrival rate R".  We model a job stream explicitly so the protocol
simulation can route individual jobs, observe completions, and estimate
execution rates.  Two generators are provided: Poisson arrivals (the
queueing-theoretic reading of "arrival rate") and a deterministic
equally-spaced stream (useful for noise-free protocol tests).

Beyond the paper's fixed ``R``, this module also models *nonstationary*
arrivals (ROADMAP item 1): an :class:`ArrivalSchedule` describes a
time-varying rate ``R(t)`` and generates each round's arrivals by
thinning a dominating homogeneous Poisson process.  Two concrete
schedules are provided — :class:`PiecewiseConstantSchedule` (bursts,
regime shifts) and :class:`SinusoidalSchedule` (diurnal modulation) —
and both plug into ``RoundSupervisor(arrival_schedule=)`` and the
horizon-fused engine, which share this module's generation code so
their RNG streams match draw for draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._validation import check_positive_scalar

__all__ = [
    "Job",
    "PoissonWorkload",
    "DeterministicWorkload",
    "ArrivalSchedule",
    "ConstantSchedule",
    "PiecewiseConstantSchedule",
    "SinusoidalSchedule",
    "split_workload",
    "split_assignments",
]


@dataclass(frozen=True)
class Job:
    """A single job: identity and arrival time (seconds)."""

    job_id: int
    arrival_time: float


class PoissonWorkload:
    """Poisson job arrivals at a fixed rate.

    Parameters
    ----------
    rate:
        Expected arrivals per second (``R``).
    rng:
        Random generator; inject for reproducibility.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = check_positive_scalar(rate, "rate")
        self._rng = rng

    def generate_times(self, duration: float) -> np.ndarray:
        """Sorted arrival times in ``[0, duration)`` as one array.

        Draws the count from Poisson(rate * duration) and positions
        uniformly — equivalent to sequential exponential gaps but one
        vectorised draw instead of a Python loop.  This is the batched
        execution engine's entry point; :meth:`generate` wraps it, so
        both consume the identical RNG stream.
        """
        duration = check_positive_scalar(duration, "duration")
        count = int(self._rng.poisson(self.rate * duration))
        return np.sort(self._rng.uniform(0.0, duration, size=count))

    def horizon_times(self, duration: float, n_rounds: int) -> list[np.ndarray]:
        """Arrival times for ``n_rounds`` consecutive windows of ``duration``.

        The horizon-fused round engine's entry point: one call covers a
        whole fusible segment.  Entry ``r`` holds round ``r``'s sorted
        arrival times, each relative to its own window start.

        The draws are intentionally *not* collapsed into a single
        Poisson sample for the segment: the sequential supervisor
        interleaves each round's count draw, position draws, and
        routing draws, so a segment-level draw would consume the RNG
        stream in a different order and break the engine's bit-parity
        contract.  This method therefore loops :meth:`generate_times`
        per round — the fusion win comes from skipping the per-round
        protocol machinery, not from merging the (already vectorised)
        workload draws.
        """
        n_rounds = int(n_rounds)
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        return [self.generate_times(duration) for _ in range(n_rounds)]

    def generate(self, duration: float) -> list[Job]:
        """All jobs arriving in ``[0, duration)`` as :class:`Job` objects."""
        times = self.generate_times(duration)
        return [Job(job_id=i, arrival_time=float(t)) for i, t in enumerate(times)]

    def arrival_iter(self, duration: float) -> Iterator[Job]:
        """Iterator form of :meth:`generate` (jobs in arrival order)."""
        return iter(self.generate(duration))


class DeterministicWorkload:
    """Equally spaced arrivals at a fixed rate (no randomness)."""

    def __init__(self, rate: float) -> None:
        self.rate = check_positive_scalar(rate, "rate")

    def generate_times(self, duration: float) -> np.ndarray:
        """Arrival times at ``k / rate`` for every ``k / rate < duration``."""
        duration = check_positive_scalar(duration, "duration")
        count = int(np.floor(self.rate * duration))
        return np.arange(count, dtype=np.float64) / self.rate

    def generate(self, duration: float) -> list[Job]:
        """Jobs at ``k / rate`` for every ``k`` with ``k / rate < duration``."""
        times = self.generate_times(duration)
        return [Job(job_id=i, arrival_time=float(t)) for i, t in enumerate(times)]


class ArrivalSchedule:
    """A time-varying arrival rate ``R(t)`` with thinning-based sampling.

    Subclasses describe the instantaneous rate and two summary
    quantities the samplers need: a finite upper bound on any window
    and the exact rate integral (the expected arrival count).  The
    base class supplies the generation machinery, so every schedule
    consumes the identical RNG stream for identical windows:

    1. ``count ~ Poisson(upper * duration)`` for the dominating
       homogeneous process at the window's rate bound;
    2. ``count`` candidate positions, uniform in the window, sorted;
    3. one uniform acceptance draw per candidate, keeping each at
       relative time ``u`` with probability ``R(start + u) / upper``.

    The accepted points are an exact (Lewis–Shedler) draw from the
    inhomogeneous Poisson process restricted to the window, and the
    fixed draw order is what lets the horizon-fused engine and the
    sequential supervisor share one stream bit for bit.
    """

    def rate(self, t):
        """Instantaneous rate ``R(t)``; accepts scalars or arrays."""
        raise NotImplementedError

    def max_rate(self, start: float, end: float) -> float:
        """A finite upper bound on ``R(t)`` over ``[start, end)``."""
        raise NotImplementedError

    def integral(self, start: float, end: float) -> float:
        """Exact ``∫ R(t) dt`` over ``[start, end)``."""
        raise NotImplementedError

    def mean_rate(self, start: float, end: float) -> float:
        """The window's equivalent constant rate, ``∫R / (end-start)``.

        This is the scalar ``R`` the allocator and mechanism see for a
        round covering the window: the PR optimum only depends on the
        total mass of jobs, not on when they arrive inside the round.
        """
        if not end > start:
            raise ValueError("end must exceed start")
        return self.integral(start, end) / (end - start)

    def generate_times(
        self, rng: np.random.Generator, start: float, duration: float
    ) -> np.ndarray:
        """Sorted arrival times for ``[start, start+duration)``.

        Times are relative to ``start`` (in ``[0, duration)``), matching
        :meth:`PoissonWorkload.generate_times` so round drivers can use
        either interchangeably.
        """
        duration = check_positive_scalar(duration, "duration")
        start = float(start)
        upper = float(self.max_rate(start, start + duration))
        if not upper > 0.0:
            raise ValueError("schedule rate bound must be positive")
        count = int(rng.poisson(upper * duration))
        times = np.sort(rng.uniform(0.0, duration, size=count))
        accept = rng.random(count) * upper <= np.asarray(
            self.rate(start + times), dtype=np.float64
        )
        return times[accept]

    def horizon_times(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        n_rounds: int,
    ) -> list[np.ndarray]:
        """Per-round arrival times for ``n_rounds`` consecutive windows.

        Loops :meth:`generate_times` window by window for the same
        stream-parity reason as :meth:`PoissonWorkload.horizon_times`:
        the sequential supervisor interleaves each round's draws, so a
        merged segment-level draw would break bit parity.
        """
        n_rounds = int(n_rounds)
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        return [
            self.generate_times(rng, start + r * duration, duration)
            for r in range(n_rounds)
        ]


class ConstantSchedule(ArrivalSchedule):
    """The paper's stationary ``R(t) = R`` as a degenerate schedule.

    Useful as a property-test baseline: thinning at a tight bound
    accepts every candidate, so the counts follow the plain Poisson
    law exactly.
    """

    def __init__(self, rate: float) -> None:
        self._rate = check_positive_scalar(rate, "rate")

    def rate(self, t):
        """``R`` for every ``t`` (broadcast to the input's shape)."""
        return np.full_like(np.asarray(t, dtype=np.float64), self._rate)

    def max_rate(self, start: float, end: float) -> float:
        """``R`` — the bound is tight everywhere."""
        return self._rate

    def integral(self, start: float, end: float) -> float:
        """``R * (end - start)``."""
        if not end > start:
            raise ValueError("end must exceed start")
        return self._rate * (end - start)


class PiecewiseConstantSchedule(ArrivalSchedule):
    """Step-function rates: bursts, lulls, and regime shifts.

    Parameters
    ----------
    breakpoints:
        Ascending segment start times; the first must be ``0.0``.
        Segment ``i`` spans ``[breakpoints[i], breakpoints[i+1])`` and
        the final segment extends to infinity.
    rates:
        One strictly positive rate per segment.

    Examples
    --------
    >>> schedule = PiecewiseConstantSchedule([0.0, 10.0], [2.0, 6.0])
    >>> float(schedule.rate(5.0)), float(schedule.rate(15.0))
    (2.0, 6.0)
    >>> schedule.integral(5.0, 15.0)
    40.0
    """

    def __init__(self, breakpoints, rates) -> None:
        self._breakpoints = np.asarray(breakpoints, dtype=np.float64)
        self._rates = np.asarray(rates, dtype=np.float64)
        if self._breakpoints.ndim != 1 or self._breakpoints.size == 0:
            raise ValueError("breakpoints must be a non-empty 1-D array")
        if self._rates.shape != self._breakpoints.shape:
            raise ValueError("rates must match breakpoints in length")
        if self._breakpoints[0] != 0.0:
            raise ValueError("the first breakpoint must be 0.0")
        if np.any(np.diff(self._breakpoints) <= 0.0):
            raise ValueError("breakpoints must be strictly increasing")
        if np.any(self._rates <= 0.0) or not np.all(np.isfinite(self._rates)):
            raise ValueError("rates must be strictly positive and finite")

    def _segment_index(self, t) -> np.ndarray:
        raw = np.searchsorted(self._breakpoints, t, side="right") - 1
        return np.clip(raw, 0, self._breakpoints.size - 1)

    def rate(self, t):
        """The rate of the segment containing each ``t``."""
        return self._rates[self._segment_index(t)]

    def max_rate(self, start: float, end: float) -> float:
        """Max over the segments intersecting ``[start, end)`` (tight)."""
        if not end > start:
            raise ValueError("end must exceed start")
        lo = int(self._segment_index(start))
        hi = int(
            np.clip(
                np.searchsorted(self._breakpoints, end, side="left") - 1,
                0,
                self._breakpoints.size - 1,
            )
        )
        return float(self._rates[lo : hi + 1].max())

    def integral(self, start: float, end: float) -> float:
        """Sum of ``rate * overlap`` over every segment (exact)."""
        if not end > start:
            raise ValueError("end must exceed start")
        seg_starts = np.maximum(self._breakpoints, start)
        seg_ends = np.minimum(
            np.append(self._breakpoints[1:], np.inf), end
        )
        overlap = np.clip(seg_ends - seg_starts, 0.0, None)
        return float(np.dot(overlap, self._rates))


class SinusoidalSchedule(ArrivalSchedule):
    """Sinusoidally modulated rates: the diurnal-traffic model.

    ``R(t) = base_rate * (1 + amplitude * sin(2π t / period + phase))``
    with ``0 <= amplitude < 1`` so the rate stays strictly positive.

    Examples
    --------
    >>> schedule = SinusoidalSchedule(10.0, amplitude=0.5, period=100.0)
    >>> round(schedule.integral(0.0, 100.0), 9)   # one full period
    1000.0
    >>> schedule.max_rate(0.0, 100.0)
    15.0
    """

    def __init__(
        self,
        base_rate: float,
        *,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        self._base = check_positive_scalar(base_rate, "base_rate")
        self._amplitude = float(amplitude)
        if not 0.0 <= self._amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self._period = check_positive_scalar(period, "period")
        self._phase = float(phase)
        self._omega = 2.0 * np.pi / self._period

    def rate(self, t):
        """``base * (1 + amplitude * sin(ω t + phase))``."""
        t = np.asarray(t, dtype=np.float64)
        return self._base * (
            1.0 + self._amplitude * np.sin(self._omega * t + self._phase)
        )

    def max_rate(self, start: float, end: float) -> float:
        """The global peak ``base * (1 + amplitude)``.

        A window shorter than a period may peak lower, so this bound
        is conservative there — thinning stays exact either way, at
        the cost of a few extra rejected candidates.
        """
        return self._base * (1.0 + self._amplitude)

    def integral(self, start: float, end: float) -> float:
        """Closed-form ``∫ R`` via the antiderivative of ``sin``."""
        if not end > start:
            raise ValueError("end must exceed start")
        wobble = (
            np.cos(self._omega * start + self._phase)
            - np.cos(self._omega * end + self._phase)
        ) / self._omega
        return float(
            self._base * ((end - start) + self._amplitude * wobble)
        )


def split_workload(
    jobs: list[Job],
    fractions: np.ndarray,
    rng: np.random.Generator,
) -> list[list[Job]]:
    """Route a job stream to machines with the given probabilities.

    Probabilistic routing preserves the Poisson property of each
    substream (thinning), which is what makes the per-machine arrival
    rate ``x_i = fraction_i * R`` well defined for the latency models.

    Parameters
    ----------
    jobs:
        The incoming stream, in arrival order.
    fractions:
        Routing probabilities, one per machine; must sum to 1.
    rng:
        Random generator for the routing draws.
    """
    choices = split_assignments(len(jobs), fractions, rng)
    buckets: list[list[Job]] = [[] for _ in range(int(np.asarray(fractions).size))]
    for job, machine in zip(jobs, choices):
        buckets[int(machine)].append(job)
    return buckets


def split_assignments(
    count: int,
    fractions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Machine index for each of ``count`` jobs, drawn in one call.

    The vectorised core of :func:`split_workload`: validates the
    routing probabilities and draws all assignments with a single
    ``rng.choice``, so the batched execution engine consumes exactly
    the RNG stream the per-job event path consumes.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if fractions.ndim != 1 or fractions.size == 0:
        raise ValueError("fractions must be a non-empty 1-D array")
    if np.any(fractions < 0.0):
        raise ValueError("fractions must be non-negative")
    total = float(fractions.sum())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {total:g}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(fractions.size, size=count, p=fractions / total)
