"""Job streams: the workloads the mechanism splits across machines.

The paper assumes "a large number of jobs ... arrive at the system with
an arrival rate R".  We model a job stream explicitly so the protocol
simulation can route individual jobs, observe completions, and estimate
execution rates.  Two generators are provided: Poisson arrivals (the
queueing-theoretic reading of "arrival rate") and a deterministic
equally-spaced stream (useful for noise-free protocol tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._validation import check_positive_scalar

__all__ = [
    "Job",
    "PoissonWorkload",
    "DeterministicWorkload",
    "split_workload",
    "split_assignments",
]


@dataclass(frozen=True)
class Job:
    """A single job: identity and arrival time (seconds)."""

    job_id: int
    arrival_time: float


class PoissonWorkload:
    """Poisson job arrivals at a fixed rate.

    Parameters
    ----------
    rate:
        Expected arrivals per second (``R``).
    rng:
        Random generator; inject for reproducibility.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = check_positive_scalar(rate, "rate")
        self._rng = rng

    def generate_times(self, duration: float) -> np.ndarray:
        """Sorted arrival times in ``[0, duration)`` as one array.

        Draws the count from Poisson(rate * duration) and positions
        uniformly — equivalent to sequential exponential gaps but one
        vectorised draw instead of a Python loop.  This is the batched
        execution engine's entry point; :meth:`generate` wraps it, so
        both consume the identical RNG stream.
        """
        duration = check_positive_scalar(duration, "duration")
        count = int(self._rng.poisson(self.rate * duration))
        return np.sort(self._rng.uniform(0.0, duration, size=count))

    def generate(self, duration: float) -> list[Job]:
        """All jobs arriving in ``[0, duration)`` as :class:`Job` objects."""
        times = self.generate_times(duration)
        return [Job(job_id=i, arrival_time=float(t)) for i, t in enumerate(times)]

    def arrival_iter(self, duration: float) -> Iterator[Job]:
        """Iterator form of :meth:`generate` (jobs in arrival order)."""
        return iter(self.generate(duration))


class DeterministicWorkload:
    """Equally spaced arrivals at a fixed rate (no randomness)."""

    def __init__(self, rate: float) -> None:
        self.rate = check_positive_scalar(rate, "rate")

    def generate_times(self, duration: float) -> np.ndarray:
        """Arrival times at ``k / rate`` for every ``k / rate < duration``."""
        duration = check_positive_scalar(duration, "duration")
        count = int(np.floor(self.rate * duration))
        return np.arange(count, dtype=np.float64) / self.rate

    def generate(self, duration: float) -> list[Job]:
        """Jobs at ``k / rate`` for every ``k`` with ``k / rate < duration``."""
        times = self.generate_times(duration)
        return [Job(job_id=i, arrival_time=float(t)) for i, t in enumerate(times)]


def split_workload(
    jobs: list[Job],
    fractions: np.ndarray,
    rng: np.random.Generator,
) -> list[list[Job]]:
    """Route a job stream to machines with the given probabilities.

    Probabilistic routing preserves the Poisson property of each
    substream (thinning), which is what makes the per-machine arrival
    rate ``x_i = fraction_i * R`` well defined for the latency models.

    Parameters
    ----------
    jobs:
        The incoming stream, in arrival order.
    fractions:
        Routing probabilities, one per machine; must sum to 1.
    rng:
        Random generator for the routing draws.
    """
    choices = split_assignments(len(jobs), fractions, rng)
    buckets: list[list[Job]] = [[] for _ in range(int(np.asarray(fractions).size))]
    for job, machine in zip(jobs, choices):
        buckets[int(machine)].append(job)
    return buckets


def split_assignments(
    count: int,
    fractions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Machine index for each of ``count`` jobs, drawn in one call.

    The vectorised core of :func:`split_workload`: validates the
    routing probabilities and draws all assignments with a single
    ``rng.choice``, so the batched execution engine consumes exactly
    the RNG stream the per-job event path consumes.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if fractions.ndim != 1 or fractions.size == 0:
        raise ValueError("fractions must be a non-empty 1-D array")
    if np.any(fractions < 0.0):
        raise ValueError("fractions must be non-negative")
    total = float(fractions.sum())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {total:g}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(fractions.size, size=count, p=fractions / total)
