"""Vectorised single-server queue simulation (Lindley recursion).

Used by the test suite to validate the analytic latency models against
an independent empirical source: the M/M/1 sojourn time must match
``1/(mu - x)`` and the M/G/1 waiting time must match Pollaczek–Khinchine
(and hence, at light load, the paper's linear model).

The waiting-time recursion ``W_{n+1} = max(0, W_n + S_n - A_{n+1})``
looks inherently sequential, but with prefix sums ``P_n`` of
``U_i = S_i - A_{i+1}`` it has the closed form
``W_{n+1} = P_n - min_{k <= n} P_k``, so the whole sample path is two
``numpy`` scans (``cumsum`` + ``minimum.accumulate``) — no Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_scalar

__all__ = ["QueueStats", "lindley_waits", "simulate_mm1", "simulate_mg1"]


@dataclass(frozen=True)
class QueueStats:
    """Summary statistics of one queue simulation run."""

    n_jobs: int
    mean_wait: float
    mean_sojourn: float
    std_sojourn: float
    utilisation: float

    def sojourn_stderr(self) -> float:
        """Naive standard error of the mean sojourn time.

        Sojourn times are autocorrelated, so this underestimates the
        true error; tests use generous tolerances instead of relying on
        it for tight confidence intervals.
        """
        if self.n_jobs == 0:
            return float("nan")
        return self.std_sojourn / np.sqrt(self.n_jobs)


def lindley_waits(interarrival: np.ndarray, service: np.ndarray) -> np.ndarray:
    """Waiting times of a FIFO G/G/1 queue, fully vectorised.

    Parameters
    ----------
    interarrival:
        ``A_2..A_n``: gaps between consecutive arrivals (length n-1 for
        n jobs; the first job arrives to an empty system).
    service:
        ``S_1..S_n``: service times (length n).

    Returns
    -------
    numpy.ndarray
        ``W_1..W_n`` with ``W_1 = 0``.
    """
    interarrival = np.asarray(interarrival, dtype=np.float64)
    service = np.asarray(service, dtype=np.float64)
    if service.ndim != 1 or interarrival.ndim != 1:
        raise ValueError("interarrival and service must be 1-D arrays")
    if interarrival.size != service.size - 1:
        raise ValueError(
            "interarrival must have exactly one fewer entry than service"
        )
    if np.any(interarrival < 0.0) or np.any(service < 0.0):
        raise ValueError("interarrival and service times must be non-negative")

    if service.size == 1:
        return np.zeros(1)

    increments = service[:-1] - interarrival  # U_1..U_{n-1}
    prefix = np.empty(service.size)
    prefix[0] = 0.0
    np.cumsum(increments, out=prefix[1:])
    running_min = np.minimum.accumulate(prefix)
    return prefix - running_min


def _stats(
    waits: np.ndarray,
    service: np.ndarray,
    total_time: float,
    warmup_fraction: float,
) -> QueueStats:
    n = waits.size
    skip = int(warmup_fraction * n)
    sojourn = waits[skip:] + service[skip:]
    return QueueStats(
        n_jobs=int(sojourn.size),
        mean_wait=float(waits[skip:].mean()),
        mean_sojourn=float(sojourn.mean()),
        std_sojourn=float(sojourn.std()),
        utilisation=float(service.sum() / total_time) if total_time > 0 else 0.0,
    )


def simulate_mm1(
    arrival_rate: float,
    service_rate: float,
    n_jobs: int,
    rng: np.random.Generator,
    *,
    warmup_fraction: float = 0.2,
) -> QueueStats:
    """Simulate an M/M/1 queue and summarise sojourn times.

    Requires a stable system (``arrival_rate < service_rate``).
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    service_rate = check_positive_scalar(service_rate, "service_rate")
    if arrival_rate >= service_rate:
        raise ValueError("M/M/1 requires arrival_rate < service_rate")
    if n_jobs < 2:
        raise ValueError("n_jobs must be at least 2")

    interarrival = rng.exponential(1.0 / arrival_rate, size=n_jobs - 1)
    service = rng.exponential(1.0 / service_rate, size=n_jobs)
    waits = lindley_waits(interarrival, service)
    total_time = float(interarrival.sum() + waits[-1] + service[-1])
    return _stats(waits, service, total_time, warmup_fraction)


def simulate_mg1(
    arrival_rate: float,
    service_times: np.ndarray,
    rng: np.random.Generator,
    *,
    warmup_fraction: float = 0.2,
) -> QueueStats:
    """Simulate an M/G/1 queue with caller-supplied service samples.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate; must keep ``rho = rate * mean(S) < 1``.
    service_times:
        One sampled service time per job (defines G).
    rng:
        Generator for the arrival process.
    """
    arrival_rate = check_positive_scalar(arrival_rate, "arrival_rate")
    service = np.asarray(service_times, dtype=np.float64)
    if service.ndim != 1 or service.size < 2:
        raise ValueError("service_times must be a 1-D array with at least 2 entries")
    if np.any(service < 0.0):
        raise ValueError("service_times must be non-negative")
    rho = arrival_rate * float(service.mean())
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilisation {rho:g} >= 1")

    interarrival = rng.exponential(1.0 / arrival_rate, size=service.size - 1)
    waits = lindley_waits(interarrival, service)
    total_time = float(interarrival.sum() + waits[-1] + service[-1])
    return _stats(waits, service, total_time, warmup_fraction)
