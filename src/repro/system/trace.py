"""Workload traces: record, inspect, and replay job streams.

The paper has no production traces (its workload is "jobs arrive at
rate R"); DESIGN.md §5 substitutes synthetic Poisson streams.  For
experiments that must be replayed exactly — regression baselines,
cross-implementation comparisons, bug reports — this module serialises
a job stream to a JSON trace file with summary statistics, and loads it
back bit-exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.system.workload import Job

__all__ = ["TraceStats", "save_trace", "load_trace", "trace_stats"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a job trace."""

    n_jobs: int
    duration: float
    mean_rate: float
    interarrival_cv: float

    @property
    def looks_poissonian(self) -> bool:
        """Whether the gap coefficient of variation is near 1.

        Exponential gaps have CV exactly 1; a deterministic clock has
        CV 0.  The band [0.9, 1.1] is a coarse screen, not a formal
        test — use it for sanity checks, not inference.
        """
        return 0.9 <= self.interarrival_cv <= 1.1


def trace_stats(jobs: Sequence[Job]) -> TraceStats:
    """Compute summary statistics for a job stream."""
    if len(jobs) < 2:
        raise ValueError("a trace needs at least two jobs for statistics")
    times = np.array([job.arrival_time for job in jobs])
    if np.any(np.diff(times) < 0.0):
        raise ValueError("jobs must be in arrival order")
    gaps = np.diff(times)
    duration = float(times[-1] - times[0])
    mean_gap = float(gaps.mean())
    cv = float(gaps.std() / mean_gap) if mean_gap > 0 else float("inf")
    return TraceStats(
        n_jobs=len(jobs),
        duration=duration,
        mean_rate=(len(jobs) - 1) / duration if duration > 0 else float("inf"),
        interarrival_cv=cv,
    )


def save_trace(jobs: Sequence[Job], path: Path | str) -> None:
    """Write a job stream to a JSON trace file (with embedded stats)."""
    path = Path(path)
    stats = trace_stats(jobs) if len(jobs) >= 2 else None
    document = {
        "format_version": _FORMAT_VERSION,
        "n_jobs": len(jobs),
        "stats": (
            {
                "duration": stats.duration,
                "mean_rate": stats.mean_rate,
                "interarrival_cv": stats.interarrival_cv,
            }
            if stats
            else None
        ),
        # Hex floats round-trip exactly; decimal repr may not.
        "arrival_times": [job.arrival_time.hex() for job in jobs],
    }
    path.write_text(json.dumps(document, indent=1) + "\n")


def load_trace(path: Path | str) -> list[Job]:
    """Load a trace file back into a job stream (bit-exact)."""
    document = json.loads(Path(path).read_text())
    if document.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {document.get('format_version')!r}"
        )
    times = [float.fromhex(value) for value in document["arrival_times"]]
    if len(times) != document["n_jobs"]:
        raise ValueError("trace is corrupt: job count does not match times")
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("trace is corrupt: arrival times are not sorted")
    return [Job(job_id=i, arrival_time=t) for i, t in enumerate(times)]
