"""Heterogeneous cluster configurations.

Provides the paper's 16-computer system (Table 1) and generators for
random and grouped clusters used by the scaling and sensitivity
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_float_array, check_positive, check_positive_scalar
from repro.latency.linear import LinearLatencyModel

__all__ = ["Cluster", "paper_cluster", "random_cluster", "grouped_cluster"]

#: Table 1 of the paper, reconstructed (see DESIGN.md §2): true latency
#: slopes of computers C1..C16.
PAPER_TRUE_VALUES: tuple[float, ...] = (
    1.0, 1.0,                      # C1 - C2
    2.0, 2.0, 2.0,                 # C3 - C5
    5.0, 5.0, 5.0, 5.0, 5.0,       # C6 - C10
    10.0, 10.0, 10.0, 10.0, 10.0, 10.0,  # C11 - C16
)

#: job arrival rate used throughout the paper's Section 4
PAPER_ARRIVAL_RATE: float = 20.0


@dataclass(frozen=True)
class Cluster:
    """A named heterogeneous cluster of machines with linear latencies.

    Attributes
    ----------
    true_values:
        Private latency slopes ``t_i`` of the machines.
    names:
        Human-readable machine names (``C1``.. by default).
    """

    true_values: np.ndarray
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        values = as_float_array(self.true_values, "true_values")
        check_positive(values, "true_values")
        values.setflags(write=False)
        object.__setattr__(self, "true_values", values)
        if len(self.names) != values.size:
            raise ValueError("names must have one entry per machine")

    @property
    def n_machines(self) -> int:
        """Number of machines."""
        return int(self.true_values.size)

    @property
    def processing_rates(self) -> np.ndarray:
        """Per-machine processing rates ``1 / t_i``."""
        return 1.0 / self.true_values

    @property
    def total_inverse(self) -> float:
        """``sum_i 1/t_i`` — the aggregate speed driving Theorem 2.1."""
        return float(np.sum(1.0 / self.true_values))

    def latency_model(self) -> LinearLatencyModel:
        """The cluster's linear latency model at the true values."""
        return LinearLatencyModel(self.true_values)

    def heterogeneity(self) -> float:
        """Max-over-min slope ratio: 1 for homogeneous clusters."""
        return float(np.max(self.true_values) / np.min(self.true_values))

    def subset(self, indices: np.ndarray) -> "Cluster":
        """Cluster restricted to the machines at ``indices``."""
        indices = np.asarray(indices, dtype=np.intp)
        return Cluster(
            true_values=self.true_values[indices],
            names=tuple(self.names[i] for i in indices),
        )

    def __len__(self) -> int:
        return self.n_machines


def _default_names(n: int) -> tuple[str, ...]:
    return tuple(f"C{i + 1}" for i in range(n))


def paper_cluster() -> Cluster:
    """The paper's 16-machine system (Table 1)."""
    return Cluster(
        true_values=np.array(PAPER_TRUE_VALUES),
        names=_default_names(len(PAPER_TRUE_VALUES)),
    )


def grouped_cluster(group_sizes: list[int], group_values: list[float]) -> Cluster:
    """A cluster of speed groups, Table-1 style.

    ``grouped_cluster([2, 3, 5, 6], [1, 2, 5, 10])`` reproduces the
    paper's configuration.
    """
    if len(group_sizes) != len(group_values):
        raise ValueError("group_sizes and group_values must have the same length")
    if any(s <= 0 for s in group_sizes):
        raise ValueError("group sizes must be positive")
    values = np.repeat(
        as_float_array(group_values, "group_values"), np.asarray(group_sizes)
    )
    check_positive(values, "group_values")
    return Cluster(true_values=values, names=_default_names(values.size))


def random_cluster(
    n_machines: int,
    rng: np.random.Generator,
    *,
    t_range: tuple[float, float] = (1.0, 10.0),
    log_uniform: bool = True,
) -> Cluster:
    """A random heterogeneous cluster with slopes drawn from ``t_range``.

    Parameters
    ----------
    n_machines:
        Number of machines (>= 1).
    rng:
        Source of randomness (inject for reproducibility).
    t_range:
        Bounds of the slope distribution.
    log_uniform:
        Draw log-uniformly (default) so slow and fast machines are
        equally represented per decade, matching the paper's spread.
    """
    if n_machines < 1:
        raise ValueError("n_machines must be at least 1")
    lo = check_positive_scalar(t_range[0], "t_range[0]")
    hi = check_positive_scalar(t_range[1], "t_range[1]")
    if lo > hi:
        raise ValueError("t_range must satisfy lo <= hi")
    if log_uniform:
        values = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_machines))
    else:
        values = rng.uniform(lo, hi, size=n_machines)
    return Cluster(true_values=values, names=_default_names(n_machines))
