"""Distributed system substrate: clusters, workloads, and simulation.

The paper evaluates the mechanism by closed-form computation on a fixed
16-machine configuration.  This subpackage provides that configuration
(:func:`paper_cluster`), generators for random heterogeneous clusters,
Poisson/deterministic workload generators, a discrete-event simulation
core, machine process models, and standalone M/M/1 / M/G/1 queue
simulators used to validate the latency models empirically.
"""

from repro.system.cluster import Cluster, paper_cluster, random_cluster, grouped_cluster
from repro.system.workload import (
    Job,
    PoissonWorkload,
    DeterministicWorkload,
    ArrivalSchedule,
    ConstantSchedule,
    PiecewiseConstantSchedule,
    SinusoidalSchedule,
    split_workload,
)
from repro.system.des import Event, EventQueue, Simulator
from repro.system.machine import MachineStats, LinearLatencyMachine, QueueingMachine
from repro.system.queueing import QueueStats, simulate_mm1, simulate_mg1
from repro.system.trace import TraceStats, save_trace, load_trace, trace_stats
from repro.system.configio import (
    cluster_to_dict,
    cluster_from_dict,
    save_cluster,
    load_cluster,
    paper_cluster_document,
)

__all__ = [
    "Cluster",
    "paper_cluster",
    "random_cluster",
    "grouped_cluster",
    "Job",
    "PoissonWorkload",
    "DeterministicWorkload",
    "ArrivalSchedule",
    "ConstantSchedule",
    "PiecewiseConstantSchedule",
    "SinusoidalSchedule",
    "split_workload",
    "Event",
    "EventQueue",
    "Simulator",
    "MachineStats",
    "LinearLatencyMachine",
    "QueueingMachine",
    "QueueStats",
    "simulate_mm1",
    "simulate_mg1",
    "TraceStats",
    "save_trace",
    "load_trace",
    "trace_stats",
    "cluster_to_dict",
    "cluster_from_dict",
    "save_cluster",
    "load_cluster",
    "paper_cluster_document",
]
