"""Cluster configuration files: save/load clusters as JSON.

Deployments need the machine inventory under version control; this
module serialises a :class:`~repro.system.cluster.Cluster` to a small
JSON document (names + true values + optional metadata) and loads it
back with full validation.  The paper's Table 1 ships as a loadable
reference config via :func:`paper_cluster_document`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.system.cluster import Cluster, paper_cluster

__all__ = [
    "cluster_to_dict",
    "cluster_from_dict",
    "save_cluster",
    "load_cluster",
    "paper_cluster_document",
]

_FORMAT_VERSION = 1


def cluster_to_dict(cluster: Cluster, *, description: str = "") -> dict:
    """Serialise a cluster to plain JSON types."""
    return {
        "format_version": _FORMAT_VERSION,
        "description": description,
        "machines": [
            {"name": name, "true_value": float(value)}
            for name, value in zip(cluster.names, cluster.true_values)
        ],
    }


def cluster_from_dict(document: dict) -> Cluster:
    """Rebuild a cluster from a serialised document (schema-checked)."""
    if document.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported cluster format {document.get('format_version')!r}"
        )
    machines = document.get("machines")
    if not isinstance(machines, list) or not machines:
        raise ValueError("cluster document needs a non-empty 'machines' list")
    names = []
    values = []
    for entry in machines:
        if "name" not in entry or "true_value" not in entry:
            raise ValueError("each machine needs 'name' and 'true_value'")
        names.append(str(entry["name"]))
        values.append(float(entry["true_value"]))
    if len(set(names)) != len(names):
        raise ValueError("machine names must be unique")
    return Cluster(true_values=np.array(values), names=tuple(names))


def save_cluster(cluster: Cluster, path: Path | str, *, description: str = "") -> None:
    """Write a cluster config file."""
    Path(path).write_text(
        json.dumps(cluster_to_dict(cluster, description=description), indent=2)
        + "\n"
    )


def load_cluster(path: Path | str) -> Cluster:
    """Load a cluster config file."""
    return cluster_from_dict(json.loads(Path(path).read_text()))


def paper_cluster_document() -> dict:
    """The paper's Table 1 as a serialised reference config."""
    return cluster_to_dict(
        paper_cluster(),
        description=(
            "Table 1 of Grosu & Chronopoulos, 'A Load Balancing Mechanism "
            "with Verification' (IPDPS 2003); R = 20 jobs/s in the paper."
        ),
    )
