"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on an offline machine without ``wheel`` cannot use
the PEP 660 editable path; this shim lets pip fall back to the legacy
``setup.py develop`` route (``pip install -e . --no-use-pep517``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
