"""Ablation A19 — instrumentation overhead of the observability layer.

The observability layer promises to be cheap enough to leave on: its
hooks are no-ops (one global read + ``None`` check) when disabled, and
when enabled the per-hook cost is a dict lookup plus a float append.
This bench holds that promise to a number on the protocol bench
workload (one full ``run_protocol`` round on the 8-machine system):

* **disabled vs baseline** — the instrumented hot paths must be
  indistinguishable from pre-instrumentation code (the hooks compile to
  almost nothing);
* **enabled vs disabled** — the headline acceptance criterion:
  < 5% wall-clock overhead with metrics + tracing live.

Timing uses min-of-N repeats (the standard way to strip scheduler
noise from a microbenchmark); the workload is seeded so both arms
execute identical rounds.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_observability.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_observability.py
  [--smoke] [--json]``), exiting non-zero when the overhead budget is
  blown.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

TRUE_VALUES = [1.0, 1.0, 2.0, 2.0, 5.0, 5.0, 10.0, 10.0]
RATE = 8.0
OVERHEAD_BUDGET = 0.05  # the acceptance criterion: < 5% enabled vs disabled


def _one_round(duration: float) -> None:
    from repro.agents import TruthfulAgent
    from repro.protocol import run_protocol

    run_protocol(
        [TruthfulAgent(t) for t in TRUE_VALUES],
        RATE,
        duration=duration,
        rng=np.random.default_rng(0),
        deterministic_service=True,
    )


def measure_overhead(*, repeats: int = 10, duration: float = 60.0) -> dict:
    """Time the protocol bench with the layer off and on; summarise.

    The two arms are *interleaved* (one disabled round, one enabled
    round, repeated) and each arm takes its minimum, so slow drift in
    machine load hits both equally.  The enabled arm installs the
    instrumentation once, outside the timed windows — matching
    production use, where a campaign enables the layer once and then
    runs many rounds against it; what is timed is exactly the
    per-round hook cost.
    """
    from repro.observability import instrumented

    _one_round(duration)  # warm-up: imports, allocator caches
    disabled = float("inf")
    enabled = float("inf")
    with instrumented():
        _one_round(duration)  # warm the enabled path (series creation)
    for _ in range(repeats):
        start = time.perf_counter()
        _one_round(duration)
        disabled = min(disabled, time.perf_counter() - start)
        with instrumented():
            start = time.perf_counter()
            _one_round(duration)
            enabled = min(enabled, time.perf_counter() - start)
    overhead = enabled / disabled - 1.0

    # One instrumented round to report what the layer actually records.
    with instrumented() as instr:
        _one_round(duration)
    snapshot = instr.snapshot()

    return {
        "machines": len(TRUE_VALUES),
        "arrival_rate": RATE,
        "duration": duration,
        "repeats": repeats,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "within_budget": overhead < OVERHEAD_BUDGET,
        "spans_recorded": sorted(snapshot["spans"]),
        "counters_recorded": sorted(
            c["name"] for c in snapshot["counters"]
        ),
        "histograms_recorded": sorted(
            h["name"] for h in snapshot["histograms"]
        ),
    }


# --------------------------------------------------------------- pytest


def test_overhead_within_budget(record_result, record_json):
    summary = measure_overhead()
    assert summary["spans_recorded"] == ["protocol.round"]
    assert "protocol.phase_transitions" in summary["counters_recorded"]
    assert summary["within_budget"], (
        f"instrumentation overhead {100 * summary['overhead_fraction']:.1f}% "
        f"blows the {100 * OVERHEAD_BUDGET:.0f}% budget"
    )

    from repro.experiments import render_table

    rows = [
        ["disabled (min of N)", f"{summary['disabled_seconds'] * 1e3:.2f} ms"],
        ["enabled (min of N)", f"{summary['enabled_seconds'] * 1e3:.2f} ms"],
        ["overhead", f"{100 * summary['overhead_fraction']:.2f} %"],
        ["budget", f"{100 * OVERHEAD_BUDGET:.0f} %"],
        ["spans recorded", ", ".join(summary["spans_recorded"])],
        ["counter series", len(summary["counters_recorded"])],
        ["histogram series", len(summary["histograms_recorded"])],
    ]
    record_result(
        "ablation_observability_overhead",
        render_table(
            ["quantity", "value"],
            rows,
            title="A19. Observability overhead on the protocol bench (n = 8).",
        ),
    )
    record_json("ablation_observability_overhead", summary)


def test_disabled_hooks_record_nothing():
    # The disabled path must leave no trace: no active instrumentation
    # before, during, or after a round.
    from repro.observability import active, instrumented

    assert active() is None
    _one_round(5.0)
    assert active() is None
    with instrumented() as instr:
        _one_round(5.0)
    assert active() is None
    assert instr.tracer.summary()["protocol.round"]["count"] == 1


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: measure the overhead and fail when over budget."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (shorter rounds, fewer repeats)",
    )
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)

    repeats = 5 if args.smoke else args.repeats
    duration = 40.0 if args.smoke else args.duration
    summary = measure_overhead(repeats=repeats, duration=duration)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key, value in summary.items():
            print(f"{key:24} {value}")

    if not summary["within_budget"]:
        print(
            f"OVER BUDGET: {100 * summary['overhead_fraction']:.1f}% "
            f"> {100 * OVERHEAD_BUDGET:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
