"""Ablation A19 — instrumentation overhead of the observability layer.

The observability layer promises to be cheap enough to leave on: its
hooks are no-ops (one global read + ``None`` check) when disabled, and
when enabled the per-hook cost is a dict lookup plus a float append.
This bench holds that promise to a number on the protocol bench
workload (one full ``run_protocol`` round on the 8-machine system),
measured separately on both execution engines because they put the
same fixed hook cost over very different denominators:

* **event engine** — the per-job discrete-event round (milliseconds of
  real work per round).  Gate: < 5% wall-clock overhead with metrics +
  tracing live.  This is the workload the 5% budget was calibrated on,
  and the regime where relative overhead is the meaningful number.
* **batched engine** — the vectorised round is itself only ~0.1 ms at
  this bench's configuration, so the ~a-dozen Python hook calls per
  round (~20-30 us total) are a double-digit *fraction* of it while
  remaining a fixed, tiny *absolute* cost.  Gating a ratio there would
  fail the layer for the protocol getting faster, so the batched gate
  is absolute: per-round hook cost < ``HOOK_BUDGET_SECONDS``.  The
  fraction is still recorded for the artefact.

Each arm interleaves paired (disabled, enabled) timed windows and the
overhead estimate is the **median of the paired deltas** — robust to
slow load drift, unlike differencing two independent minima.  Garbage
collection is suspended inside the timed windows (as ``timeit`` does):
the enabled rounds allocate span/annotation records, and without this
the gen-0 collections they trigger land in the enabled windows and
masquerade as hook cost.  The workload is seeded so all arms execute
identical rounds, and the enabled windows run against one long-lived,
pre-warmed instrumentation context — matching production use, where a
campaign enables the layer once.  An over-budget pass is re-measured
(up to three passes): a genuine regression fails them all, burst noise
on a shared box does not.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_observability.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_observability.py
  [--smoke] [--json]``), exiting non-zero when either budget is blown.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

TRUE_VALUES = [1.0, 1.0, 2.0, 2.0, 5.0, 5.0, 10.0, 10.0]
RATE = 8.0
OVERHEAD_BUDGET = 0.05  # event engine: < 5% enabled vs disabled
HOOK_BUDGET_SECONDS = 250e-6  # batched engine: absolute hook cost per round


def _one_round(duration: float, execution: str = "auto") -> None:
    from repro.agents import TruthfulAgent
    from repro.protocol import run_protocol

    run_protocol(
        [TruthfulAgent(t) for t in TRUE_VALUES],
        RATE,
        duration=duration,
        rng=np.random.default_rng(0),
        deterministic_service=True,
        execution=execution,
    )


def _measure_arms(
    execution: str,
    *,
    repeats: int,
    duration: float,
    rounds_per_sample: int,
    shared,
) -> tuple[float, float, float]:
    """Per-round ``(disabled_min, enabled_min, median_delta)`` seconds.

    Each repeat times a disabled window and an enabled window back to
    back (alternating which goes first) and records their *paired*
    difference; the hook-cost estimate is the median of those deltas,
    so a load spike must straddle many pairs to move it.  Each timed window runs ``rounds_per_sample``
    rounds; for the sub-millisecond batched rounds that keeps the
    window large against the timer's own resolution.  The enabled
    windows reuse the pre-warmed ``shared`` instrumentation context, so
    what is timed is the steady-state hook cost — not first-touch
    registry inserts.  GC is suspended across the pairs (and collected
    once up front) so collection pauses cannot land in one arm only.
    """
    import gc

    from repro.observability import instrumented

    def _window(enabled_arm: bool) -> float:
        if enabled_arm:
            with instrumented(shared):
                start = time.perf_counter()
                for _ in range(rounds_per_sample):
                    _one_round(duration, execution)
                return time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(rounds_per_sample):
            _one_round(duration, execution)
        return time.perf_counter() - start

    disabled = float("inf")
    enabled = float("inf")
    deltas = []
    gc.collect()
    gc.disable()
    try:
        for i in range(repeats):
            # ABBA ordering: alternate which arm goes first so any
            # systematic second-window penalty cancels in the median.
            if i % 2 == 0:
                off = _window(False)
                on = _window(True)
            else:
                on = _window(True)
                off = _window(False)
            disabled = min(disabled, off)
            enabled = min(enabled, on)
            deltas.append(on - off)
    finally:
        gc.enable()
    return (
        disabled / rounds_per_sample,
        enabled / rounds_per_sample,
        float(np.median(deltas)) / rounds_per_sample,
    )


def measure_overhead(
    *, repeats: int = 10, duration: float = 60.0, attempts: int = 3
) -> dict:
    """Time the protocol bench with the layer off and on; summarise.

    Both execution engines run the same seeded workload.  The event
    engine is held to the *relative* ``OVERHEAD_BUDGET``; the batched
    engine — whose whole round costs on the order of the hook calls
    themselves — is held to the *absolute* ``HOOK_BUDGET_SECONDS`` per
    round, with its fraction recorded for the artefact.

    The true hook cost (~tens of microseconds per round) sits well
    inside both budgets, but a shared CI box can burst-load long enough
    to swamp one measurement pass.  An over-budget pass is therefore
    re-measured up to ``attempts`` times — a genuine hook regression
    fails every pass, while burst noise does not survive independent
    re-measurement.  The returned summary is the passing attempt, or
    the final attempt when all fail, with ``attempts_used`` recorded.
    """
    from repro.observability import instrumented

    _one_round(duration, "event")  # warm-up: imports, allocator caches
    _one_round(duration, "batched")
    # One long-lived instrumentation instance for every enabled window,
    # warmed outside the timing: a campaign enables the layer once and
    # runs many rounds against it, so per-round cost is the steady
    # state with the series already created.
    with instrumented() as shared:
        _one_round(duration, "event")
        _one_round(duration, "batched")

    for attempt in range(1, max(1, attempts) + 1):
        # Window sizing per engine: a few rounds per timed window keeps
        # the window long against the timer's resolution and smooths
        # per-round scheduler jitter inside each pair; the batched
        # engine's sub-millisecond rounds need proportionally more per
        # window.
        event_off, event_on, event_delta = _measure_arms(
            "event",
            repeats=repeats,
            duration=duration,
            rounds_per_sample=3,
            shared=shared,
        )
        batched_off, batched_on, batched_hook = _measure_arms(
            "batched",
            repeats=repeats,
            duration=duration,
            rounds_per_sample=max(1, int(round(200.0 / duration))),
            shared=shared,
        )
        event_fraction = event_delta / event_off
        batched_fraction = batched_hook / batched_off
        event_ok = event_fraction < OVERHEAD_BUDGET
        batched_ok = batched_hook < HOOK_BUDGET_SECONDS
        if event_ok and batched_ok:
            break

    # One instrumented round to report what the layer actually records.
    with instrumented() as instr:
        _one_round(duration)
    snapshot = instr.snapshot()

    event = {
        "disabled_seconds": event_off,
        "enabled_seconds": event_on,
        "hook_seconds_per_round": event_delta,
        "overhead_fraction": event_fraction,
        "within_budget": event_ok,
    }
    batched = {
        "disabled_seconds": batched_off,
        "enabled_seconds": batched_on,
        "hook_seconds_per_round": batched_hook,
        "overhead_fraction": batched_fraction,
        "within_budget": batched_ok,
    }
    return {
        "machines": len(TRUE_VALUES),
        "arrival_rate": RATE,
        "duration": duration,
        "repeats": repeats,
        "attempts_used": attempt,
        "overhead_budget": OVERHEAD_BUDGET,
        "hook_budget_seconds": HOOK_BUDGET_SECONDS,
        "event": event,
        "batched": batched,
        "within_budget": event["within_budget"] and batched["within_budget"],
        "spans_recorded": sorted(snapshot["spans"]),
        "counters_recorded": sorted(
            c["name"] for c in snapshot["counters"]
        ),
        "histograms_recorded": sorted(
            h["name"] for h in snapshot["histograms"]
        ),
    }


# --------------------------------------------------------------- pytest


def test_overhead_within_budget(record_result, record_json):
    summary = measure_overhead()
    assert summary["spans_recorded"] == ["protocol.round"]
    assert "protocol.phase_transitions" in summary["counters_recorded"]
    event = summary["event"]
    batched = summary["batched"]
    assert event["within_budget"], (
        f"event-engine overhead {100 * event['overhead_fraction']:.1f}% "
        f"blows the {100 * OVERHEAD_BUDGET:.0f}% budget"
    )
    assert batched["within_budget"], (
        f"batched-engine hook cost "
        f"{1e6 * batched['hook_seconds_per_round']:.0f} us/round blows "
        f"the {1e6 * HOOK_BUDGET_SECONDS:.0f} us budget"
    )

    from repro.experiments import render_table

    rows = [
        ["event: disabled (min of N)",
         f"{event['disabled_seconds'] * 1e3:.2f} ms"],
        ["event: enabled (min of N)",
         f"{event['enabled_seconds'] * 1e3:.2f} ms"],
        ["event: overhead (median paired delta)",
         f"{100 * event['overhead_fraction']:.2f} %"],
        ["event: budget", f"{100 * OVERHEAD_BUDGET:.0f} %"],
        ["batched: disabled (min of N)",
         f"{batched['disabled_seconds'] * 1e6:.0f} us"],
        ["batched: enabled (min of N)",
         f"{batched['enabled_seconds'] * 1e6:.0f} us"],
        ["batched: hook cost / round (median paired delta)",
         f"{1e6 * batched['hook_seconds_per_round']:.0f} us"],
        ["batched: budget",
         f"{1e6 * HOOK_BUDGET_SECONDS:.0f} us / round"],
        ["spans recorded", ", ".join(summary["spans_recorded"])],
        ["counter series", len(summary["counters_recorded"])],
        ["histogram series", len(summary["histograms_recorded"])],
    ]
    record_result(
        "ablation_observability_overhead",
        render_table(
            ["quantity", "value"],
            rows,
            title="A19. Observability overhead on the protocol bench (n = 8).",
        ),
    )
    record_json("ablation_observability_overhead", summary)


def test_disabled_hooks_record_nothing():
    # The disabled path must leave no trace: no active instrumentation
    # before, during, or after a round.
    from repro.observability import active, instrumented

    assert active() is None
    _one_round(5.0)
    assert active() is None
    with instrumented() as instr:
        _one_round(5.0)
    assert active() is None
    assert instr.tracer.summary()["protocol.round"]["count"] == 1


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: measure the overhead and fail when over budget."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (shorter rounds, fewer repeats)",
    )
    parser.add_argument("--repeats", type=int, default=10)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)

    repeats = 16 if args.smoke else args.repeats
    duration = 60.0 if args.smoke else args.duration
    summary = measure_overhead(repeats=repeats, duration=duration)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key, value in summary.items():
            print(f"{key:24} {value}")

    event = summary["event"]
    batched = summary["batched"]
    if not event["within_budget"]:
        print(
            f"OVER BUDGET (event engine): "
            f"{100 * event['overhead_fraction']:.1f}% "
            f"> {100 * OVERHEAD_BUDGET:.0f}%",
            file=sys.stderr,
        )
    if not batched["within_budget"]:
        print(
            f"OVER BUDGET (batched engine): "
            f"{1e6 * batched['hook_seconds_per_round']:.0f} us/round "
            f"> {1e6 * HOOK_BUDGET_SECONDS:.0f} us/round",
            file=sys.stderr,
        )
    return 0 if summary["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
