"""Ablation A26 — the fused campaign backend gate.

PR 9 taught the campaign engine to evaluate whole cohorts of
homogeneous closed-form units as single stacked broadcasts
(``repro.parallel.fusion``) instead of one ``execute_unit`` call — and
one worker-pool pickle — per unit.  This bench holds the three
promises that backend makes:

* **bit-parity before timing** — for every campaign measured here, the
  fused payloads are compared ``repr``-for-``repr`` against the
  per-unit path's *first*, and the timing arms only run once the
  comparison is clean (a fast wrong backend is worthless);
* **unchanged cache keys** — a cache warmed entirely by the fused
  backend serves a per-unit run at a 100% hit rate with zero chunks
  dispatched, so ``--resume`` and warm-cache behaviour cannot tell the
  backends apart;
* **speed** — on the cold-cache tournament and figures campaigns at
  4 workers, the fused engine beats the per-unit engine by >= 10x
  wall-clock (the per-unit arm pays Python per unit plus the pool's
  fork/pickle tax; the fused arm replaces both with one broadcast).

A third, larger campaign — a 512-unit manipulation grid over all four
closed-form variants — is measured *serially* as an ungated honesty
row: with the pool out of the picture the broadcast still wins by ~3x,
and the residual fused cost is dominated by per-unit cache-key hashing
(SHA-256 over the canonical config), which both arms pay identically.
That hashing is the engine's next bottleneck, not this backend's.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_campaign_fusion.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_campaign_fusion.py
  [--smoke] [--json]``), exiting non-zero on any failed assertion and
  refreshing ``results/ablation_campaign_fusion.txt`` and
  ``results/BENCH_campaign_fusion.json`` (the committed artifact
  ``tests/parallel/test_fusion.py`` pins).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

SPEEDUP_TARGET = 10.0      # fused vs per-unit, tournament + figures campaigns
GATED_CAMPAIGNS = ("tournament", "figures")
WORKERS = 4                # the per-unit arm's pool size on gated campaigns
RESULTS_DIR = Path(__file__).resolve().parent / "results"

GRID_VARIANTS = ("observed", "declared", "vcg", "archer-tardos")


def _grid_units(n_factors: int = 8) -> list:
    """A large homogeneous sweep: variants x bid factors x manipulators."""
    import numpy as np

    from repro.experiments import table1_configuration
    from repro.parallel import ExperimentUnit

    config = table1_configuration()
    true_values = tuple(config.cluster.true_values.tolist())
    factors = np.geomspace(0.25, 4.0, n_factors)
    return [
        ExperimentUnit(
            kind="scenario",
            scenario=f"grid-{variant}-f{i}-m{m}",
            bid_factor=float(factor),
            execution_factor=1.5,
            true_values=true_values,
            arrival_rate=config.arrival_rate,
            variant=variant,
            manipulator=m,
        )
        for variant in GRID_VARIANTS
        for i, factor in enumerate(factors)
        for m in range(len(true_values))
    ]


def _campaigns(*, smoke: bool = False) -> dict[str, list]:
    from repro.experiments.tournament import tournament_units
    from repro.parallel import figures_campaign_units

    return {
        "tournament": tournament_units(),
        "figures": figures_campaign_units(),
        "grid": _grid_units(4 if smoke else 8),
    }


def _engine(fuse: str, workers: int):
    from repro.parallel import CampaignEngine

    return CampaignEngine(workers=workers, cache=None, fuse=fuse)


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def verify_parity(units: list) -> dict:
    """Payload-level equality of the two backends, checked before timing.

    Exact to the ``repr`` level — the JSON round-trip the cache does —
    and through a shared cache: a per-unit run over a cache the fused
    backend warmed must be all hits with nothing dispatched.
    """
    from repro.parallel import CampaignEngine

    per_unit = _engine("off", workers=0).run(units)
    fused = _engine("on", workers=0).run(units)
    payload_mismatches = sum(
        repr(a) != repr(b) for a, b in zip(per_unit.payloads, fused.payloads)
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        cold = CampaignEngine(workers=0, cache=cache_dir, fuse="on").run(units)
        warm = CampaignEngine(workers=0, cache=cache_dir, fuse="off").run(units)
    return {
        "units": len(units),
        "payload_mismatches": payload_mismatches,
        "keys_identical": per_unit.keys == fused.keys,
        "fused_units": cold.stats.fused_units,
        "warm_hit_rate": warm.stats.hit_rate,
        "warm_chunks": warm.stats.chunks,
    }


def measure_campaign(
    name: str, units: list, *, workers: int, repeats: int
) -> dict:
    """Parity first, then both cold-cache arms, best-of-``repeats``."""
    parity = verify_parity(units)
    entry = {"campaign": name, "workers": workers, **parity}
    if parity["payload_mismatches"] or not parity["keys_identical"]:
        # A wrong backend gets no timing row to hide behind.
        entry.update(per_unit_seconds=float("nan"),
                     fused_seconds=float("nan"), speedup=0.0)
        return entry

    per_unit_engine = _engine("off", workers)
    fused_engine = _engine("auto", workers)
    entry["per_unit_seconds"] = _best_seconds(
        lambda: per_unit_engine.run(units), repeats
    )
    entry["fused_seconds"] = _best_seconds(
        lambda: fused_engine.run(units), repeats
    )
    entry["speedup"] = entry["per_unit_seconds"] / entry["fused_seconds"]
    return entry


def measure_all(*, repeats: int = 3, smoke: bool = False) -> dict:
    campaigns = _campaigns(smoke=smoke)
    entries = [
        measure_campaign(
            name,
            units,
            # The grid row is the serial throughput story; the gated
            # campaigns run against the pool-backed per-unit arm.
            workers=0 if name == "grid" else WORKERS,
            repeats=repeats,
        )
        for name, units in campaigns.items()
    ]
    return {
        "campaigns": entries,
        "speedup_target": SPEEDUP_TARGET,
        "gated_campaigns": list(GATED_CAMPAIGNS),
        "smoke": smoke,
    }


def check_summary(summary: dict) -> list[str]:
    """The bench's assertions; empty list = all good."""
    failures = []
    for entry in summary["campaigns"]:
        name = entry["campaign"]
        if entry["payload_mismatches"]:
            failures.append(
                f"{name}: {entry['payload_mismatches']} fused payloads "
                f"differ from the per-unit path"
            )
        if not entry["keys_identical"]:
            failures.append(f"{name}: fused run changed the cache keys")
        if entry["fused_units"] != entry["units"]:
            failures.append(
                f"{name}: only {entry['fused_units']}/{entry['units']} "
                f"units took the fused path"
            )
        if entry["warm_hit_rate"] != 1.0 or entry["warm_chunks"] != 0:
            failures.append(
                f"{name}: per-unit warm run over a fused-warmed cache hit "
                f"{entry['warm_hit_rate']:.0%} with {entry['warm_chunks']} "
                f"chunks dispatched (want 100%, 0)"
            )
        if (
            name in summary["gated_campaigns"]
            and entry["speedup"] < summary["speedup_target"]
        ):
            failures.append(
                f"{name}: fused speedup {entry['speedup']:.1f}x at "
                f"{entry['workers']} workers is below "
                f"{summary['speedup_target']:g}x"
            )
    return failures


def _render(summary: dict) -> str:
    from repro.experiments import render_table

    rows = [
        [
            entry["campaign"],
            entry["units"],
            entry["workers"],
            "identical" if entry["payload_mismatches"] == 0
            and entry["keys_identical"] else "DIFFER",
            f"{entry['warm_hit_rate']:.0%} / {entry['warm_chunks']}",
            f"{entry['per_unit_seconds'] * 1e3:.1f} ms",
            f"{entry['fused_seconds'] * 1e3:.1f} ms",
            f"{entry['speedup']:.1f} x",
        ]
        for entry in summary["campaigns"]
    ]
    return render_table(
        ["campaign", "units", "workers", "payloads", "warm hits/chunks",
         "per-unit t", "fused t", "speedup"],
        rows,
        title=f"A26. Fused cohort backend vs per-unit engine, cold cache "
        f"(gate {summary['speedup_target']:g}x on "
        f"{' + '.join(summary['gated_campaigns'])}).",
    )


def _write_artifacts(summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_campaign_fusion.txt").write_text(
        _render(summary) + "\n"
    )
    (RESULTS_DIR / "BENCH_campaign_fusion.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


# --------------------------------------------------------------- pytest


def test_fused_backend_parity_and_speedup(record_result, record_json):
    summary = measure_all()
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)
    record_result("ablation_campaign_fusion", _render(summary))
    record_json("BENCH_campaign_fusion", summary)


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any broken assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (2 timing repeats, smaller grid)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing benchmarks/results/",
    )
    args = parser.parse_args(argv)

    summary = measure_all(repeats=2 if args.smoke else 3, smoke=args.smoke)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))

    if not args.no_artifacts and not args.smoke:
        _write_artifacts(summary)

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
