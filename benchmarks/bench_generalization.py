"""Ablation A16 — do the Section 4 findings generalise?

Re-runs the paper's full scenario suite on 200 random configurations
and reports the fraction where each qualitative claim holds —
separating the theorem-backed claims (hold at 100% everywhere) from the
configuration artefacts of the paper's single Table 1 system (the
frugality <= 2.5x band in particular breaks on small, dominated
systems).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import render_table
from repro.experiments.generalization import generalization_study


def test_generalization(benchmark, record_result):
    study = benchmark(
        generalization_study,
        np.random.default_rng(0),
        n_configurations=200,
    )
    assert study.structural_claims_universal()

    stress = generalization_study(
        np.random.default_rng(1),
        n_configurations=200,
        n_machines_range=(2, 4),
        t_range=(1.0, 100.0),
    )
    assert stress.structural_claims_universal()
    assert stress.frugality_within_2_5 < study.frugality_within_2_5

    rows = [
        ["True1 is the latency minimum (Thm 2.1+3.1)",
         study.true1_is_minimum, stress.true1_is_minimum],
        ["C1 utility peaks at True1 (Thm 3.1)",
         study.c1_utility_peaks_at_true1, stress.c1_utility_peaks_at_true1],
        ["truthful utilities >= 0 (Thm 3.2)", study.vp_holds, stress.vp_holds],
        ["High2 < High3 < High1 < High4",
         study.high_ordering_holds, stress.high_ordering_holds],
        ["Low2 is the worst experiment",
         study.low2_is_worst, stress.low2_is_worst],
        ["frugality ratio <= 2.5",
         study.frugality_within_2_5, stress.frugality_within_2_5],
        ["Low2 utility negative",
         study.low2_utility_negative, stress.low2_utility_negative],
    ]
    record_result(
        "ablation_generalization",
        render_table(
            ["claim", "Table-1-like configs", "small dominated configs"],
            rows,
            title="A16. Fraction of 200 random configurations where each "
            "Section 4 claim holds.",
        ),
    )
