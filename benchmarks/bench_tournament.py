"""Ablation A25 — cross-mechanism kernels and the tournament gate.

PR 8 extended the closed-form utility kernel beyond the verification
mechanism to both truthful baselines.  This bench holds the three
promises that extension makes:

* **bit-parity** — for VCG and Archer–Tardos, the vectorized grid
  search picks the *bit-identical* ``(bid, execution)`` pair the
  brute-force per-cell scan picks (refinement off), with utilities
  agreeing to 1e-9 relative — the same contract A21 pins for the
  verification mechanism;
* **speed** — at n = 64 each new kernel beats its brute path by
  >= 10x (same grid, same tie-break);
* **tournament sanity** — the full cross-mechanism tournament
  (``repro tournament``) reproduces the paper's ordering: nobody
  degrades the truthful optimum, no individual or prefix-coalition
  lie is profitable under any of the three truthful rules, and joint
  overbidding stays profitable under the verification mechanism (the
  A11 finding) while VCG / Archer–Tardos resist it.

Standalone runs also refresh ``results/TOURNAMENT_results.json`` — the
committed tournament artifact ``docs/mechanisms.md`` quotes.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_tournament.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_tournament.py
  [--smoke] [--json]``), exiting non-zero on any failed assertion and
  refreshing ``results/ablation_tournament.txt``,
  ``results/BENCH_tournament.json``, and
  ``results/TOURNAMENT_results.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

SPEEDUP_TARGET = 10.0          # kernel vs brute force at n = 64, per mechanism
UTILITY_TOLERANCE = 1e-9       # relative agreement of reported utilities
PARITY_N = 64
AGREEMENT_SEEDS = (0, 1, 2)
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The two mechanisms whose kernels this PR added (A21 covers the
#: verification mechanism's).
NEW_KERNELS = ("vcg", "archer-tardos")


def _system(n: int, seed: int) -> tuple[np.ndarray, float]:
    rng = np.random.default_rng(20030422 + seed)
    true_values = rng.uniform(0.5, 10.0, n)
    return true_values, 0.5 * n


def _mechanism(variant: str):
    from repro.mechanism import ArcherTardosMechanism, VCGMechanism

    return VCGMechanism() if variant == "vcg" else ArcherTardosMechanism()


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernels(
    *,
    n: int = PARITY_N,
    repeats: int = 3,
    agreement_seeds: tuple[int, ...] = AGREEMENT_SEEDS,
) -> list[dict]:
    """Parity sweep and speedup, one entry per new mechanism kernel.

    Both arms run ``refine=False`` so they execute the exact same grid
    search and their selections can be compared bit-for-bit.
    """
    from repro.agents import best_response

    out = []
    for variant in NEW_KERNELS:
        mechanism = _mechanism(variant)
        cases = 0
        selections_identical = True
        max_utility_error = 0.0
        truthful_agreement = True
        for seed in agreement_seeds:
            true_values, arrival_rate = _system(n, seed)
            for agent in (0, n // 2, n - 1):
                brute = best_response(
                    mechanism, true_values, arrival_rate, agent,
                    method="bruteforce", refine=False,
                )
                fast = best_response(
                    mechanism, true_values, arrival_rate, agent,
                    method="vectorized", refine=False,
                )
                cases += 1
                if (brute.bid, brute.execution_value) != (
                    fast.bid, fast.execution_value
                ):
                    selections_identical = False
                scale = max(1.0, abs(brute.utility))
                max_utility_error = max(
                    max_utility_error, abs(brute.utility - fast.utility) / scale
                )
                if brute.is_truthful != fast.is_truthful:
                    truthful_agreement = False

        true_values, arrival_rate = _system(n, 0)
        agent = n // 2

        def fast_call():
            best_response(
                mechanism, true_values, arrival_rate, agent,
                method="vectorized", refine=False,
            )

        def brute_call():
            best_response(
                mechanism, true_values, arrival_rate, agent,
                method="bruteforce", refine=False,
            )

        fast_seconds = _best_seconds(fast_call, repeats)
        brute_seconds = _best_seconds(brute_call, repeats)
        out.append(
            {
                "mechanism": variant,
                "n": n,
                "cases": cases,
                "selections_identical": selections_identical,
                "max_relative_utility_error": max_utility_error,
                "truthful_verdicts_agree": truthful_agreement,
                "fast_seconds": fast_seconds,
                "brute_seconds": brute_seconds,
                "speedup": brute_seconds / fast_seconds,
            }
        )
    return out


def measure_tournament() -> dict:
    """Run the full tournament; return its JSON plus wall time."""
    from repro.experiments.tournament import run_tournament

    start = time.perf_counter()
    result = run_tournament()
    return {
        "wall_seconds": time.perf_counter() - start,
        "result": result.to_json(),
    }


def measure_all(
    *,
    n: int = PARITY_N,
    repeats: int = 3,
    agreement_seeds: tuple[int, ...] = AGREEMENT_SEEDS,
) -> dict:
    return {
        "kernels": measure_kernels(
            n=n, repeats=repeats, agreement_seeds=agreement_seeds
        ),
        "tournament": measure_tournament(),
        "speedup_target": SPEEDUP_TARGET,
        "utility_tolerance": UTILITY_TOLERANCE,
    }


def check_summary(summary: dict) -> list[str]:
    """The bench's assertions; empty list = all good."""
    failures = []
    for entry in summary["kernels"]:
        name = entry["mechanism"]
        if not entry["selections_identical"]:
            failures.append(
                f"{name}: kernel and brute-force selections differ "
                f"({entry['cases']} cases checked)"
            )
        if entry["max_relative_utility_error"] > UTILITY_TOLERANCE:
            failures.append(
                f"{name}: utility agreement "
                f"{entry['max_relative_utility_error']:.3e} exceeds "
                f"{UTILITY_TOLERANCE:g}"
            )
        if not entry["truthful_verdicts_agree"]:
            failures.append(f"{name}: truthfulness verdicts differ")
        if entry["speedup"] < SPEEDUP_TARGET:
            failures.append(
                f"{name}: kernel speedup {entry['speedup']:.1f}x at "
                f"n={entry['n']} is below {SPEEDUP_TARGET:g}x"
            )

    tournament = summary["tournament"]["result"]
    for row in tournament["rows"]:
        cell = f"{row['mechanism']}/{row['pattern']}"
        if row["pattern_kind"] == "truthful":
            if abs(row["degradation_percent"]) > 1e-9:
                failures.append(f"{cell}: truthful profile off the optimum")
        elif row["degradation_percent"] < -1e-9:
            failures.append(f"{cell}: a lie improved the total latency")
        if row["pattern_kind"] in ("single", "multi") and row["profitable"]:
            failures.append(f"{cell}: non-collusive lie is profitable")
    standings = {s["mechanism"]: s for s in tournament["standings"]}
    if standings["observed"]["profitable_collusion_patterns"] == 0:
        failures.append(
            "collusion no longer profitable under the verification "
            "mechanism (contradicts A11)"
        )
    for mechanism in ("vcg", "archer-tardos"):
        if standings[mechanism]["profitable_collusion_patterns"] != 0:
            failures.append(f"collusion became profitable under {mechanism}")
    for eq in tournament["equilibrium"]:
        if not eq["converged"] or abs(eq["final_degradation_percent"]) > 1e-6:
            failures.append(
                f"{eq['mechanism']}: dynamics did not return to the optimum"
            )
    return failures


def _render(summary: dict) -> str:
    from repro.experiments import render_table

    rows = [
        [
            entry["mechanism"],
            "identical" if entry["selections_identical"] else "DIFFER",
            f"{entry['max_relative_utility_error']:.1e}",
            f"{entry['fast_seconds'] * 1e3:.3f} ms",
            f"{entry['brute_seconds'] * 1e3:.3f} ms",
            f"{entry['speedup']:.1f} x",
        ]
        for entry in summary["kernels"]
    ]
    parts = [
        render_table(
            ["kernel", "selections", "u err", "kernel t", "brute t", "speedup"],
            rows,
            title=f"A25. VCG / Archer-Tardos kernels vs brute force at "
            f"n = {summary['kernels'][0]['n']} "
            f"(target {summary['speedup_target']:g}x).",
        )
    ]
    tournament = summary["tournament"]["result"]
    parts.append(
        render_table(
            ["mechanism", "frugality", "worst degr %", "indiv. gain",
             "collusion wins"],
            [
                [
                    s["mechanism"],
                    f"{s['truthful_frugality_ratio']:.3f}",
                    f"{s['worst_degradation_percent']:.2f}",
                    f"{s['max_individual_gain']:.3f}",
                    f"{s['profitable_collusion_patterns']}",
                ]
                for s in tournament["standings"]
            ],
            title=f"Tournament standings ({len(tournament['rows'])} cells, "
            f"{summary['tournament']['wall_seconds'] * 1e3:.0f} ms).",
        )
    )
    return "\n\n".join(parts)


def _write_artifacts(summary: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_tournament.txt").write_text(
        _render(summary) + "\n"
    )
    (RESULTS_DIR / "BENCH_tournament.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    (RESULTS_DIR / "TOURNAMENT_results.json").write_text(
        json.dumps(summary["tournament"]["result"], indent=2, sort_keys=True)
        + "\n"
    )


# --------------------------------------------------------------- pytest


def test_new_kernels_and_tournament(record_result, record_json):
    summary = measure_all()
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)
    record_result("ablation_tournament", _render(summary))
    record_json("BENCH_tournament", summary)


def test_committed_tournament_results_match_a_fresh_run():
    # The committed artifact (quoted by docs/mechanisms.md) must be
    # reproducible bit-for-bit from a serial in-process run.
    path = RESULTS_DIR / "TOURNAMENT_results.json"
    if not path.exists():
        import pytest

        pytest.skip("no committed tournament artifact (run the bench)")
    from repro.experiments.tournament import run_tournament

    committed = json.loads(path.read_text())
    assert committed == run_tournament().to_json()


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any broken assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (1 parity seed, 2 timing repeats)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    parser.add_argument(
        "--no-artifacts", action="store_true",
        help="skip refreshing benchmarks/results/",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        summary = measure_all(repeats=2, agreement_seeds=(0,))
    else:
        summary = measure_all()

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render(summary))

    if not args.no_artifacts and not args.smoke:
        _write_artifacts(summary)

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
