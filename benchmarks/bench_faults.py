"""Ablation A9 — protocol robustness under failures.

Prices the reliability machinery: message overhead of at-least-once
delivery as the link loss rate grows, and the behaviour of the
timeout-tolerant coordinator when machines crash (exclusion keeps the
round sound; unverifiable machines are not paid).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import TruthfulAgent
from repro.experiments import render_table
from repro.mechanism import VerificationMechanism
from repro.protocol import (
    CrashingNode,
    FaultTolerantCoordinator,
    ProtocolPhase,
    ReliableNetwork,
)
from repro.protocol.coordinator import COORDINATOR_NAME, MachineNode
from repro.system import LinearLatencyMachine, Simulator

TRUE_VALUES = np.array([1.0, 1.0, 2.0, 2.0, 5.0, 5.0, 10.0, 10.0])
RATE = 8.0


def _run_round(drop: float, seed: int, crash: dict[int, str] | None = None):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    network = ReliableNetwork(sim, drop, rng)
    names = [f"C{i+1}" for i in range(TRUE_VALUES.size)]
    nodes = []
    for i, (name, t) in enumerate(zip(names, TRUE_VALUES)):
        node = MachineNode(
            name=name,
            agent=TruthfulAgent(t),
            machine=LinearLatencyMachine(name, t, rng),
            network=network,
        )
        if crash and i in crash:
            node = CrashingNode(node, crash[i])
        network.register(name, node.handle)
        nodes.append(node)
    coordinator = FaultTolerantCoordinator(
        mechanism=VerificationMechanism(),
        machine_names=names,
        arrival_rate=RATE,
        network=network,
    )
    network.register(COORDINATOR_NAME, coordinator.handle)

    coordinator.start()
    sim.run()
    coordinator.close_bidding()
    sim.run()
    for node in nodes:
        inner = node.inner if isinstance(node, CrashingNode) else node
        if inner.name in coordinator.machine_names and not isinstance(
            node, CrashingNode
        ):
            inner.machine.sojourn_times.append(0.5)
            node.report_completion()
    sim.run()
    coordinator.close_reporting()
    sim.run()
    assert coordinator.phase is ProtocolPhase.DONE
    return coordinator, network


def test_loss_overhead(benchmark, record_result, record_json):
    result = benchmark(_run_round, 0.2, 42)
    coordinator, _network = result
    assert coordinator.outcome is not None

    rows = []
    points = []
    for drop in (0.0, 0.1, 0.3, 0.5):
        _, network = _run_round(drop, seed=int(100 * drop) + 1)
        payloads = network.delivered_payloads()
        rows.append(
            [f"{100 * drop:.0f}%", payloads, network.transmissions, network.dropped]
        )
        points.append(
            {
                "drop_probability": drop,
                "payloads_delivered": payloads,
                "transmissions": network.transmissions,
                "dropped": network.dropped,
            }
        )
        assert payloads == 5 * TRUE_VALUES.size  # exactly-once to the app
    record_result(
        "ablation_faults_loss",
        render_table(
            ["link loss", "payloads delivered", "transmissions", "dropped"],
            rows,
            title="A9a. At-least-once delivery overhead vs link loss (n = 8).",
        ),
    )
    record_json(
        "ablation_faults_loss",
        {"machines": int(TRUE_VALUES.size), "points": points},
    )


def test_crash_exclusion(benchmark, record_result, record_json):
    def run():
        return _run_round(0.0, 7, crash={0: "immediately", 5: "after_bid"})

    coordinator, _ = benchmark(run)
    assert coordinator.excluded == ["C1"]
    assert coordinator.withheld == ["C6"]
    assert coordinator.outcome is not None
    # The surviving allocation still carries the whole arrival rate.
    assert coordinator.outcome.loads.sum() == pytest.approx(RATE)

    rows = [
        ["machines", TRUE_VALUES.size],
        ["crashed before bidding (excluded)", ", ".join(coordinator.excluded)],
        ["crashed after bidding (withheld)", ", ".join(coordinator.withheld)],
        ["load still allocated", f"{coordinator.outcome.loads.sum():.2f}"],
        ["realised latency (with imputation)",
         f"{coordinator.outcome.realised_latency:.2f}"],
    ]
    record_result(
        "ablation_faults_crash",
        render_table(
            ["quantity", "value"],
            rows,
            title="A9b. Crash handling: exclusion and withheld payments.",
        ),
    )
    record_json(
        "ablation_faults_crash",
        {
            "machines": int(TRUE_VALUES.size),
            "excluded": list(coordinator.excluded),
            "withheld": list(coordinator.withheld),
            "load_allocated": float(coordinator.outcome.loads.sum()),
            "realised_latency": float(coordinator.outcome.realised_latency),
        },
    )
