"""Ablation A17 — what the optimal allocation buys over naive dispatch.

The paper assumes the PR allocation; this bench prices it against the
dispatchers deployments actually use, on the Table 1 system (linear)
and on an M/M/1 variant where the linear-model coincidences break.

Two findings beyond the latency gaps: capacity-proportional dispatch
equals the optimum *only* on the zero-intercept linear class (on M/M/1
it is measurably suboptimal), and unweighted random dispatch is not
even *feasible* on the heterogeneous M/M/1 system — random shares
overload the slow machines — which is reported as such rather than as
a latency number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import water_filling_allocation
from repro.allocation.baselines import (
    capacity_proportional_split,
    equal_split,
    greedy_marginal_split,
    random_split,
)
from repro.experiments import render_table, table1_configuration
from repro.latency import LinearLatencyModel, MM1LatencyModel

UTILISATION = 0.25  # keeps the equal split feasible on the M/M/1 variant


def _mm1_variant(config):
    mu = (1.0 / config.cluster.true_values) * (
        config.arrival_rate / UTILISATION / config.cluster.total_inverse
    )
    return MM1LatencyModel(mu)


def _try_latency(dispatch, *args, **kwargs):
    try:
        return dispatch(*args, **kwargs).total_latency
    except (ValueError, RuntimeError):
        return None


def test_dispatcher_comparison(benchmark, record_result):
    config = table1_configuration()
    linear = LinearLatencyModel(config.cluster.true_values)
    rate = config.arrival_rate
    mm1 = _mm1_variant(config)

    optimum_linear = water_filling_allocation(linear, rate).total_latency
    optimum_mm1 = water_filling_allocation(mm1, rate).total_latency

    benchmark(greedy_marginal_split, linear, rate)

    def random_mean(model):
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(50):
            latency = _try_latency(random_split, model, rate, rng)
            if latency is None:
                return None
            samples.append(latency)
        return float(np.mean(samples))

    def row(label, linear_latency, mm1_latency):
        def cell(value, optimum):
            if value is None:
                return "infeasible", "-"
            return value, f"{100 * (value / optimum - 1):.1f}"

        lin, lin_gap = cell(linear_latency, optimum_linear)
        que, que_gap = cell(mm1_latency, optimum_mm1)
        return [label, lin, lin_gap, que, que_gap]

    greedy_linear = greedy_marginal_split(linear, rate).total_latency
    greedy_mm1 = greedy_marginal_split(mm1, rate).total_latency
    proportional_linear = capacity_proportional_split(linear, rate).total_latency
    proportional_mm1 = capacity_proportional_split(mm1, rate).total_latency
    equal_linear = _try_latency(equal_split, linear, rate)
    equal_mm1 = _try_latency(equal_split, mm1, rate)
    random_linear = random_mean(linear)
    random_mm1 = random_mean(mm1)

    rows = [
        row("optimal (water-filling)", optimum_linear, optimum_mm1),
        row("greedy marginal (1000 chunks)", greedy_linear, greedy_mm1),
        row("capacity-proportional", proportional_linear, proportional_mm1),
        row("equal split (round robin)", equal_linear, equal_mm1),
        row("random (mean of 50 draws)", random_linear, random_mm1),
    ]

    # Shape assertions.
    assert proportional_linear == pytest.approx(optimum_linear)  # linear coincidence
    assert proportional_mm1 > optimum_mm1 * 1.001                # breaks on M/M/1
    assert equal_linear > optimum_linear * 1.3                   # round robin is bad
    assert greedy_linear == pytest.approx(optimum_linear, rel=1e-3)
    assert greedy_mm1 == pytest.approx(optimum_mm1, rel=1e-3)
    assert random_mm1 is not None and random_mm1 > optimum_mm1 * 1.2

    # At realistic utilisation the naive dispatchers stop being merely
    # slow and become *infeasible*: their shares overload the slow
    # machines.  The optimum (and greedy) still work fine.
    loaded_mm1 = MM1LatencyModel(mm1.mu * UTILISATION / 0.6)  # 60% util
    assert _try_latency(equal_split, loaded_mm1, rate) is None
    assert (
        _try_latency(random_split, loaded_mm1, rate, np.random.default_rng(1))
        is None
    )
    assert water_filling_allocation(loaded_mm1, rate).loads.sum() == pytest.approx(rate)
    rows.append(
        ["equal/random at 60% util", "-", "-", "infeasible (overload)", "-"]
    )

    record_result(
        "ablation_dispatchers",
        render_table(
            ["dispatcher", "L (linear)", "gap %", "L (M/M/1, 25% util)", "gap %"],
            rows,
            title="A17. Dispatch policies on Table 1 and its M/M/1 variant.",
        ),
    )
