"""Ablation A11 — coalition deviations (group strategyproofness).

Theorem 3.1 is an individual guarantee; this bench measures the group
picture on the Table 1 system: every pair of machines can profitably
collude by jointly overbidding (each member's inflated bid raises the
other's leave-one-out bonus), a classic VCG-family weakness the paper
does not discuss.  The broker funds the coalition's gain through
inflated payments while the allocation degrades.
"""

from __future__ import annotations

from repro.analysis.collusion import pairwise_collusion_scan
from repro.experiments import render_table, table1_configuration
from repro.mechanism import VerificationMechanism


def test_pairwise_collusion(benchmark, record_result):
    config = table1_configuration()
    # One machine per speed group keeps the scan quick but representative.
    t = config.cluster.true_values[[0, 2, 5, 10]]

    scan = benchmark(
        pairwise_collusion_scan, VerificationMechanism(), t, config.arrival_rate
    )

    assert all(d.profitable for d in scan)  # the A11 finding
    assert scan[0].members == (0, 1)  # fastest pair gains most

    rows = [
        [
            f"({d.members[0]}, {d.members[1]})",
            d.truthful_joint_utility,
            d.best_joint_utility,
            d.gain,
            f"({d.best_bids[0]:g}, {d.best_bids[1]:g})",
        ]
        for d in scan
    ]
    record_result(
        "ablation_collusion",
        render_table(
            ["pair", "truthful joint U", "colluding joint U", "gain", "joint bids"],
            rows,
            title="A11. Pairwise collusion on one-machine-per-group subsystem "
            "(t = 1, 2, 5, 10; R = 20).",
        ),
    )
