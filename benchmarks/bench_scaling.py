"""Ablation A2 — scaling in the number of machines.

The mechanism is closed form: one PR allocation plus vectorised
leave-one-out bonuses, all O(n).  This bench times the full mechanism at
growing system sizes, checks the O(n) protocol message count, and
contrasts the analytic allocator against the SLSQP reference solver
(the cross-check tool, orders of magnitude slower).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import scipy_allocation
from repro.analysis import sweep_system_size
from repro.experiments import render_table
from repro.latency import LinearLatencyModel
from repro.mechanism import VerificationMechanism
from repro.system import random_cluster


@pytest.mark.parametrize("n", [16, 256, 4096])
def test_mechanism_scaling(benchmark, n):
    cluster = random_cluster(n, np.random.default_rng(0))
    mechanism = VerificationMechanism()
    t = cluster.true_values
    outcome = benchmark(mechanism.run, t, float(n), t)
    assert outcome.loads.size == n


def test_reference_solver_at_paper_size(benchmark):
    # The SLSQP reference at n=16 — the gap against the closed form in
    # the timing table is the cost of not having Theorem 2.1.
    cluster = random_cluster(16, np.random.default_rng(0))
    model = LinearLatencyModel(cluster.true_values)
    result = benchmark(scipy_allocation, model, 20.0)
    assert result.loads.sum() == pytest.approx(20.0)


def test_frugality_vs_system_size(benchmark, record_result):
    rng = np.random.default_rng(7)
    results = benchmark(sweep_system_size, [4, 16, 64, 256], rng)

    ratios = [r.frugality_ratio for r in results]
    # Per-machine rents vanish but their sum converges to the whole
    # optimum: the ratio decreases monotonically toward 2, not 1.
    assert ratios == sorted(ratios, reverse=True)
    assert all(r >= 2.0 - 1e-9 for r in ratios)

    rows = [
        [int(r.parameter), r.optimal_latency, r.frugality_ratio,
         r.canonical_degradation_percent]
        for r in results
    ]
    record_result(
        "ablation_scaling",
        render_table(
            ["n machines", "optimal L", "frugality ratio", "Low2-liar degr %"],
            rows,
            title="A2. Scaling the system size (load 1.25 jobs/s per machine).",
        ),
    )
