"""Shared helpers for the benchmark harness.

Every bench regenerates the rows of one paper table/figure (or one
ablation) and records them under ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed with::

    pytest benchmarks/ --benchmark-only

The pytest-benchmark timing table doubles as the performance record for
the closed-form mechanism (allocation + payments are microseconds even
at thousands of machines).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write a named result artefact (and echo it for ``-s`` runs)."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _record


@pytest.fixture
def record_json():
    """Write a machine-readable companion artefact next to the table.

    The ``.txt`` tables are for humans; downstream tooling (plots,
    regression dashboards) consumes the same rows as
    ``results/<name>.json`` instead of re-parsing rendered text.
    """

    def _record(name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _record
