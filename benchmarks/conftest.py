"""Shared helpers for the benchmark harness.

Every bench regenerates the rows of one paper table/figure (or one
ablation) and records them under ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed with::

    pytest benchmarks/ --benchmark-only

The pytest-benchmark timing table doubles as the performance record for
the closed-form mechanism (allocation + payments are microseconds even
at thousands of machines).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write a named result artefact (and echo it for ``-s`` runs)."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _record
