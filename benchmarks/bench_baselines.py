"""Ablation A5 — the verification mechanism vs the VCG and
Archer–Tardos baselines.

Measured findings recorded here (see EXPERIMENTS.md):

* on this problem the Archer–Tardos payment *equals* the Clarke/VCG
  payment algebraically, and both equal the verification mechanism's
  payment whenever machines execute exactly as they bid;
* the mechanisms separate when some machine's observed execution
  deviates from its bid — only the verification payments react, which
  is precisely what "with verification" buys.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import frugality_across_mechanisms
from repro.experiments import render_table, scenario_by_name, table1_configuration
from repro.experiments.table2 import build_bid_and_execution_vectors
from repro.mechanism import (
    ArcherTardosMechanism,
    VCGMechanism,
    VerificationMechanism,
)

MECHANISMS = {
    "verification": VerificationMechanism(),
    "vcg": VCGMechanism(),
    "archer-tardos": ArcherTardosMechanism(),
}


def test_truthful_payments_coincide(benchmark, record_result):
    config = table1_configuration()
    t = config.cluster.true_values

    records = benchmark(
        frugality_across_mechanisms, MECHANISMS, t, config.arrival_rate
    )
    ratios = [r.ratio for r in records]
    assert max(ratios) - min(ratios) < 1e-9

    rows = [[r.label, r.total_payment, r.total_valuation, r.ratio] for r in records]
    record_result(
        "ablation_baselines_truthful",
        render_table(
            ["mechanism", "total payment", "total |valuation|", "ratio"],
            rows,
            title="A5a. Truthful profile: all three payment rules coincide.",
        ),
    )


def test_mechanisms_separate_under_slow_execution(benchmark, record_result):
    """High-style deviation: C1 bids truthfully but executes 2x slower
    (True2).  Only the verification mechanism's payments react."""
    config = table1_configuration()
    bids, executions = build_bid_and_execution_vectors(
        config.cluster.true_values, scenario_by_name("True2")
    )

    def run_all():
        return {
            name: mech.run(bids, config.arrival_rate, executions)
            for name, mech in MECHANISMS.items()
        }

    outcomes = benchmark(run_all)

    verif = outcomes["verification"].payments.payment
    vcg = outcomes["vcg"].payments.payment
    at = outcomes["archer-tardos"].payments.payment
    # VCG and AT ignore the observed slowdown entirely.
    np.testing.assert_allclose(vcg, at, rtol=1e-9)
    # Verification cuts every honest machine's bonus by the realised
    # latency increase; the non-verifying baselines do not.
    assert np.all(verif[1:] < vcg[1:])

    rows = [
        [name, float(out.payments.payment[0]), float(out.payments.payment[1:].sum()),
         float(out.payments.utility[0])]
        for name, out in outcomes.items()
    ]
    record_result(
        "ablation_baselines_slow_exec",
        render_table(
            ["mechanism", "C1 payment", "others' payments", "C1 utility"],
            rows,
            title="A5b. True2 (C1 executes 2x slower): who reacts?",
        ),
    )
