"""Ablation A7 — central dispatch vs selfish jobs (Wardrop).

The paper's refs [1, 19] study the *selfish jobs* version of this
system.  Measured findings recorded here:

* for the paper's zero-intercept linear latencies the Wardrop
  equilibrium coincides with the system optimum (price of anarchy = 1):
  central dispatch adds nothing over selfish routing in this model, so
  the mechanism's entire value is *information revelation* — getting
  the true ``t_i`` out of the machines;
* with affine latencies (fixed service offsets) the two separate, with
  the classic 4/3 Pigou worst case;
* the vectorised PoA sweep (``price_of_anarchy_sweep``) bisects every
  arrival-rate grid point at once and agrees with the per-point solver
  to ~1e-13 relative while running several times faster (measured
  below, recorded in the ablation table).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import price_of_anarchy, price_of_anarchy_sweep
from repro.experiments import render_table, table1_configuration
from repro.latency import AffineLatencyModel, LinearLatencyModel

SWEEP_SPEEDUP_TARGET = 3.0  # conservative floor; ~10x measured at G = 64
SWEEP_TOLERANCE = 1e-9


def test_linear_poa_is_one(benchmark, record_result):
    config = table1_configuration()
    model = LinearLatencyModel(config.cluster.true_values)

    result = benchmark(price_of_anarchy, model, config.arrival_rate)
    assert result.price_of_anarchy == pytest.approx(1.0, abs=1e-9)

    rows = [
        ["paper Table 1 (linear)", result.equilibrium.total_latency,
         result.optimum.total_latency, result.price_of_anarchy],
    ]
    pigou = price_of_anarchy(AffineLatencyModel([1.0, 0.0], [1e-9, 1.0]), 1.0)
    rows.append(
        ["Pigou (affine worst case)", pigou.equilibrium.total_latency,
         pigou.optimum.total_latency, pigou.price_of_anarchy]
    )
    rng = np.random.default_rng(5)
    affine = AffineLatencyModel(rng.uniform(0, 2, 8), rng.uniform(0.5, 2, 8))
    mixed = price_of_anarchy(affine, 10.0)
    rows.append(
        ["random affine (8 machines)", mixed.equilibrium.total_latency,
         mixed.optimum.total_latency, mixed.price_of_anarchy]
    )
    assert pigou.price_of_anarchy == pytest.approx(4.0 / 3.0, rel=1e-4)
    assert 1.0 <= mixed.price_of_anarchy <= 4.0 / 3.0 + 1e-9

    record_result(
        "ablation_wardrop",
        render_table(
            ["instance", "selfish L", "optimal L*", "price of anarchy"],
            rows,
            precision=4,
            title="A7. Selfish jobs vs central dispatch.",
        ),
    )


def test_vectorized_sweep_agrees_and_speeds_up(record_result, record_json):
    """The vectorised grid sweep matches the per-point solver, faster."""
    config = table1_configuration()
    model = LinearLatencyModel(config.cluster.true_values)
    rates = np.linspace(2.0, 4.0 * config.arrival_rate, 64)

    start = time.perf_counter()
    sweep = price_of_anarchy_sweep(model, rates)
    sweep_seconds = time.perf_counter() - start

    start = time.perf_counter()
    points = [price_of_anarchy(model, float(rate)) for rate in rates]
    loop_seconds = time.perf_counter() - start

    loop_eq = np.array([p.equilibrium.total_latency for p in points])
    loop_opt = np.array([p.optimum.total_latency for p in points])
    assert np.allclose(sweep.equilibrium_latency, loop_eq, rtol=SWEEP_TOLERANCE)
    assert np.allclose(sweep.optimum_latency, loop_opt, rtol=SWEEP_TOLERANCE)
    assert sweep.price_of_anarchy == pytest.approx(
        np.ones(rates.size), abs=1e-9
    )

    speedup = loop_seconds / sweep_seconds
    assert speedup >= SWEEP_SPEEDUP_TARGET, (
        f"sweep speedup {speedup:.1f}x below {SWEEP_SPEEDUP_TARGET:g}x"
    )
    record_result(
        "ablation_wardrop_sweep",
        render_table(
            ["grid points", "per-point", "vectorised sweep", "speedup"],
            [[rates.size, f"{loop_seconds * 1e3:.1f} ms",
              f"{sweep_seconds * 1e3:.1f} ms", f"{speedup:.1f} x"]],
            title="A7b. Vectorised Wardrop/PoA sweep vs per-point bisection.",
        ),
    )
    record_json(
        "BENCH_wardrop",
        {
            "grid_points": int(rates.size),
            "per_point_seconds": loop_seconds,
            "sweep_seconds": sweep_seconds,
            "speedup": speedup,
            "speedup_target": SWEEP_SPEEDUP_TARGET,
            "max_price_of_anarchy": float(sweep.price_of_anarchy.max()),
        },
    )
