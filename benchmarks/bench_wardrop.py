"""Ablation A7 — central dispatch vs selfish jobs (Wardrop).

The paper's refs [1, 19] study the *selfish jobs* version of this
system.  Measured findings recorded here:

* for the paper's zero-intercept linear latencies the Wardrop
  equilibrium coincides with the system optimum (price of anarchy = 1):
  central dispatch adds nothing over selfish routing in this model, so
  the mechanism's entire value is *information revelation* — getting
  the true ``t_i`` out of the machines;
* with affine latencies (fixed service offsets) the two separate, with
  the classic 4/3 Pigou worst case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import price_of_anarchy
from repro.experiments import render_table, table1_configuration
from repro.latency import AffineLatencyModel, LinearLatencyModel


def test_linear_poa_is_one(benchmark, record_result):
    config = table1_configuration()
    model = LinearLatencyModel(config.cluster.true_values)

    result = benchmark(price_of_anarchy, model, config.arrival_rate)
    assert result.price_of_anarchy == pytest.approx(1.0, abs=1e-9)

    rows = [
        ["paper Table 1 (linear)", result.equilibrium.total_latency,
         result.optimum.total_latency, result.price_of_anarchy],
    ]
    pigou = price_of_anarchy(AffineLatencyModel([1.0, 0.0], [1e-9, 1.0]), 1.0)
    rows.append(
        ["Pigou (affine worst case)", pigou.equilibrium.total_latency,
         pigou.optimum.total_latency, pigou.price_of_anarchy]
    )
    rng = np.random.default_rng(5)
    affine = AffineLatencyModel(rng.uniform(0, 2, 8), rng.uniform(0.5, 2, 8))
    mixed = price_of_anarchy(affine, 10.0)
    rows.append(
        ["random affine (8 machines)", mixed.equilibrium.total_latency,
         mixed.optimum.total_latency, mixed.price_of_anarchy]
    )
    assert pigou.price_of_anarchy == pytest.approx(4.0 / 3.0, rel=1e-4)
    assert 1.0 <= mixed.price_of_anarchy <= 4.0 / 3.0 + 1e-9

    record_result(
        "ablation_wardrop",
        render_table(
            ["instance", "selfish L", "optimal L*", "price of anarchy"],
            rows,
            precision=4,
            title="A7. Selfish jobs vs central dispatch.",
        ),
    )
