"""Ablation A20 — campaign engine: parallel speedup and cache payoff.

The campaign engine makes two promises (DESIGN.md §9):

* **speed without drift** — fanning a campaign across workers changes
  wall-clock only: per-unit payloads are *bit-identical* to a serial
  run (asserted on every run, every machine);
* **a warm cache short-circuits** — re-running a cached campaign costs
  < 10% of the cold wall-clock (asserted everywhere), and on a box
  with >= 4 cores the 4-worker cold run is >= 3x faster than serial
  (asserted only there: a 1-core CI runner cannot show a speedup, and
  pretending otherwise would just make the bench flaky).

The workload is the Table 1 + Figures campaign with seeded protocol
replications — the realistic regime, where one discrete-event unit
costs ~1000x a closed-form one and chunked scheduling has something to
balance.

Runs two ways:

* under pytest with the other benches
  (``pytest benchmarks/bench_parallel.py --benchmark-only``);
* standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py
  [--smoke] [--json]``), exiting non-zero when an assertion that
  applies to this machine fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: make src/ importable without install
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

SPEEDUP_TARGET = 3.0   # cold 4-worker vs serial, on >= 4 physical cores
WARM_BUDGET = 0.10     # warm-cache wall-clock as a fraction of cold
MIN_CORES_FOR_SPEEDUP = 4


def _units(n_seeds: int, duration: float):
    from repro.parallel import figures_campaign_units

    return figures_campaign_units(
        seeds=tuple(range(n_seeds)), duration=duration
    )


def _timed_run(units, **engine_kwargs):
    from repro.parallel import CampaignEngine

    start = time.perf_counter()
    result = CampaignEngine(**engine_kwargs).run(units)
    return time.perf_counter() - start, result


def measure_campaign(*, n_seeds: int = 10, duration: float = 200.0) -> dict:
    """Serial vs 2/4-worker cold runs, then cold vs warm cache.

    Every arm runs the identical unit list.  The parallel arms are
    checked payload-by-payload against the serial arm; the cache arms
    run in a scratch directory so the measurement is hermetic.
    """
    units = _units(n_seeds, duration)

    serial_seconds, serial = _timed_run(units, workers=0)

    speedups: dict[int, float] = {}
    identical = True
    for workers in (2, 4):
        seconds, result = _timed_run(units, workers=workers)
        speedups[workers] = serial_seconds / seconds
        identical = identical and result.payloads == serial.payloads

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds, cold = _timed_run(units, workers=0, cache=cache_dir)
        warm_seconds, warm = _timed_run(units, workers=0, cache=cache_dir)
    warm_fraction = warm_seconds / cold_seconds
    cache_identical = (
        warm.payloads == cold.payloads == serial.payloads
        and warm.stats.cache_hits == len(units)
        and cold.stats.cache_misses == len(units)
    )

    cores = os.cpu_count() or 1
    speedup_applies = cores >= MIN_CORES_FOR_SPEEDUP
    return {
        "n_units": len(units),
        "n_seeds": n_seeds,
        "duration": duration,
        "cpu_cores": cores,
        "serial_seconds": serial_seconds,
        "speedup_2_workers": speedups[2],
        "speedup_4_workers": speedups[4],
        "parallel_bit_identical": identical,
        "cold_cache_seconds": cold_seconds,
        "warm_cache_seconds": warm_seconds,
        "warm_fraction_of_cold": warm_fraction,
        "warm_within_budget": warm_fraction < WARM_BUDGET,
        "cache_bit_identical": cache_identical,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_assertion_applies": speedup_applies,
        "speedup_met": speedups[4] >= SPEEDUP_TARGET,
        "unit_p50_seconds": serial.stats.unit_p50,
        "unit_p95_seconds": serial.stats.unit_p95,
    }


def check_summary(summary: dict) -> list[str]:
    """The assertions that apply on this machine; empty = all good."""
    failures = []
    if not summary["parallel_bit_identical"]:
        failures.append("parallel payloads differ from the serial run")
    if not summary["cache_bit_identical"]:
        failures.append("cache round-trip altered payloads or miscounted")
    if not summary["warm_within_budget"]:
        failures.append(
            f"warm cache took {100 * summary['warm_fraction_of_cold']:.1f}% "
            f"of cold (budget {100 * WARM_BUDGET:.0f}%)"
        )
    if summary["speedup_assertion_applies"] and not summary["speedup_met"]:
        failures.append(
            f"4-worker speedup {summary['speedup_4_workers']:.2f}x "
            f"< {SPEEDUP_TARGET:g}x on a {summary['cpu_cores']}-core box"
        )
    return failures


# --------------------------------------------------------------- pytest


def test_campaign_speedup_and_cache(record_result, record_json):
    summary = measure_campaign(n_seeds=4, duration=60.0)
    failures = check_summary(summary)
    assert not failures, "; ".join(failures)

    from repro.experiments import render_table

    def pct(x):
        return f"{100 * x:.1f} %"

    rows = [
        ["units (8 scenario + seeds x 8)", summary["n_units"]],
        ["cpu cores", summary["cpu_cores"]],
        ["serial wall-clock", f"{summary['serial_seconds']:.3f} s"],
        ["speedup, 2 workers", f"{summary['speedup_2_workers']:.2f} x"],
        ["speedup, 4 workers", f"{summary['speedup_4_workers']:.2f} x"],
        ["parallel == serial (bit-exact)",
         "yes" if summary["parallel_bit_identical"] else "NO"],
        ["cold cache wall-clock", f"{summary['cold_cache_seconds']:.3f} s"],
        ["warm cache wall-clock", f"{summary['warm_cache_seconds']:.3f} s"],
        ["warm / cold", pct(summary["warm_fraction_of_cold"])],
        ["warm budget", pct(WARM_BUDGET)],
        ["speedup target (>= 4 cores)",
         f"{SPEEDUP_TARGET:g} x"
         + ("" if summary["speedup_assertion_applies"]
            else " (not asserted here)")],
    ]
    record_result(
        "ablation_parallel_campaign",
        render_table(
            ["quantity", "value"],
            rows,
            title="A20. Campaign engine: parallel speedup and cache payoff.",
        ),
    )
    record_json("ablation_parallel_campaign", summary)


def test_scenario_only_campaign_is_exact():
    # The pure closed-form campaign (no protocol units) must reproduce
    # the paper's optimum through every path: serial, parallel, cached.
    from repro.parallel import CampaignEngine, scenario_units

    units = scenario_units()
    serial = CampaignEngine(workers=0).run(units)
    parallel = CampaignEngine(workers=2).run(units)
    assert parallel.payloads == serial.payloads
    assert round(serial.payloads[0]["realised_latency"], 2) == 78.43


# ------------------------------------------------------------ standalone


def main(argv: list[str] | None = None) -> int:
    """CI entry point: run the bench; fail on any applicable assertion."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast run sized for CI (4 seeds, 60 s windows)",
    )
    parser.add_argument("--seeds", type=int, default=10)
    parser.add_argument("--duration", type=float, default=200.0)
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)

    n_seeds = 4 if args.smoke else args.seeds
    duration = 60.0 if args.smoke else args.duration
    summary = measure_campaign(n_seeds=n_seeds, duration=duration)

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for key, value in summary.items():
            print(f"{key:28} {value}")

    failures = check_summary(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
