"""Ablation A1 — multi-liar degradation.

The paper conjectures: "We expect even larger increase if more than one
computer does not report its true value and does not use its full
processing capacity."  This bench quantifies the conjecture by applying
the Low2 manipulation (underbid 2x, execute 2x slower) to a growing
prefix of the Table 1 machines.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import multi_liar_degradation
from repro.experiments import render_table, table1_configuration


def test_multi_liar_degradation(benchmark, record_result):
    config = table1_configuration()
    t = config.cluster.true_values

    degradations = benchmark(
        multi_liar_degradation,
        t,
        config.arrival_rate,
        bid_factor=0.5,
        execution_factor=2.0,
        max_liars=8,
    )

    # The conjecture holds for the first several liars, then saturates:
    # once most machines apply the same distortion the *relative*
    # misallocation shrinks again (a measured refinement of the paper's
    # conjecture, recorded in EXPERIMENTS.md).
    assert np.all(np.diff(degradations[:6]) > 0.0)
    assert np.all(degradations[1:] > degradations[0])
    # One liar reproduces Low2's ~66%.
    assert abs(degradations[1] - 65.84) < 0.1

    rows = [[k, degradations[k]] for k in range(len(degradations))]
    record_result(
        "ablation_multi_liar",
        render_table(
            ["liars (Low2 manipulation)", "degradation %"],
            rows,
            title="A1. Degradation as the Low2 manipulation spreads.",
        ),
    )


def test_multi_liar_overbidding(benchmark, record_result):
    """Overbidding liars (High1 manipulation) also compound."""
    config = table1_configuration()
    t = config.cluster.true_values

    degradations = benchmark(
        multi_liar_degradation,
        t,
        config.arrival_rate,
        bid_factor=3.0,
        execution_factor=3.0,
        max_liars=8,
    )
    assert np.all(np.diff(degradations[:6]) > 0.0)
    assert np.all(degradations[1:] > degradations[0])

    rows = [[k, degradations[k]] for k in range(len(degradations))]
    record_result(
        "ablation_multi_liar_high",
        render_table(
            ["liars (High1 manipulation)", "degradation %"],
            rows,
            title="A1b. Degradation as the High1 manipulation spreads.",
        ),
    )
